// ablation_faults — what does the recovery policy buy under faults?
//
// Sweeps fault-injection intensity (garbled responses, slow-responder and
// server-down windows) against three recovery policies: none (the seed
// engine's log-and-skip), backoff-only (bounded retries in virtual time),
// and the full stack (retries + per-destination circuit breaker).  For
// each cell it reports the sample yield (stored samples as a fraction of
// the campaign target), the virtual wall-clock the campaign occupied, and
// the recovery-machinery counters — showing that retries buy yield at a
// bounded virtual-time cost and the breaker caps the cost of dark
// destinations.
#include <array>

#include "common.hpp"

namespace {

using namespace upin;

struct FaultLevel {
  const char* name;
  simnet::FaultPlanConfig faults;
};

std::array<FaultLevel, 4> fault_levels() {
  std::array<FaultLevel, 4> levels{};
  levels[0].name = "none";

  levels[1].name = "light";
  levels[1].faults.garble_prob = 0.10;
  levels[1].faults.slow_per_hour = 1.0;

  levels[2].name = "medium";
  levels[2].faults.garble_prob = 0.25;
  levels[2].faults.slow_per_hour = 3.0;
  levels[2].faults.server_down_per_hour = 1.0;

  levels[3].name = "heavy";
  levels[3].faults.garble_prob = 0.40;
  levels[3].faults.slow_per_hour = 6.0;
  levels[3].faults.server_down_per_hour = 3.0;
  return levels;
}

struct Policy {
  const char* name;
  bool retry;
  bool breaker;
};

constexpr std::array<Policy, 3> kPolicies{{
    {"none", false, false},
    {"backoff", true, false},
    {"full", true, true},
}};

struct Cell {
  double yield_pct = 0.0;
  double virtual_minutes = 0.0;
  std::size_t retries = 0;
  std::size_t failures = 0;
  std::size_t trips = 0;
  std::size_t skips = 0;
};

Cell run_cell(const FaultLevel& level, const Policy& policy) {
  simnet::NetworkConfig net;
  net.server_error_prob = 0.0;  // only FaultPlan-injected faults
  net.faults = level.faults;
  bench::Campaign campaign(42, net);

  measure::TestSuiteConfig config;
  config.iterations = 3;
  config.server_ids = {{bench::kIrelandId}};
  config.retry.enabled = policy.retry;
  config.breaker.enabled = policy.breaker;
  const measure::TestSuiteProgress progress = campaign.run(config);

  const std::size_t paths =
      campaign.db().collection(measure::kPaths).size();
  const std::size_t target =
      paths * static_cast<std::size_t>(config.iterations);
  Cell cell;
  cell.yield_pct =
      target == 0 ? 0.0
                  : 100.0 * static_cast<double>(progress.stats_inserted) /
                        static_cast<double>(target);
  cell.virtual_minutes =
      util::to_seconds(campaign.host().clock().now()) / 60.0;
  cell.retries = progress.retry.retries;
  cell.failures = progress.errors.total();
  cell.trips = progress.breaker_trips;
  cell.skips = progress.breaker_skips;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::want_csv(argc, argv);

  if (csv) {
    std::printf(
        "faults,policy,yield_pct,virtual_minutes,retries,failures,"
        "breaker_trips,breaker_skips\n");
  } else {
    bench::print_header(
        "Ablation — fault injection vs recovery policy (Ireland, 3 iters)",
        "yield = stored samples / campaign target; time in virtual minutes");
    std::printf("%-8s %-8s | %8s %9s %8s %9s %6s %6s\n", "faults", "policy",
                "yield%", "virt.min", "retries", "failures", "trips",
                "skips");
  }

  for (const FaultLevel& level : fault_levels()) {
    for (const Policy& policy : kPolicies) {
      const Cell cell = run_cell(level, policy);
      if (csv) {
        std::printf("%s,%s,%.1f,%.1f,%zu,%zu,%zu,%zu\n", level.name,
                    policy.name, cell.yield_pct, cell.virtual_minutes,
                    cell.retries, cell.failures, cell.trips, cell.skips);
      } else {
        std::printf("%-8s %-8s | %7.1f%% %9.1f %8zu %9zu %6zu %6zu\n",
                    level.name, policy.name, cell.yield_pct,
                    cell.virtual_minutes, cell.retries, cell.failures,
                    cell.trips, cell.skips);
      }
    }
  }

  if (!csv) {
    std::printf(
        "\nexpected shape: against transient faults (light: garbles),\n"
        "backoff buys yield for a modest virtual-time premium; against\n"
        "persistent down windows (medium/heavy) retrying cannot help and\n"
        "the breaker claws back the wasted retries and wall-clock\n"
        "(trips > 0, skips > 0, virt.min and retries drop vs backoff).\n");
  }
  return 0;
}
