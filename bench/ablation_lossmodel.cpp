// ablation_lossmodel — does the Fig 8 inversion need fragmentation?
//
// DESIGN.md attributes the paper's 150 Mbps inversion (64-byte beats MTU)
// to fragmentation loss coupling: an MTU-sized SCION packet rides two
// underlay frames, and losing either kills the packet, so saturation
// punishes large packets quadratically.  This ablation re-runs the Fig 8
// campaign with `fragmentation_enabled = false` and shows the inversion
// disappear — evidence the modelled mechanism, not a tuning accident,
// carries the result.
#include "common.hpp"

namespace {

struct FleetMeans {
  double up_64 = 0, up_mtu = 0, down_64 = 0, down_mtu = 0;
};

FleetMeans run(bool fragmentation) {
  using namespace upin;
  simnet::NetworkConfig net;
  net.fragmentation_enabled = fragmentation;
  bench::Campaign campaign(42, net);

  measure::TestSuiteConfig config;
  config.iterations = 10;
  config.server_ids = {{bench::kGermanyId}};
  config.bw_target_mbps = 150.0;
  campaign.run(config);

  util::RunningMoments up64, upmtu, down64, downmtu;
  for (const auto& s : campaign.summaries(bench::kGermanyId)) {
    if (s.mean_bw_up_64) up64.add(*s.mean_bw_up_64);
    if (s.mean_bw_up_mtu) upmtu.add(*s.mean_bw_up_mtu);
    if (s.mean_bw_down_64) down64.add(*s.mean_bw_down_64);
    if (s.mean_bw_down_mtu) downmtu.add(*s.mean_bw_down_mtu);
  }
  return {up64.mean(), upmtu.mean(), down64.mean(), downmtu.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  const FleetMeans with_frag = run(true);
  const FleetMeans without_frag = run(false);

  if (csv) {
    std::printf("config,up_64,up_mtu,down_64,down_mtu\n");
    std::printf("fragmentation,%f,%f,%f,%f\n", with_frag.up_64,
                with_frag.up_mtu, with_frag.down_64, with_frag.down_mtu);
    std::printf("no_fragmentation,%f,%f,%f,%f\n", without_frag.up_64,
                without_frag.up_mtu, without_frag.down_64,
                without_frag.down_mtu);
    return 0;
  }

  bench::print_header(
      "Ablation — loss model behind the Fig 8 inversion (150 Mbps target)",
      "fleet-mean achieved bandwidth, Germany AP");
  std::printf("%-22s | %-21s | %s\n", "config", "upstream (64B   MTU)",
              "downstream (64B   MTU)");
  const auto row = [](const char* name, const FleetMeans& m) {
    std::printf("%-22s | %8.2f  %8.2f  | %8.2f  %8.2f\n", name, m.up_64,
                m.up_mtu, m.down_64, m.down_mtu);
  };
  row("fragmentation ON", with_frag);
  row("fragmentation OFF", without_frag);

  const bool inversion_on =
      with_frag.down_64 > with_frag.down_mtu;
  const bool inversion_off =
      without_frag.down_64 > without_frag.down_mtu;
  std::printf("\ninversion (64B > MTU downstream): with frag %s, without "
              "frag %s\n",
              inversion_on ? "YES" : "no", inversion_off ? "YES" : "no");
  std::printf("expected: YES / no — fragmentation loss coupling carries the "
              "paper's Fig 8 shape\n");
  return 0;
}
