// ablation_parallel — scale-out throughput of the survey engine
// (paper §4.1.1's scalability requirement, measured).
//
// Runs the full 21-destination survey sequentially and with increasing
// worker counts, reporting wall time and speedup.  Also measures the
// read side: parallel vs sequential per-path aggregation in the
// selection layer.
#include <chrono>
#include <thread>

#include "common.hpp"
#include "measure/parallel_survey.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  if (csv) {
    std::printf("threads,wall_s,speedup,samples\n");
  } else {
    bench::print_header(
        "Ablation — parallel survey scale-out (21 destinations, 4 iterations)",
        "one host replica per destination; shared thread-safe database");
    std::printf("hardware concurrency: %u (speedup is bounded by this)\n\n",
                std::thread::hardware_concurrency());
    std::printf("%-9s %-10s %-9s %s\n", "threads", "wall s", "speedup",
                "samples");
  }

  const scion::ScionlabEnv env = scion::scionlab_topology();
  double baseline = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    docdb::Database db;
    measure::ParallelSurveyConfig config;
    config.suite.iterations = 4;
    config.threads = threads;
    const auto result = measure::run_parallel_survey(env, db, config);
    if (!result.ok()) {
      std::fprintf(stderr, "survey failed: %s\n",
                   result.error().message.c_str());
      return 1;
    }
    if (threads == 1) baseline = result.value().wall_seconds;
    const double speedup = baseline / result.value().wall_seconds;
    if (csv) {
      std::printf("%zu,%.3f,%.2f,%zu\n", threads, result.value().wall_seconds,
                  speedup, result.value().progress.stats_inserted);
    } else {
      std::printf("%-9zu %-10.3f %-9.2f %zu\n", threads,
                  result.value().wall_seconds, speedup,
                  result.value().progress.stats_inserted);
    }
  }

  // Read-side: aggregation of one big destination's history.
  docdb::Database db;
  measure::ParallelSurveyConfig config;
  config.suite.iterations = 40;
  config.suite.server_ids = {{5}};  // Korea: the largest path set
  config.threads = 4;
  if (!measure::run_parallel_survey(env, db, config).ok()) return 1;

  select::PathSelector selector(db, env.topology);
  const auto time_call = [](const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const double sequential_ms =
      time_call([&] { (void)selector.summarize(5); });
  util::ThreadPool pool(4);
  const double parallel_ms =
      time_call([&] { (void)selector.summarize_parallel(5, pool); });
  if (!csv) {
    std::printf("\naggregation of server 5 (%d iterations):\n",
                config.suite.iterations);
    std::printf("  sequential summarize : %.2f ms\n", sequential_ms);
    std::printf("  parallel summarize   : %.2f ms (4 workers)\n", parallel_ms);
  }
  return 0;
}
