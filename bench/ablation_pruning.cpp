// ablation_pruning — the paper's hop-count pruning rule (§5.2).
//
// collect_paths keeps only paths with hop count <= min + 1, "aimed at
// conserving time by excluding paths that are overly lengthy and fail to
// meet our latency criteria".  This ablation measures what the rule
// costs and saves: campaign size/time with slack 1 vs keeping everything
// showpaths returns, and whether the selected best path ever differs.
#include "common.hpp"
#include "select/selector.hpp"

namespace {

struct Outcome {
  std::size_t paths = 0;
  std::size_t tests = 0;
  double virtual_hours = 0.0;
  std::string best_latency_path;
  double best_latency_ms = 0.0;
};

Outcome run(std::size_t hop_slack) {
  using namespace upin;
  bench::Campaign campaign;
  measure::TestSuiteConfig config;
  config.iterations = 10;
  config.server_ids = {{bench::kIrelandId}};
  config.hop_slack = hop_slack;
  const measure::TestSuiteProgress progress = campaign.run(config);

  Outcome outcome;
  outcome.paths = progress.paths_collected;
  outcome.tests = progress.path_tests_run;
  outcome.virtual_hours =
      util::to_seconds(campaign.host().clock().now()) / 3600.0;

  select::PathSelector selector(campaign.db(), campaign.env().topology);
  select::UserRequest request;
  request.server_id = bench::kIrelandId;
  request.objective = select::Objective::kLowestLatency;
  const auto best = selector.best(request);
  if (best.ok()) {
    outcome.best_latency_path = best.value().summary.path_id;
    outcome.best_latency_ms = best.value().summary.latency_ms->median;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  const Outcome pruned = run(1);
  const Outcome everything = run(40);  // effectively no pruning

  if (csv) {
    std::printf("config,paths,tests,virtual_hours,best_path,best_ms\n");
    std::printf("min_plus_1,%zu,%zu,%.3f,%s,%.3f\n", pruned.paths,
                pruned.tests, pruned.virtual_hours,
                pruned.best_latency_path.c_str(), pruned.best_latency_ms);
    std::printf("all_40,%zu,%zu,%.3f,%s,%.3f\n", everything.paths,
                everything.tests, everything.virtual_hours,
                everything.best_latency_path.c_str(),
                everything.best_latency_ms);
    return 0;
  }

  bench::print_header(
      "Ablation — §5.2 pruning rule (keep hop count <= min+1), Ireland",
      "does pruning lose a better path?  what does it save?");
  std::printf("%-12s %-7s %-7s %-14s %-10s %s\n", "config", "paths", "tests",
              "virtual hours", "best path", "best median ms");
  std::printf("%-12s %-7zu %-7zu %-14.2f %-10s %.2f\n", "min+1",
              pruned.paths, pruned.tests, pruned.virtual_hours,
              pruned.best_latency_path.c_str(), pruned.best_latency_ms);
  std::printf("%-12s %-7zu %-7zu %-14.2f %-10s %.2f\n", "all (-m 40)",
              everything.paths, everything.tests, everything.virtual_hours,
              everything.best_latency_path.c_str(),
              everything.best_latency_ms);
  std::printf("\nexpected: pruning cuts campaign time substantially while "
              "the lowest-latency\nselection stays on a short path "
              "(long paths fail the latency criteria anyway).\n");
  return 0;
}
