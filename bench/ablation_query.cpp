// ablation_query — ordered secondary indexes vs collection scans.
//
// The selection layer queries paths_stats by path_id thousands of times
// per aggregation, and §6's per-path summaries add timestamp windows on
// top.  This harness measures the planner's five core shapes — point,
// range, compound prefix+window, $in fan-out, and sort+limit — against a
// forced collection scan of the same data, at paper scale (~3k docs),
// 100k, and 1M documents.  Results land in BENCH_query.json.
//
// Usage:
//   ablation_query                 full sweep (3k / 100k / 1M)
//   ablation_query --gate          100k only; exit 1 unless the indexed
//                                  point query is >= 10x faster than the
//                                  scan (CI smoke gate)
//   ablation_query --out FILE      write the JSON report to FILE
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "docdb/collection.hpp"
#include "docdb/filter.hpp"
#include "util/json.hpp"

namespace {

using namespace upin;
using util::Value;

docdb::Filter compile(const std::string& query) {
  auto filter = docdb::Filter::compile(Value::parse(query).value());
  if (!filter.ok()) std::abort();
  return std::move(filter).value();
}

/// ~125 documents per path at every scale, so the point query's result
/// size stays constant while the scanned corpus grows.
int paths_for(int documents) { return documents < 3000 ? 24 : documents / 125; }

std::unique_ptr<docdb::Collection> make_collection(int documents) {
  auto coll = std::make_unique<docdb::Collection>("paths_stats");
  coll->create_index("path_id");
  coll->create_index("timestamp_ms");
  coll->create_index("path_id,timestamp_ms");
  const int paths = paths_for(documents);
  std::vector<docdb::Document> docs;
  docs.reserve(static_cast<std::size_t>(documents));
  for (int i = 0; i < documents; ++i) {
    docs.push_back(Value::object({
        {"_id", "d" + std::to_string(i)},
        {"path_id", "p" + std::to_string(i % paths)},
        {"server_id", i % paths / 12 + 1},
        {"timestamp_ms", static_cast<std::int64_t>(i) * 1000},
        {"latency_ms", 30.0 + i % 50},
        {"hop_count", 6 + i % 2},
    }));
  }
  if (!coll->insert_many(std::move(docs)).ok()) std::abort();
  return coll;
}

template <typename Fn>
double mean_us(int iterations, Fn&& fn) {
  // One warm-up pass, then a timed loop; the sink defeats dead-code
  // elimination of the find() results.
  static volatile std::size_t sink = 0;
  sink = sink + fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) sink = sink + fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         iterations;
}

struct QueryCase {
  std::string name;
  docdb::Filter filter;
  docdb::FindOptions options;  // force_scan toggled per side
};

std::vector<QueryCase> make_cases(int documents) {
  const int paths = paths_for(documents);
  std::vector<QueryCase> cases;
  auto add = [&](std::string name, std::string query,
                 docdb::FindOptions options = {}) {
    cases.push_back({std::move(name), compile(query), std::move(options)});
  };
  // Every shape targets the middle of the corpus so neither side gets an
  // early-exit advantage.
  const std::int64_t mid_ts = static_cast<std::int64_t>(documents) / 2 * 1000;
  const std::string mid_path = "p" + std::to_string(paths / 2);
  add("point", "{\"path_id\": \"" + mid_path + "\"}");
  add("range", "{\"timestamp_ms\": {\"$gte\": " + std::to_string(mid_ts) +
                   ", \"$lt\": " + std::to_string(mid_ts + 1000 * 1000) +
                   "}}");
  add("compound", "{\"path_id\": \"" + mid_path +
                      "\", \"timestamp_ms\": {\"$gte\": " +
                      std::to_string(mid_ts) + "}}");
  add("in", "{\"path_id\": {\"$in\": [\"p1\", \"" + mid_path + "\", \"p" +
                std::to_string(paths - 1) + "\"]}}");
  docdb::FindOptions sorted;
  sorted.sort_by = "timestamp_ms";
  sorted.descending = true;
  sorted.limit = 100;
  add("sort_limit", "{\"hop_count\": {\"$gte\": 6}}", sorted);
  return cases;
}

Value run_scale(int documents, bool* gate_ok) {
  std::fprintf(stderr, "[ablation_query] building %d documents...\n",
               documents);
  const auto build_start = std::chrono::steady_clock::now();
  const auto coll = make_collection(documents);
  const double build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - build_start)
          .count();

  // Size iteration counts off the scan side so each cell costs roughly
  // the same wall-clock regardless of scale.
  const int iterations = documents >= 1'000'000 ? 3
                         : documents >= 100'000 ? 20
                                                : 200;
  Value::Array queries;
  for (QueryCase& qc : make_cases(documents)) {
    docdb::FindOptions forced = qc.options;
    forced.force_scan = true;
    const Value plan = coll->explain(qc.filter, qc.options);
    const std::size_t matches = coll->find(qc.filter, forced).size();
    const double indexed_us = mean_us(
        iterations, [&] { return coll->find(qc.filter, qc.options).size(); });
    const double scan_us = mean_us(
        iterations, [&] { return coll->find(qc.filter, forced).size(); });
    const double speedup = indexed_us > 0.0 ? scan_us / indexed_us : 0.0;
    std::fprintf(stderr,
                 "[ablation_query] %8d docs  %-10s  indexed %10.1f us  "
                 "scan %12.1f us  speedup %7.1fx  (%zu matches)\n",
                 documents, qc.name.c_str(), indexed_us, scan_us, speedup,
                 matches);
    if (gate_ok != nullptr && qc.name == "point" && speedup < 10.0) {
      *gate_ok = false;
    }
    queries.push_back(Value::object({
        {"name", qc.name},
        {"plan", plan},
        {"matches", static_cast<std::int64_t>(matches)},
        {"iterations", iterations},
        {"indexed_us", indexed_us},
        {"scan_us", scan_us},
        {"speedup", speedup},
    }));
  }
  return Value::object({
      {"documents", documents},
      {"build_ms", build_ms},
      {"queries", Value(std::move(queries))},
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string out_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<int> scales =
      gate ? std::vector<int>{100'000}
           : std::vector<int>{3'000, 100'000, 1'000'000};
  bool gate_ok = true;
  Value::Array results;
  for (const int documents : scales) {
    results.push_back(run_scale(documents, gate ? &gate_ok : nullptr));
  }

  const Value report = Value::object({
      {"bench", "ablation_query"},
      {"gate", gate},
      {"scales", Value(std::move(results))},
  });
  std::ofstream out(out_path);
  out << report.dump(2) << "\n";
  out.close();
  std::fprintf(stderr, "[ablation_query] wrote %s\n", out_path.c_str());

  if (gate && !gate_ok) {
    std::fprintf(stderr,
                 "[ablation_query] GATE FAILED: indexed point query is "
                 "not >= 10x faster than the scan at 100k documents\n");
    return 1;
  }
  return 0;
}
