// ablation_query — secondary indexes vs collection scans.
//
// The selection layer queries paths_stats by path_id thousands of times
// per aggregation.  This harness measures a Mongo-style equality query
// with and without the hash index, at paper-scale (~3k documents) and at
// 10x that, plus the cost of a non-indexable range query for contrast.
#include <benchmark/benchmark.h>

#include "docdb/collection.hpp"
#include "measure/schema.hpp"

namespace {

using namespace upin;

std::unique_ptr<docdb::Collection> make_collection(int documents, bool indexed) {
  auto coll_ptr = std::make_unique<docdb::Collection>(measure::kPathsStats);
  docdb::Collection& coll = *coll_ptr;
  if (indexed) coll.create_index("path_id");
  std::vector<docdb::Document> docs;
  docs.reserve(static_cast<std::size_t>(documents));
  for (int i = 0; i < documents; ++i) {
    measure::StatsSample sample;
    sample.path_id = std::to_string(i % 24 / 12 + 1) + "_" +
                     std::to_string(i % 12);
    sample.server_id = i % 24 / 12 + 1;
    sample.timestamp =
        util::SimTime(static_cast<std::int64_t>(i) * 1'000'000'000);
    sample.hop_count = 6;
    sample.isds = {16, 17};
    sample.latency_ms = 30.0 + (i % 50);
    sample.loss_pct = 0.0;
    sample.target_mbps = 12.0;
    docs.push_back(measure::stats_document(sample));
  }
  auto inserted = coll.insert_many(std::move(docs));
  if (!inserted.ok()) std::abort();
  return coll_ptr;
}

docdb::Filter path_filter(const std::string& path_id) {
  util::JsonObject query;
  query.set("path_id", util::Value(path_id));
  auto filter = docdb::Filter::compile(util::Value(std::move(query)));
  if (!filter.ok()) std::abort();
  return std::move(filter).value();
}

void BM_EqualityIndexed(benchmark::State& state) {
  const auto coll = make_collection(static_cast<int>(state.range(0)), true);
  const docdb::Filter filter = path_filter("1_3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll->find(filter));
  }
}

void BM_EqualityScan(benchmark::State& state) {
  const auto coll = make_collection(static_cast<int>(state.range(0)), false);
  const docdb::Filter filter = path_filter("1_3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll->find(filter));
  }
}

void BM_RangeScan(benchmark::State& state) {
  const auto coll = make_collection(static_cast<int>(state.range(0)), true);
  auto filter = docdb::Filter::compile(util::Value::parse(
      R"({"latency_ms": {"$gt": 40, "$lt": 45}})").value());
  if (!filter.ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll->find(filter.value()));
  }
}

BENCHMARK(BM_EqualityIndexed)->Arg(3000)->Arg(30000);
BENCHMARK(BM_EqualityScan)->Arg(3000)->Arg(30000);
BENCHMARK(BM_RangeScan)->Arg(3000);

}  // namespace

BENCHMARK_MAIN();
