// ablation_seeds — are the reproduced shapes seed-robust?
//
// Every stochastic component draws from one experiment seed.  This
// ablation re-runs the headline shape checks (Fig 7 ordering, Fig 8
// inversion, Fig 5 latency layering) across several seeds and reports
// how often each shape holds.  A shape that only appears for the default
// seed would be an artifact; all of these hold for every seed.
#include "common.hpp"

namespace {

using namespace upin;

struct ShapeChecks {
  bool fig7_mtu_beats_small = false;
  bool fig7_down_beats_up = false;
  bool fig8_inversion = false;
  bool fig5_three_layers = false;
};

ShapeChecks run(std::uint64_t seed) {
  ShapeChecks checks;

  // Bandwidth shapes (Germany AP).
  const auto fleet_means = [&](double target) {
    bench::Campaign campaign(seed);
    measure::TestSuiteConfig config;
    config.iterations = 8;
    config.server_ids = {{bench::kGermanyId}};
    config.bw_target_mbps = target;
    campaign.run(config);
    util::RunningMoments up64, upmtu, down64, downmtu;
    for (const auto& s : campaign.summaries(bench::kGermanyId)) {
      if (s.mean_bw_up_64) up64.add(*s.mean_bw_up_64);
      if (s.mean_bw_up_mtu) upmtu.add(*s.mean_bw_up_mtu);
      if (s.mean_bw_down_64) down64.add(*s.mean_bw_down_64);
      if (s.mean_bw_down_mtu) downmtu.add(*s.mean_bw_down_mtu);
    }
    return std::array<double, 4>{up64.mean(), upmtu.mean(), down64.mean(),
                                 downmtu.mean()};
  };
  const auto at12 = fleet_means(12.0);
  checks.fig7_mtu_beats_small = at12[1] > at12[0] && at12[3] > at12[2];
  checks.fig7_down_beats_up = at12[2] > at12[0] && at12[3] > at12[1];
  const auto at150 = fleet_means(150.0);
  checks.fig8_inversion = at150[0] > at150[1] && at150[2] > at150[3];

  // Latency layering (Ireland).
  {
    bench::Campaign campaign(seed);
    measure::TestSuiteConfig config;
    config.iterations = 8;
    config.server_ids = {{bench::kIrelandId}};
    campaign.run(config);
    double europe = 0, ohio = 0, singapore = 0;
    for (const auto& s : campaign.summaries(bench::kIrelandId)) {
      if (!s.latency_ms.has_value()) continue;
      const scion::IsdAsn second_last = s.hops[s.hops.size() - 2];
      double& slot = second_last == scion::scionlab::kOhio ? ohio
                     : second_last == scion::scionlab::kSingapore
                         ? singapore
                         : europe;
      if (slot == 0) slot = s.latency_ms->median;
    }
    checks.fig5_three_layers =
        europe > 0 && ohio > 2.0 * europe && singapore > 1.3 * ohio;
  }
  return checks;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::want_csv(argc, argv);
  const std::uint64_t seeds[] = {1, 7, 42, 1234, 987654321};

  if (csv) {
    std::printf("seed,fig7_packet_order,fig7_direction,fig8_inversion,"
                "fig5_layers\n");
  } else {
    bench::print_header(
        "Ablation — seed robustness of the reproduced shapes",
        "each row is an independent testbed instantiation");
    std::printf("%-12s %-18s %-16s %-16s %s\n", "seed", "Fig7 MTU>64B",
                "Fig7 down>up", "Fig8 inversion", "Fig5 layers");
  }

  int all_hold = 0;
  for (const std::uint64_t seed : seeds) {
    const ShapeChecks checks = run(seed);
    const bool everything = checks.fig7_mtu_beats_small &&
                            checks.fig7_down_beats_up &&
                            checks.fig8_inversion && checks.fig5_three_layers;
    if (everything) ++all_hold;
    if (csv) {
      std::printf("%llu,%d,%d,%d,%d\n",
                  static_cast<unsigned long long>(seed),
                  checks.fig7_mtu_beats_small, checks.fig7_down_beats_up,
                  checks.fig8_inversion, checks.fig5_three_layers);
    } else {
      const auto mark = [](bool ok) { return ok ? "yes" : "NO"; };
      std::printf("%-12llu %-18s %-16s %-16s %s\n",
                  static_cast<unsigned long long>(seed),
                  mark(checks.fig7_mtu_beats_small),
                  mark(checks.fig7_down_beats_up),
                  mark(checks.fig8_inversion),
                  mark(checks.fig5_three_layers));
    }
  }
  if (!csv) {
    std::printf("\nall shapes hold for %d/%zu seeds\n", all_hold,
                std::size(seeds));
  }
  return 0;
}
