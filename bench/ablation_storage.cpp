// ablation_storage — the §4.2.2 batching trade-off, measured.
//
// The paper prefers "multiple insertions of path statistics to single
// ones" to cut I/O overhead, accepting that a crash loses at most one
// destination's batch.  This google-benchmark harness quantifies the
// other side of that trade-off on the journaled (durable) store:
// per-document insert_one vs one insert_many batch, at the batch sizes a
// destination actually produces.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "docdb/database.hpp"
#include "measure/schema.hpp"
#include "scion/scionlab.hpp"
#include "util/strings.hpp"

namespace {

using namespace upin;

docdb::Document make_stats_doc(int i) {
  measure::StatsSample sample;
  sample.path_id = "2_" + std::to_string(i % 24);
  sample.server_id = 2;
  sample.timestamp = util::SimTime(static_cast<std::int64_t>(i) * 1'000'000'000);
  sample.hop_count = 6;
  sample.isds = {16, 17};
  sample.latency_ms = 41.5;
  sample.loss_pct = 0.0;
  sample.jitter_ms = 0.4;
  sample.bw_up_64 = 4.1;
  sample.bw_down_64 = 11.2;
  sample.bw_up_mtu = 9.0;
  sample.bw_down_mtu = 11.7;
  sample.target_mbps = 12.0;
  return measure::stats_document(sample);
}

std::string temp_journal(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("upin_ablation_") + tag + ".jsonl"))
      .string();
}

void BM_InsertOneByOne(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("one");
  int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    auto db = docdb::Database::open(path);
    state.ResumeTiming();
    docdb::Collection& coll = db.value()->collection(measure::kPathsStats);
    for (int i = 0; i < batch; ++i) {
      auto doc = make_stats_doc(counter++);
      benchmark::DoNotOptimize(coll.insert_one(std::move(doc)));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  std::filesystem::remove(path);
}

void BM_InsertBatched(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("many");
  int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    auto db = docdb::Database::open(path);
    std::vector<docdb::Document> docs;
    docs.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) docs.push_back(make_stats_doc(counter++));
    state.ResumeTiming();
    docdb::Collection& coll = db.value()->collection(measure::kPathsStats);
    benchmark::DoNotOptimize(coll.insert_many(std::move(docs)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  std::filesystem::remove(path);
}

BENCHMARK(BM_InsertOneByOne)->Arg(8)->Arg(24)->Arg(96);
BENCHMARK(BM_InsertBatched)->Arg(8)->Arg(24)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
