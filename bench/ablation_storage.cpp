// ablation_storage — the §4.2.2 batching trade-off, measured.
//
// The paper prefers "multiple insertions of path statistics to single
// ones" to cut I/O overhead, accepting that a crash loses at most one
// destination's batch.  This google-benchmark harness quantifies the
// other side of that trade-off on the journaled (durable) store:
// per-document insert_one vs one insert_many batch, at the batch sizes a
// destination actually produces.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "docdb/database.hpp"
#include "measure/schema.hpp"
#include "obs/metrics.hpp"
#include "scion/scionlab.hpp"
#include "util/strings.hpp"

namespace {

using namespace upin;

docdb::Document make_stats_doc(int i, const std::string& path_id = "") {
  measure::StatsSample sample;
  sample.path_id = path_id.empty() ? "2_" + std::to_string(i % 24) : path_id;
  sample.server_id = 2;
  sample.timestamp = util::SimTime(static_cast<std::int64_t>(i) * 1'000'000'000);
  sample.hop_count = 6;
  sample.isds = {16, 17};
  sample.latency_ms = 41.5;
  sample.loss_pct = 0.0;
  sample.jitter_ms = 0.4;
  sample.bw_up_64 = 4.1;
  sample.bw_down_64 = 11.2;
  sample.bw_up_mtu = 9.0;
  sample.bw_down_mtu = 11.7;
  sample.target_mbps = 12.0;
  return measure::stats_document(sample);
}

std::string temp_journal(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("upin_ablation_") + tag + ".jsonl"))
      .string();
}

std::uint64_t journal_counter(const char* name) {
  return obs::Registry::global().counter(name).value();
}

/// Start-of-benchmark journal counter readings; attach_to() turns the
/// deltas into per-benchmark counters (mean group size, stalls) in the
/// report table.  Values are cumulative process-wide, hence the deltas.
struct JournalWindow {
  std::uint64_t groups = journal_counter("upin_journal_groups_committed_total");
  std::uint64_t events = journal_counter("upin_journal_events_enqueued_total");
  std::uint64_t stalls =
      journal_counter("upin_journal_backpressure_stalls_total");

  void attach_to(benchmark::State& state) const {
    const double groups_delta = static_cast<double>(
        journal_counter("upin_journal_groups_committed_total") - groups);
    const double events_delta = static_cast<double>(
        journal_counter("upin_journal_events_enqueued_total") - events);
    state.counters["mean_group_size"] =
        groups_delta > 0.0 ? events_delta / groups_delta : 0.0;
    state.counters["backpressure_stalls"] = static_cast<double>(
        journal_counter("upin_journal_backpressure_stalls_total") - stalls);
  }
};

void BM_InsertOneByOne(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("one");
  const JournalWindow window;
  int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    auto db = docdb::Database::open(path);
    state.ResumeTiming();
    docdb::Collection& coll = db.value()->collection(measure::kPathsStats);
    for (int i = 0; i < batch; ++i) {
      auto doc = make_stats_doc(counter++);
      benchmark::DoNotOptimize(coll.insert_one(std::move(doc)));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  window.attach_to(state);
  std::filesystem::remove(path);
}

void BM_InsertBatched(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("many");
  const JournalWindow window;
  int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    auto db = docdb::Database::open(path);
    std::vector<docdb::Document> docs;
    docs.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) docs.push_back(make_stats_doc(counter++));
    state.ResumeTiming();
    docdb::Collection& coll = db.value()->collection(measure::kPathsStats);
    benchmark::DoNotOptimize(coll.insert_many(std::move(docs)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  window.attach_to(state);
  std::filesystem::remove(path);
}

// The group-commit pipeline case: four survey threads batching their own
// destination's statistics into the same journaled collection.  Encoding
// happens off the collection lock and the writer thread coalesces
// concurrent batches into group commits, so aggregate docs/sec should
// scale past the single-writer batched case instead of serializing on
// durability.  Each benchmark thread plays one survey worker; ids are
// unique per (thread, iteration) so the shared database keeps accepting.
void BM_InsertBatchedParallel(benchmark::State& state) {
  static std::unique_ptr<docdb::Database> shared_db;
  static JournalWindow shared_window;
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("par");
  if (state.thread_index() == 0) {
    std::filesystem::remove(path);
    shared_db = std::move(docdb::Database::open(path).value());
    shared_window = JournalWindow{};
  }
  // The state loop entry is a barrier across threads, so thread 0's
  // setup above is visible to everyone before the first iteration.
  int iter = 0;
  for (auto _ : state) {
    // stats_document derives _id from (path_id, timestamp); a per-thread
    // path_id that changes every iteration keeps every _id unique.
    const std::string path_id = "p" + std::to_string(state.thread_index()) +
                                "_" + std::to_string(iter++);
    std::vector<docdb::Document> docs;
    docs.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      docs.push_back(make_stats_doc(i, path_id));
    }
    benchmark::DoNotOptimize(
        shared_db->collection(measure::kPathsStats).insert_many(std::move(docs)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  if (state.thread_index() == 0) {
    shared_db.reset();
    shared_window.attach_to(state);
    std::filesystem::remove(path);
  }
}

// Compact-under-load: the write gate lets compact() run against live
// writers instead of requiring a quiesced database.  This measures what
// a mid-campaign journal rewrite costs the writers (and itself): each
// iteration is one compact() while four survey threads keep batching.
// The upin_compact_* counters land in the report via state.counters.
void BM_CompactUnderLoad(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const std::string path = temp_journal("compact");
  std::filesystem::remove(path);
  auto db = std::move(docdb::Database::open(path).value());
  docdb::Collection& coll = db->collection(measure::kPathsStats);
  const std::uint64_t runs_before = journal_counter("upin_compact_runs_total");
  const std::uint64_t records_before =
      journal_counter("upin_compact_records_total");

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&coll, &done, batch, w] {
      int iter = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const std::string path_id =
            "c" + std::to_string(w) + "_" + std::to_string(iter++);
        std::vector<docdb::Document> docs;
        docs.reserve(static_cast<std::size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          docs.push_back(make_stats_doc(i, path_id));
        }
        benchmark::DoNotOptimize(coll.insert_many(std::move(docs)));
      }
    });
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->compact());
  }
  done.store(true);
  for (auto& t : writers) t.join();

  state.counters["compact_runs"] = static_cast<double>(
      journal_counter("upin_compact_runs_total") - runs_before);
  state.counters["compact_failures"] = static_cast<double>(
      journal_counter("upin_compact_failures_total"));
  state.counters["records_per_compact"] =
      state.iterations() > 0
          ? static_cast<double>(
                journal_counter("upin_compact_records_total") -
                records_before) /
                static_cast<double>(state.iterations())
          : 0.0;
  db.reset();
  std::filesystem::remove(path);
}

BENCHMARK(BM_InsertOneByOne)->Arg(8)->Arg(24)->Arg(96);
BENCHMARK(BM_InsertBatched)->Arg(8)->Arg(24)->Arg(96);
BENCHMARK(BM_InsertBatchedParallel)
    ->Arg(8)
    ->Arg(24)
    ->Arg(96)
    ->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_CompactUnderLoad)->Arg(24)->UseRealTime();

}  // namespace

// BENCHMARK_MAIN plus a closing metrics table: the cumulative journal
// pipeline picture (flush-latency percentiles, mean group size,
// backpressure stalls) across every benchmark that just ran.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::fprintf(stderr, "\n%s",
               obs::pipeline_summary(obs::Registry::global()).c_str());
  return 0;
}
