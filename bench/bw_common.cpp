#include "bw_common.hpp"

#include <map>

#include "common.hpp"

namespace upin::bench {

namespace {

/// Raw per-path bandwidth samples, one vector per (direction, size).
struct PathSamples {
  std::vector<double> up_64, up_mtu, down_64, down_mtu;
};

}  // namespace

int run_bw_figure(int argc, char** argv, double target_mbps,
                  const char* title, const char* subtitle) {
  const bool csv = want_csv(argc, argv);

  Campaign campaign;
  measure::TestSuiteConfig config;
  config.iterations = 20;
  config.server_ids = {{kGermanyId}};
  config.bw_target_mbps = target_mbps;
  campaign.run(config);

  // Collect raw samples per path (the paper's whiskers need the spread,
  // not just the mean).
  std::map<std::string, PathSamples> samples;
  campaign.db()
      .collection(measure::kPathsStats)
      .for_each([&](const docdb::Document& doc) {
        const auto sample = measure::parse_stats_document(doc);
        if (!sample.ok()) return;
        PathSamples& slot = samples[sample.value().path_id];
        if (sample.value().bw_up_64) slot.up_64.push_back(*sample.value().bw_up_64);
        if (sample.value().bw_up_mtu) slot.up_mtu.push_back(*sample.value().bw_up_mtu);
        if (sample.value().bw_down_64) slot.down_64.push_back(*sample.value().bw_down_64);
        if (sample.value().bw_down_mtu) slot.down_mtu.push_back(*sample.value().bw_down_mtu);
      });

  const std::vector<select::PathSummary> summaries =
      campaign.summaries(kGermanyId);

  if (csv) {
    std::printf(
        "path_id,hops,series,median,q1,q3,whisker_low,whisker_high\n");
  } else {
    print_header(title, subtitle);
    std::printf("%-6s %-4s %-10s %s\n", "path", "hops", "series",
                "median [q1, q3] (whiskers)");
  }

  util::RunningMoments up64, upmtu, down64, downmtu;
  for (const select::PathSummary& s : summaries) {
    const auto it = samples.find(s.path_id);
    if (it == samples.end()) continue;
    const auto series = {
        std::pair<const char*, const std::vector<double>*>{"up_64", &it->second.up_64},
        {"up_mtu", &it->second.up_mtu},
        {"down_64", &it->second.down_64},
        {"down_mtu", &it->second.down_mtu},
    };
    for (const auto& [name, values] : series) {
      if (values->empty()) continue;
      const util::BoxStats box = util::box_stats(*values);
      if (csv) {
        std::printf("%s,%zu,%s,%.3f,%.3f,%.3f,%.3f,%.3f\n", s.path_id.c_str(),
                    s.hop_count, name, box.median, box.q1, box.q3,
                    box.whisker_low, box.whisker_high);
      } else {
        std::printf("%-6s %-4zu %-10s %7.2f  [%6.2f, %6.2f]  (%6.2f - %6.2f)\n",
                    s.path_id.c_str(), s.hop_count, name, box.median, box.q1,
                    box.q3, box.whisker_low, box.whisker_high);
      }
    }
    if (s.mean_bw_up_64) up64.add(*s.mean_bw_up_64);
    if (s.mean_bw_up_mtu) upmtu.add(*s.mean_bw_up_mtu);
    if (s.mean_bw_down_64) down64.add(*s.mean_bw_down_64);
    if (s.mean_bw_down_mtu) downmtu.add(*s.mean_bw_down_mtu);
  }

  if (!csv) {
    std::printf("\nfleet means @ %.0f Mbps target:\n", target_mbps);
    std::printf("  upstream   : 64B %6.2f Mbps, MTU %6.2f Mbps\n",
                up64.mean(), upmtu.mean());
    std::printf("  downstream : 64B %6.2f Mbps, MTU %6.2f Mbps\n",
                down64.mean(), downmtu.mean());
    const bool down_wins =
        down64.mean() > up64.mean() && downmtu.mean() > upmtu.mean();
    const bool mtu_wins = upmtu.mean() > up64.mean() &&
                          downmtu.mean() > down64.mean();
    const bool small_wins = up64.mean() > upmtu.mean() &&
                            down64.mean() > downmtu.mean();
    std::printf("  checks: downstream > upstream: %s; %s\n",
                down_wins ? "yes" : "NO",
                mtu_wins   ? "MTU > 64B (paper Fig 7 shape)"
                : small_wins ? "64B > MTU (paper Fig 8 inversion)"
                             : "no consistent packet-size ordering");
  }
  return 0;
}

}  // namespace upin::bench
