// bw_common.hpp — shared harness for the Fig 7 / Fig 8 bandwidth figures.
#pragma once

namespace upin::bench {

/// Run a bandwidth figure at `target_mbps` against the Germany AP and
/// print per-path mean bandwidths (up/down x 64/MTU) plus the ordering
/// checks the paper derives.  Returns the process exit code.
int run_bw_figure(int argc, char** argv, double target_mbps,
                  const char* title, const char* subtitle);

}  // namespace upin::bench
