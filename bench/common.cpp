#include "common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/strings.hpp"

namespace upin::bench {

double seconds_per_path_test(const measure::TestSuiteConfig& c) {
  const double ping_s = static_cast<double>(c.ping_count) * c.ping_interval_s;
  const double bw_s = 4.0 * c.bw_duration_s;  // {64,MTU} x {cs,sc}
  return ping_s + bw_s + c.inter_test_gap_s;
}

Campaign::Campaign(std::uint64_t seed, simnet::NetworkConfig net_config,
                   const std::string& journal_path)
    : env_(scion::scionlab_topology()),
      host_(std::make_unique<apps::ScionHost>(env_, seed, env_.user_as,
                                              "10.0.8.1", net_config)),
      db_(&memory_) {
  if (!journal_path.empty()) {
    auto opened = docdb::Database::open(journal_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open journal %s: %s\n",
                   journal_path.c_str(), opened.error().message.c_str());
      std::abort();
    }
    durable_ = std::move(opened).value();
    db_ = durable_.get();
  }
}

measure::TestSuiteProgress Campaign::run(
    const measure::TestSuiteConfig& config) {
  measure::TestSuite suite(*host_, *db_, config);
  const util::Status status = suite.run();
  if (!status.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 status.error().message.c_str());
    std::abort();
  }
  return suite.progress();
}

std::vector<select::PathSummary> Campaign::summaries(int server_id) const {
  select::PathSelector selector(*db_, env_.topology);
  const auto result = selector.summarize(server_id);
  if (!result.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 result.error().message.c_str());
    std::abort();
  }
  return result.value();
}

bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

std::string render_box(const util::BoxStats& box) {
  return util::format("q1 %7.2f | med %7.2f | q3 %7.2f  whisk [%7.2f, %7.2f]",
                      box.q1, box.median, box.q3, box.whisker_low,
                      box.whisker_high);
}

std::string ascii_box(const util::BoxStats& box, double lo, double hi,
                      int width) {
  std::string row(static_cast<std::size_t>(width), ' ');
  const auto column = [&](double value) {
    const double fraction = (value - lo) / (hi - lo);
    const int col = static_cast<int>(fraction * (width - 1));
    return static_cast<std::size_t>(std::clamp(col, 0, width - 1));
  };
  for (std::size_t c = column(box.whisker_low); c <= column(box.whisker_high);
       ++c) {
    row[c] = '-';
  }
  for (std::size_t c = column(box.q1); c <= column(box.q3); ++c) row[c] = '=';
  row[column(box.median)] = '#';
  return row;
}

void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

}  // namespace upin::bench
