// common.hpp — shared harness for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper as a text table
// (CSV with --csv).  A Campaign bundles testbed + host + database +
// test-suite the way the paper's VM did, so benches differ only in the
// destinations, targets and staging they apply.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/host.hpp"
#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"
#include "util/stats.hpp"

namespace upin::bench {

/// Featured destinations (paper §6): ids in the availableServers registry.
inline constexpr int kGermanyId = 1;
inline constexpr int kNVirginiaId = 2;
inline constexpr int kIrelandId = 3;
inline constexpr int kSingaporeId = 4;
inline constexpr int kKoreaId = 5;

/// Virtual seconds one path test occupies (ping 30x0.1 + 4 bwtest
/// directions x 3 s + the configured gap) — used to stage outages.
[[nodiscard]] double seconds_per_path_test(const measure::TestSuiteConfig& c);

/// One testbed instance wired like the paper's measurement VM.
class Campaign {
 public:
  /// With a non-empty `journal_path` the database is durable: writes run
  /// through the group-commit journal pipeline, so the bench exercises
  /// (and its metrics table reports) the real storage path.  An empty
  /// path keeps the database in-memory, as before.
  explicit Campaign(std::uint64_t seed = 42,
                    simnet::NetworkConfig net_config = {},
                    const std::string& journal_path = {});

  [[nodiscard]] const scion::ScionlabEnv& env() const noexcept { return env_; }
  [[nodiscard]] apps::ScionHost& host() noexcept { return *host_; }
  [[nodiscard]] docdb::Database& db() noexcept { return *db_; }
  [[nodiscard]] const docdb::Database& db() const noexcept { return *db_; }
  [[nodiscard]] bool durable() const noexcept { return durable_ != nullptr; }

  /// Run the measurement campaign; aborts the process on engine errors
  /// (benches have no recovery story).
  measure::TestSuiteProgress run(const measure::TestSuiteConfig& config);

  /// Aggregated per-path summaries for one destination.
  [[nodiscard]] std::vector<select::PathSummary> summaries(int server_id) const;

 private:
  scion::ScionlabEnv env_;
  std::unique_ptr<apps::ScionHost> host_;
  docdb::Database memory_;
  std::unique_ptr<docdb::Database> durable_;
  docdb::Database* db_ = nullptr;
};

/// True when argv contains --csv.
[[nodiscard]] bool want_csv(int argc, char** argv);

/// Render box statistics as a fixed-width text cell
/// "q1 12.3 | med 13.1 | q3 14.0  whiskers [11.8, 15.2]".
[[nodiscard]] std::string render_box(const util::BoxStats& box);

/// A crude horizontal ASCII box plot of [lo, hi] scaled to `width` cols.
[[nodiscard]] std::string ascii_box(const util::BoxStats& box, double lo,
                                    double hi, int width = 56);

/// Print a section header.
void print_header(const std::string& title, const std::string& subtitle);

}  // namespace upin::bench
