// fig1_topology — reproduces paper Fig 1, the SCIONLab topology diagram.
//
// "in light orange there are Core ASes; Non-Core ASes are white colored;
// Attachment Points are green; our AS is blue."  Emits the embedded
// testbed as Graphviz DOT with exactly that colour scheme (render with
// `dot -Tsvg`), plus a text census matching §3.1's description.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);  // csv => DOT only

  const scion::ScionlabEnv env = scion::scionlab_topology();
  const scion::Topology& topo = env.topology;

  if (!csv) {
    bench::print_header("Fig 1 — SCIONLab topology (Graphviz DOT below)",
                        "orange = core, white = non-core, green = "
                        "attachment point, blue = our AS");
    std::size_t cores = 0, aps = 0, plain = 0;
    for (const scion::AsInfo& info : topo.ases()) {
      switch (info.role) {
        case scion::AsRole::kCore: ++cores; break;
        case scion::AsRole::kAttachmentPoint: ++aps; break;
        case scion::AsRole::kNonCore: ++plain; break;
        case scion::AsRole::kUser: break;
      }
    }
    std::printf("ASes: %zu infrastructure + our AS "
                "(%zu core, %zu attachment points, %zu non-core); "
                "ISDs: %zu; links: %zu\n\n",
                topo.ases().size() - 1, cores, aps, plain,
                topo.isds().size(), topo.links().size());
  }

  std::printf("graph scionlab {\n");
  std::printf("  layout=neato; overlap=false; splines=true;\n");
  std::printf("  node [style=filled, fontsize=9];\n");
  for (const scion::AsInfo& info : topo.ases()) {
    const char* color = "white";
    switch (info.role) {
      case scion::AsRole::kCore: color = "orange"; break;
      case scion::AsRole::kAttachmentPoint: color = "palegreen"; break;
      case scion::AsRole::kUser: color = "lightblue"; break;
      case scion::AsRole::kNonCore: color = "white"; break;
    }
    std::printf("  \"%s\" [fillcolor=%s, label=\"%s\\n%s\"];\n",
                info.ia.to_string().c_str(), color, info.name.c_str(),
                info.ia.to_string().c_str());
  }
  for (const scion::AsLink& link : topo.links()) {
    const char* style = link.type == scion::LinkType::kCore ? "bold"
                        : link.type == scion::LinkType::kPeer ? "dashed"
                                                              : "solid";
    std::printf("  \"%s\" -- \"%s\" [style=%s];\n",
                link.a.to_string().c_str(), link.b.to_string().c_str(), style);
  }
  std::printf("}\n");
  return 0;
}
