// fig2_architecture — reproduces paper Fig 2, the software architecture.
//
// "Overview of the software architecture: the client interacts with each
// server to gather information about paths and then stores them in the
// database."  Emits the 3-tier architecture as Graphviz DOT, with each
// tier annotated by the module of this repository that implements it,
// and prints the three-step interaction model of §4.
#include <cstdio>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);  // csv => DOT only

  const scion::ScionlabEnv env = scion::scionlab_topology();
  if (!csv) {
    bench::print_header(
        "Fig 2 — software architecture (Graphviz DOT below)",
        "3-tier: measurement client x globally distributed servers x "
        "database");
    std::printf(
        "interaction model (§4):\n"
        "  1. Paths Collection      scion showpaths --extended -m 40   "
        "(upin::measure::TestSuite::collect_paths)\n"
        "  2. Paths Test Execution  ping + bwtest per path             "
        "(upin::measure::TestSuite::run_tests)\n"
        "  3. Stats Storage         batched insert per destination     "
        "(upin::docdb::Collection::insert_many)\n\n");
  }

  std::printf("digraph architecture {\n");
  std::printf("  rankdir=LR;\n");
  std::printf("  node [shape=box, style=filled, fillcolor=white, fontsize=10];\n");
  std::printf("  client [label=\"measurement client\\n%s\\n(upin::apps::ScionHost +\\nupin::measure::TestSuite)\", fillcolor=lightblue];\n",
              env.user_as.to_string().c_str());
  std::printf("  db [label=\"measurement database\\navailableServers / paths / paths_stats\\n(upin::docdb::Database)\", shape=cylinder, fillcolor=lightyellow];\n");
  std::printf("  subgraph cluster_servers {\n");
  std::printf("    label=\"globally distributed servers (21, upin::scion::scionlab_topology)\";\n");
  for (std::size_t i = 0; i < env.servers.size(); ++i) {
    const scion::AsInfo* info = env.topology.find_as(env.servers[i].ia);
    std::printf("    s%zu [label=\"%zu: %s\\n%s\"];\n", i + 1, i + 1,
                info != nullptr ? info->name.c_str() : "?",
                env.servers[i].ia.to_string().c_str());
  }
  std::printf("  }\n");
  for (std::size_t i = 0; i < env.servers.size(); ++i) {
    std::printf("  client -> s%zu [label=\"%s\", fontsize=7];\n", i + 1,
                i == 0 ? "showpaths / ping / bwtest" : "");
  }
  std::printf("  client -> db [label=\"batched stats (insert_many)\"];\n");
  std::printf("  db -> client [label=\"path selection queries\"];\n");
  std::printf("}\n");
  return 0;
}
