// fig3_schema — reproduces paper Fig 3, the database schema.
//
// "Database Schema presenting, from left-to-right, collection of paths'
// statistics, collection of each path for each server, and servers
// considered for the assessment."  Runs a one-iteration campaign against
// one destination and prints, per collection, the field inventory and a
// sample document — the live equivalent of the schema diagram.
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  bench::Campaign campaign;
  measure::TestSuiteConfig config;
  config.iterations = 1;
  config.server_ids = {{bench::kIrelandId}};
  campaign.run(config);

  if (!csv) {
    bench::print_header(
        "Fig 3 — database schema (availableServers, paths, paths_stats)",
        "field inventory + one sample document per collection");
  } else {
    std::printf("collection,field,type,coverage_pct\n");
  }

  // Right-to-left in the paper's figure; natural build order here.
  for (const char* name : {measure::kAvailableServers, measure::kPaths,
                           measure::kPathsStats}) {
    const docdb::Collection* coll = campaign.db().find_collection(name);
    if (coll == nullptr) continue;

    // Field census (dotted for one nesting level, as in `bw.up_64`).
    std::map<std::string, std::pair<std::string, std::size_t>> fields;
    std::size_t documents = 0;
    coll->for_each([&](const docdb::Document& doc) {
      ++documents;
      for (const auto& [key, value] : doc.as_object()) {
        if (value.is_object()) {
          for (const auto& [inner_key, inner] : value.as_object()) {
            auto& slot = fields[key + "." + inner_key];
            slot.first = inner.type_name();
            ++slot.second;
          }
        } else {
          auto& slot = fields[key];
          slot.first = value.type_name();
          ++slot.second;
        }
      }
    });

    if (csv) {
      for (const auto& [field, info] : fields) {
        std::printf("%s,%s,%s,%.0f\n", name, field.c_str(),
                    info.first.c_str(),
                    100.0 * static_cast<double>(info.second) /
                        static_cast<double>(documents));
      }
      continue;
    }

    std::printf("\n%s (%zu documents):\n", name, documents);
    for (const auto& [field, info] : fields) {
      std::printf("  %-22s %-8s present in %3.0f%%\n", field.c_str(),
                  info.first.c_str(),
                  100.0 * static_cast<double>(info.second) /
                      static_cast<double>(documents));
    }
    docdb::FindOptions first_only;
    first_only.limit = 1;
    const auto sample = coll->find(docdb::Filter::match_all(), first_only);
    if (!sample.empty()) {
      std::printf("  sample: %s\n", sample.front().dump().c_str());
    }
  }
  return 0;
}
