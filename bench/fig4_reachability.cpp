// fig4_reachability — reproduces paper Fig 4 and the §6 headline numbers.
//
// "Server Reachability from MY_AS#1": for each of the 21 availableServers
// destinations, the minimum hop count of any discovered path; reported as
// the histogram (#destinations per minimum hop count), the average path
// length (paper: 5.66) and the share of destinations reachable within
// 6 hops (paper: ~70%).
//
// With --churn the bench instead drives a revocation storm and compares
// cache-served lookups against uncached segment recombination: both arms
// must agree on reachability at every instant, and the cached arm must be
// at least 10x faster.  Exits non-zero when either property fails, so CI
// can pin it.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <set>

#include "common.hpp"

namespace {

/// Wall-clock nanoseconds spent in `body()` (the bench's only use of real
/// time — virtual time drives everything else).
template <typename Body>
std::uint64_t time_ns(Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

/// The --churn mode: one virtual hour of flap storm, sampled every 60 s.
/// At each instant, for every destination, resolve the live path set two
/// ways — through the host's path cache and by recombining segments from
/// scratch — and check the sequence sets match exactly.
int run_churn(bool csv) {
  using namespace upin;
  using util::SimTime;

  simnet::NetworkConfig net;
  net.server_error_prob = 0.0;
  net.faults.link_flap_per_hour = 6.0;
  net.faults.server_down_per_hour = 2.0;
  bench::Campaign campaign(42, net);
  const auto& servers = campaign.env().servers;
  const scion::IsdAsn src = campaign.env().user_as;
  scion::ControlPlane& control_plane = campaign.host().control_plane();
  const scion::Beaconing& beaconing = campaign.host().beaconing();

  if (control_plane.revocations().events().empty()) {
    std::fprintf(stderr, "churn: storm emitted no revocations (vacuous)\n");
    return 1;
  }

  constexpr int kSteps = 60;           // one virtual hour...
  constexpr double kStepSeconds = 60;  // ...sampled every minute
  constexpr int kLookupsPerSample = 32;

  std::uint64_t cached_ns = 0;
  std::uint64_t uncached_ns = 0;
  std::size_t samples = 0;
  std::size_t mismatches = 0;
  std::size_t revoked_filtered = 0;

  for (int step = 0; step < kSteps; ++step) {
    const SimTime now = util::sim_seconds(step * kStepSeconds);
    control_plane.sync(now);
    for (const auto& server : servers) {
      std::vector<scion::Path> cached;
      cached_ns += time_ns([&] {
        for (int i = 0; i < kLookupsPerSample; ++i) {
          cached = control_plane.live_paths(src, server.ia, now);
        }
      });
      std::vector<scion::Path> uncached;
      uncached_ns += time_ns([&] {
        for (int i = 0; i < kLookupsPerSample; ++i) {
          uncached = beaconing.paths(src, server.ia);
          uncached.erase(
              std::remove_if(uncached.begin(), uncached.end(),
                             [&](const scion::Path& path) {
                               return control_plane.path_revoked(path, now);
                             }),
              uncached.end());
        }
      });
      revoked_filtered +=
          beaconing.paths(src, server.ia).size() - uncached.size();
      ++samples;

      // Reachability parity: identical surviving sequences.  Compare the
      // hop sequences, not Path equality — the cached arm flags expired
      // paths "stale" where a fresh recombination says "alive".
      std::multiset<std::string> cached_seqs;
      for (const scion::Path& path : cached) {
        cached_seqs.insert(path.sequence());
      }
      std::multiset<std::string> uncached_seqs;
      for (const scion::Path& path : uncached) {
        uncached_seqs.insert(path.sequence());
      }
      if (cached_seqs != uncached_seqs) {
        ++mismatches;
        std::fprintf(stderr,
                     "churn: reachability diverged at t=%.0fs dst=%s "
                     "(cached %zu paths, uncached %zu)\n",
                     step * kStepSeconds, server.ia.to_string().c_str(),
                     cached_seqs.size(), uncached_seqs.size());
      }
    }
  }

  const double lookups =
      static_cast<double>(samples) * kLookupsPerSample;
  const double cached_us = static_cast<double>(cached_ns) / 1e3 / lookups;
  const double uncached_us = static_cast<double>(uncached_ns) / 1e3 / lookups;
  const double speedup =
      cached_ns > 0
          ? static_cast<double>(uncached_ns) / static_cast<double>(cached_ns)
          : 0.0;
  const scion::PathCache::Stats& stats = control_plane.cache().stats();

  if (csv) {
    std::printf("metric,value\n");
    std::printf("samples,%zu\n", samples);
    std::printf("mismatches,%zu\n", mismatches);
    std::printf("revoked_filtered,%zu\n", revoked_filtered);
    std::printf("cached_us_per_lookup,%.3f\n", cached_us);
    std::printf("uncached_us_per_lookup,%.3f\n", uncached_us);
    std::printf("speedup,%.1f\n", speedup);
  } else {
    bench::print_header(
        "Churn — cached vs uncached path lookup under a revocation storm",
        "6 link flaps/h + 2 server outages/h; every sample compares the "
        "cache-served live set against a fresh recombination");
    std::printf("samples                : %zu (%d instants x %zu dsts)\n",
                samples, kSteps, servers.size());
    std::printf("reachability mismatches: %zu (must be 0)\n", mismatches);
    std::printf("paths revoked away     : %zu across the sweep\n",
                revoked_filtered);
    std::printf("cache hits/misses/stale: %zu / %zu / %zu\n", stats.hits,
                stats.misses, stats.stale_served);
    std::printf("cached lookup          : %.2f us\n", cached_us);
    std::printf("uncached recombination : %.2f us\n", uncached_us);
    std::printf("speedup                : %.1fx (must be >= 10x)\n", speedup);
  }

  if (mismatches > 0) return 1;
  if (speedup < 10.0) {
    std::fprintf(stderr, "churn: cached lookup only %.1fx faster\n", speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--churn") == 0) return run_churn(csv);
  }

  bench::Campaign campaign;
  const auto& servers = campaign.env().servers;

  std::map<std::size_t, std::vector<int>> histogram;  // min hops -> ids
  double hop_sum = 0.0;
  std::size_t reachable = 0;
  std::size_t within_six = 0;

  apps::ShowpathsOptions options;
  options.max_paths = 40;
  options.extended = true;

  for (std::size_t i = 0; i < servers.size(); ++i) {
    const int server_id = static_cast<int>(i) + 1;
    const auto listings = campaign.host().showpaths(servers[i].ia, options);
    if (!listings.ok() || listings.value().empty()) continue;
    const std::size_t min_hops = listings.value().front().path.hop_count();
    histogram[min_hops].push_back(server_id);
    hop_sum += static_cast<double>(min_hops);
    ++reachable;
    if (min_hops <= 6) ++within_six;
  }

  if (!csv) {
    bench::print_header(
        "Fig 4 — Server Reachability from MY_AS (" +
            campaign.env().user_as.to_string() + ")",
        "destinations requiring a minimum hop count (paper: avg 5.66, "
        "~70% within 6 hops)");
    std::printf("%-10s %-14s %s\n", "min hops", "#destinations", "server ids");
  } else {
    std::printf("min_hops,destinations\n");
  }

  for (const auto& [hops, ids] : histogram) {
    if (csv) {
      std::printf("%zu,%zu\n", hops, ids.size());
      continue;
    }
    std::string bar(ids.size() * 3, '#');
    std::string id_list;
    for (const int id : ids) {
      if (!id_list.empty()) id_list += ",";
      id_list += std::to_string(id);
    }
    std::printf("%-10zu %-3zu %-33s [%s]\n", hops, ids.size(), bar.c_str(),
                id_list.c_str());
  }

  const double avg = hop_sum / static_cast<double>(reachable);
  const double pct_within_six =
      100.0 * static_cast<double>(within_six) / static_cast<double>(reachable);
  if (csv) {
    std::printf("# reachable=%zu avg=%.2f within6=%.1f%%\n", reachable, avg,
                pct_within_six);
  } else {
    std::printf("\nreachable destinations : %zu (paper: 21)\n", reachable);
    std::printf("average path length    : %.2f hops (paper: 5.66)\n", avg);
    std::printf("within 6 hops          : %.1f%% (paper: ~70%%)\n",
                pct_within_six);
  }
  return 0;
}
