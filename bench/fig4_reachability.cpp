// fig4_reachability — reproduces paper Fig 4 and the §6 headline numbers.
//
// "Server Reachability from MY_AS#1": for each of the 21 availableServers
// destinations, the minimum hop count of any discovered path; reported as
// the histogram (#destinations per minimum hop count), the average path
// length (paper: 5.66) and the share of destinations reachable within
// 6 hops (paper: ~70%).
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  bench::Campaign campaign;
  const auto& servers = campaign.env().servers;

  std::map<std::size_t, std::vector<int>> histogram;  // min hops -> ids
  double hop_sum = 0.0;
  std::size_t reachable = 0;
  std::size_t within_six = 0;

  apps::ShowpathsOptions options;
  options.max_paths = 40;
  options.extended = true;

  for (std::size_t i = 0; i < servers.size(); ++i) {
    const int server_id = static_cast<int>(i) + 1;
    const auto listings = campaign.host().showpaths(servers[i].ia, options);
    if (!listings.ok() || listings.value().empty()) continue;
    const std::size_t min_hops = listings.value().front().path.hop_count();
    histogram[min_hops].push_back(server_id);
    hop_sum += static_cast<double>(min_hops);
    ++reachable;
    if (min_hops <= 6) ++within_six;
  }

  if (!csv) {
    bench::print_header(
        "Fig 4 — Server Reachability from MY_AS (" +
            campaign.env().user_as.to_string() + ")",
        "destinations requiring a minimum hop count (paper: avg 5.66, "
        "~70% within 6 hops)");
    std::printf("%-10s %-14s %s\n", "min hops", "#destinations", "server ids");
  } else {
    std::printf("min_hops,destinations\n");
  }

  for (const auto& [hops, ids] : histogram) {
    if (csv) {
      std::printf("%zu,%zu\n", hops, ids.size());
      continue;
    }
    std::string bar(ids.size() * 3, '#');
    std::string id_list;
    for (const int id : ids) {
      if (!id_list.empty()) id_list += ",";
      id_list += std::to_string(id);
    }
    std::printf("%-10zu %-3zu %-33s [%s]\n", hops, ids.size(), bar.c_str(),
                id_list.c_str());
  }

  const double avg = hop_sum / static_cast<double>(reachable);
  const double pct_within_six =
      100.0 * static_cast<double>(within_six) / static_cast<double>(reachable);
  if (csv) {
    std::printf("# reachable=%zu avg=%.2f within6=%.1f%%\n", reachable, avg,
                pct_within_six);
  } else {
    std::printf("\nreachable destinations : %zu (paper: 21)\n", reachable);
    std::printf("average path length    : %.2f hops (paper: 5.66)\n", avg);
    std::printf("within 6 hops          : %.1f%% (paper: ~70%%)\n",
                pct_within_six);
  }
  return 0;
}
