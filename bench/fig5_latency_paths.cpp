// fig5_latency_paths — reproduces paper Fig 5.
//
// "Average Latency Values measured for each path of destination
// 16-ffaa:0:1002 (AWS - Ireland)": per-path whisker plots of the average
// RTT over many campaign iterations, paths split into the minimum hop
// count group and the min+1 group.  The paper's key reading — latency
// separates into three layers keyed by the geography of the second-last
// hop (Europe / Ohio / Singapore), not by hop count — is printed as the
// "via" column and the layer summary.
#include <algorithm>
#include <map>

#include "common.hpp"
#include "scion/path.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  bench::Campaign campaign;
  measure::TestSuiteConfig config;
  config.iterations = 30;
  config.server_ids = {{bench::kIrelandId}};
  campaign.run(config);

  const std::vector<select::PathSummary> summaries =
      campaign.summaries(bench::kIrelandId);

  double max_latency = 0.0;
  std::size_t min_hops = SIZE_MAX;
  for (const select::PathSummary& s : summaries) {
    if (s.latency_ms.has_value()) {
      max_latency = std::max(max_latency, s.latency_ms->whisker_high);
    }
    min_hops = std::min(min_hops, s.hop_count);
  }

  if (csv) {
    std::printf("path_id,hops,via,q1,median,q3,wlo,whi,samples\n");
  } else {
    bench::print_header(
        "Fig 5 — Average latency per path, destination 16-ffaa:0:1002 "
        "(AWS Ireland)",
        "box stats over campaign samples; groups: " +
            std::to_string(min_hops) + " hops vs " +
            std::to_string(min_hops + 1) + " hops (paper: 6 vs 7)");
  }

  // Layer accounting keyed by the second-last hop (paper §6.1).
  std::map<std::string, std::vector<double>> layer_medians;

  for (const select::PathSummary& s : summaries) {
    if (!s.latency_ms.has_value()) continue;
    const scion::IsdAsn second_last = s.hops[s.hops.size() - 2];
    const scion::AsInfo* info =
        campaign.env().topology.find_as(second_last);
    const std::string via =
        info != nullptr ? info->city : second_last.to_string();
    layer_medians[via].push_back(s.latency_ms->median);

    if (csv) {
      std::printf("%s,%zu,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%zu\n",
                  s.path_id.c_str(), s.hop_count, via.c_str(),
                  s.latency_ms->q1, s.latency_ms->median, s.latency_ms->q3,
                  s.latency_ms->whisker_low, s.latency_ms->whisker_high,
                  s.latency_samples);
    } else {
      const char group = s.hop_count == min_hops ? 'R' : 'P';  // red/purple
      std::printf("%-6s %zu hops [%c] via %-10s %s\n", s.path_id.c_str(),
                  s.hop_count, group, via.c_str(),
                  bench::render_box(*s.latency_ms).c_str());
      std::printf("       |%s|\n",
                  bench::ascii_box(*s.latency_ms, 0.0, max_latency).c_str());
    }
  }

  if (!csv) {
    std::printf("\nlatency layers by second-last hop (paper: three layers; "
                "Ohio and Singapore detours dominate hop count):\n");
    for (const auto& [via, medians] : layer_medians) {
      std::printf("  via %-10s : %2zu paths, median of medians %8.2f ms\n",
                  via.c_str(), medians.size(), util::median(medians));
    }
  }
  return 0;
}
