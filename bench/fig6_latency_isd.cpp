// fig6_latency_isd — reproduces paper Fig 6.
//
// "Average latency for each ISD set grouped by hop count" for the Ireland
// destination.  Left panel: all measurements grouped by (traversed ISD
// set, hop count).  Right panel: the same after excluding long-distance
// paths (those deviating through AWS Singapore 16-ffaa:0:1007 or AWS Ohio
// 16-ffaa:0:1004) — the paper's §6.1 exercise showing that hop count and
// ISD membership do not explain latency once geography is controlled for.
#include <algorithm>
#include <map>

#include "common.hpp"
#include "util/strings.hpp"

namespace {

std::string isd_set_key(const std::vector<std::int64_t>& isds) {
  std::string key = "{";
  for (std::size_t i = 0; i < isds.size(); ++i) {
    if (i != 0) key += ",";
    key += std::to_string(isds[i]);
  }
  return key + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  bench::Campaign campaign;
  measure::TestSuiteConfig config;
  config.iterations = 30;
  config.server_ids = {{bench::kIrelandId}};
  campaign.run(config);

  const std::vector<select::PathSummary> summaries =
      campaign.summaries(bench::kIrelandId);

  const auto is_long_distance = [](const select::PathSummary& s) {
    return std::any_of(s.hops.begin(), s.hops.end(), [](scion::IsdAsn ia) {
      return ia == scion::scionlab::kSingapore || ia == scion::scionlab::kOhio;
    });
  };

  // group key -> per-path median latencies
  struct Group {
    std::vector<double> all;
    std::vector<double> without_long_distance;
  };
  std::map<std::string, Group> groups;
  for (const select::PathSummary& s : summaries) {
    if (!s.latency_ms.has_value()) continue;
    const std::string key =
        isd_set_key(s.isds) + " / " + std::to_string(s.hop_count) + " hops";
    groups[key].all.push_back(s.latency_ms->median);
    if (!is_long_distance(s)) {
      groups[key].without_long_distance.push_back(s.latency_ms->median);
    }
  }

  if (csv) {
    std::printf("isd_set_hops,panel,paths,min,median,max,spread\n");
  } else {
    bench::print_header(
        "Fig 6 — Latency by traversed-ISD set x hop count (AWS Ireland)",
        "left: all paths; right: excluding Singapore/Ohio detours "
        "(16-ffaa:0:1007, 16-ffaa:0:1004)");
    std::printf("%-26s | %-34s | %s\n", "ISD set / hops",
                "all paths (min med max spread)",
                "excl. long-distance");
  }

  for (const auto& [key, group] : groups) {
    const auto panel = [](const std::vector<double>& medians) -> std::string {
      if (medians.empty()) return "(empty)";
      const double lo = *std::min_element(medians.begin(), medians.end());
      const double hi = *std::max_element(medians.begin(), medians.end());
      return util::format("%2zu paths %7.1f %7.1f %7.1f %7.1f", medians.size(),
                          lo, util::median(medians), hi, hi - lo);
    };
    if (csv) {
      const auto row = [&](const char* name,
                           const std::vector<double>& medians) {
        if (medians.empty()) return;
        const double lo = *std::min_element(medians.begin(), medians.end());
        const double hi = *std::max_element(medians.begin(), medians.end());
        std::printf("%s,%s,%zu,%.2f,%.2f,%.2f,%.2f\n", key.c_str(), name,
                    medians.size(), lo, util::median(medians), hi, hi - lo);
      };
      row("all", group.all);
      row("excl_long_distance", group.without_long_distance);
    } else {
      std::printf("%-26s | %-34s | %s\n", key.c_str(),
                  panel(group.all).c_str(),
                  panel(group.without_long_distance).c_str());
    }
  }

  if (!csv) {
    std::printf(
        "\npaper reading: within one ISD set, adding a hop widens the "
        "spread only because of\nlong-distance members; excluding them "
        "leaves compact, comparable boxes.\n");
  }
  return 0;
}
