// fig7_bw_12mbps — reproduces paper Fig 7.
//
// "Average bandwidth values for each path, requiring a bandwidth of
// 12Mbps from and to a Germany Server" (Magdeburg AP 19-ffaa:0:1303):
// upstream (client->server) on the left, downstream on the right; per
// path two whiskers — MTU-sized packets vs 64-byte packets.  Expected
// shape (paper §6.2): upstream below downstream (access asymmetry), and
// 64-byte bandwidth below MTU bandwidth (per-packet header overhead).
#include "bw_common.hpp"

int main(int argc, char** argv) {
  return upin::bench::run_bw_figure(
      argc, argv, 12.0,
      "Fig 7 — Bandwidth per path @ 12 Mbps target, Germany AP "
      "19-ffaa:0:1303",
      "paper shape: downstream > upstream; MTU > 64-byte at this target");
}
