// fig8_bw_150mbps — reproduces paper Fig 8.
//
// Same setup as Fig 7 but demanding 150 Mbps: the network saturates and
// the ordering *inverts* — 64-byte streams achieve more than MTU-sized
// streams (paper §6.2's counter-intuitive finding; in this model it
// emerges from fragmentation loss coupling under overload; see
// ablation_lossmodel for the knob that removes it).
#include "bw_common.hpp"

int main(int argc, char** argv) {
  return upin::bench::run_bw_figure(
      argc, argv, 150.0,
      "Fig 8 — Bandwidth per path @ 150 Mbps target, Germany AP "
      "19-ffaa:0:1303",
      "paper shape: trend reverses — 64-byte beats MTU under saturation");
}
