// fig9_loss — reproduces paper Fig 9.
//
// "Average packet loss percentage for each path of AWS US N. Virginia":
// a scatter of observed loss ratios per path where the marker size is the
// number of measurements at that ratio.  The paper's reading: most paths
// sit at 0%, a few occasionally reach ~10% (transient micro-congestion),
// and a *consecutive* block of path ids registers 100%.  The paper's
// hypothesis is that a node shared by those paths' first halves suffered
// a congestion episode spanning their (sequential) measurements; we stage
// exactly that: the ETHZ attachment point (second hop of every path) goes
// dark during the per-iteration time window in which paths with index
// 6..8 are measured — the timeline does the rest.
#include <cmath>
#include <map>

#include "common.hpp"
#include "util/strings.hpp"

namespace {
constexpr int kEpisodeFirst = 6;  ///< first path index hit by the episode
constexpr int kEpisodeLast = 8;   ///< last path index hit by the episode
}  // namespace

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);

  bench::Campaign campaign;

  measure::TestSuiteConfig config;
  config.iterations = 8;
  config.server_ids = {{bench::kNVirginiaId}};

  // Phase 1 only, to learn how many paths one iteration visits.
  measure::TestSuite suite(campaign.host(), campaign.db(), config);
  if (!suite.initialize().ok() || !suite.collect_paths().ok()) {
    std::fprintf(stderr, "collection failed\n");
    return 1;
  }
  const std::size_t path_count =
      campaign.db().collection(measure::kPaths).size();

  // Stage the congestion episode: in every iteration, the window that
  // covers test slots [kEpisodeFirst, kEpisodeLast].
  const double slot_s = bench::seconds_per_path_test(config);
  const double iteration_s = slot_s * static_cast<double>(path_count);
  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    const double base = iteration_s * iteration;
    campaign.host().inject_outage(
        scion::scionlab::kEthzAp,
        util::sim_seconds(base + slot_s * kEpisodeFirst),
        util::sim_seconds(base + slot_s * (kEpisodeLast + 1)));
  }

  // Phase 2 with --skip semantics: paths are already collected.
  config.skip_collection = true;
  measure::TestSuite runner(campaign.host(), campaign.db(), config);
  if (!runner.run().ok()) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }

  // Collect raw loss readings per path.
  const docdb::Collection* stats =
      campaign.db().find_collection(measure::kPathsStats);
  std::map<std::string, std::map<int, int>> loss_counts;  // path -> pct -> n
  stats->for_each([&](const docdb::Document& doc) {
    const auto sample = measure::parse_stats_document(doc);
    if (!sample.ok()) return;
    const int pct = static_cast<int>(std::lround(sample.value().loss_pct));
    ++loss_counts[sample.value().path_id][pct];
  });

  const std::vector<select::PathSummary> summaries =
      campaign.summaries(bench::kNVirginiaId);

  if (csv) {
    std::printf("path_id,loss_pct,count\n");
  } else {
    bench::print_header(
        "Fig 9 — Packet loss per path, destination 16-ffaa:0:1003 "
        "(AWS N. Virginia)",
        util::format("dot size = measurements at that ratio; staged "
                     "congestion episode on the shared ETHZ-AP hop while "
                     "paths 2_%d..2_%d were measured",
                     kEpisodeFirst, kEpisodeLast));
    std::printf("%-6s %-5s %s\n", "path", "hops",
                "loss readings (pct x count)");
  }

  std::vector<std::string> full_loss_paths;
  for (const select::PathSummary& s : summaries) {
    const auto counts = loss_counts.find(s.path_id);
    std::string readings;
    bool all_full = counts != loss_counts.end() && !counts->second.empty();
    if (counts != loss_counts.end()) {
      for (const auto& [pct, n] : counts->second) {
        if (csv) std::printf("%s,%d,%d\n", s.path_id.c_str(), pct, n);
        readings += util::format(" %d%%x%d", pct, n);
        if (pct != 100) all_full = false;
      }
    }
    if (all_full) full_loss_paths.push_back(s.path_id);
    if (!csv) {
      std::printf("%-6s %-5zu%s\n", s.path_id.c_str(), s.hop_count,
                  readings.c_str());
    }
  }

  if (!csv) {
    std::printf("\npaths at a complete 100%% loss rate:");
    for (const std::string& id : full_loss_paths) std::printf(" %s", id.c_str());
    std::printf("\n(paper: consecutive ids 2_16..2_23 sharing first-half "
                "nodes — same mechanism, smaller path population)\n");
  }
  return 0;
}
