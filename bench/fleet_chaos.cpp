// fleet_chaos — the multi-tenant isolation harness as a standalone
// drill: N campaigns multiplexed over one process, chaos injected into
// exactly one of them, blast radius measured.
//
// Campaign 0 is the sacrificial tenant: garbled frames, dark-server and
// slow-responder windows, plus hard bandwidth-probe failures.  Every
// other campaign runs clean against its own destinations.  After the
// fleet completes, each clean campaign is re-run SOLO with the same
// split seed, and its fleet shard is compared byte-for-byte against the
// solo shard — the blast-radius-zero contract from
// tests/integration/fleet_isolation_test.cpp, scaled to a whole fleet.
//
// Usage:
//   fleet_chaos                          6-campaign drill, text table
//   fleet_chaos --campaigns N            fleet width (>= 2)
//   fleet_chaos --iterations N           units per destination (default 2)
//   fleet_chaos --error-budget N         quarantine threshold (default 8)
//   fleet_chaos --watchdog-deadline-ms N per-unit virtual deadline
//                                        (default 900000; 0 = off)
//   fleet_chaos --shed 0|1               load-shedding policy (default 1:
//                                        degraded tenants go ping-only)
//   fleet_chaos --threads N              worker threads (default 0 = auto)
//   fleet_chaos --seed N                 fleet seed (default 42)
//   fleet_chaos --out FILE               JSON report (BENCH_fleet.json)
//   fleet_chaos --gate                   exit 1 unless the chaos tenant is
//                                        contained AND every clean tenant
//                                        is byte-identical to its solo run
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "util/json.hpp"

namespace {

using namespace upin;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

simnet::NetworkConfig chaos_network() {
  simnet::NetworkConfig config;
  config.server_error_prob = 1.0;
  simnet::FaultPlanConfig faults;
  faults.garble_prob = 0.35;
  faults.server_down_per_hour = 8.0;
  faults.slow_per_hour = 8.0;
  config.faults = faults;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t campaigns = 6;
  int iterations = 2;
  std::size_t error_budget = 8;
  double watchdog_deadline_ms = 900000.0;
  bool shed = true;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  std::string out_path = "BENCH_fleet.json";
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--campaigns") == 0) {
      campaigns = std::max(2ul, std::stoul(next()));
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = std::max(1, std::stoi(next()));
    } else if (std::strcmp(argv[i], "--error-budget") == 0) {
      error_budget = std::stoul(next());
    } else if (std::strcmp(argv[i], "--watchdog-deadline-ms") == 0) {
      watchdog_deadline_ms = std::stod(next());
    } else if (std::strcmp(argv[i], "--shed") == 0) {
      shed = std::stoi(next()) != 0;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::stoul(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::stoull(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const scion::ScionlabEnv env = scion::scionlab_topology();
  fleet::FleetConfig config;
  config.seed = seed;
  config.threads = threads;
  config.error_budget = error_budget;
  config.watchdog_deadline_s = watchdog_deadline_ms / 1000.0;
  config.shed_enabled = shed;
  config.net_config.server_error_prob = 0.0;
  config.suite.iterations = iterations;
  config.suite.retry.max_attempts = 2;

  // Distinct destination per campaign, cycling the 21-server testbed.
  std::vector<fleet::CampaignSpec> specs(campaigns);
  for (std::size_t i = 0; i < campaigns; ++i) {
    specs[i].campaign_id = static_cast<int>(i);
    specs[i].server_ids = {static_cast<int>(1 + (2 + 2 * i) % 21)};
  }
  specs[0].net_config = chaos_network();
  specs[0].priority = 0;  // the chaos tenant is also lowest priority

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("fleet_chaos_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(base);

  fleet::FleetConfig fleet_config = config;
  fleet_config.data_dir = base + "/fleet";
  const auto result = fleet::FleetScheduler(env, fleet_config).run(specs);
  if (!result.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }

  // Solo replays of every clean tenant: the isolation oracle.
  std::filesystem::create_directories(base + "/solo");
  bool isolation_ok = true;
  std::vector<bool> tenant_ok(campaigns, true);
  for (std::size_t i = 1; i < campaigns; ++i) {
    const std::string solo_shard =
        base + "/solo/" + fleet::shard_filename(specs[i].campaign_id);
    const auto solo = fleet::run_campaign_solo(env, config, specs[i], solo_shard);
    const std::string fleet_shard =
        fleet_config.data_dir + "/" + fleet::shard_filename(specs[i].campaign_id);
    const bool ok = solo.ok() &&
                    result.value().campaigns[i].state ==
                        fleet::TenantState::kHealthy &&
                    read_file(fleet_shard) == read_file(solo_shard) &&
                    !read_file(solo_shard).empty();
    tenant_ok[i] = ok;
    isolation_ok = isolation_ok && ok;
  }
  const bool chaos_contained =
      result.value().campaigns[0].state != fleet::TenantState::kHealthy;

  std::printf("fleet_chaos: %zu campaigns, chaos on campaign 0, seed %llu\n",
              campaigns, static_cast<unsigned long long>(seed));
  std::printf("%-4s %-12s %6s %6s %6s %6s %9s %9s  %s\n", "id", "state",
              "units", "score", "shed", "wdog", "backpr", "resumed",
              "isolation");
  for (std::size_t i = 0; i < campaigns; ++i) {
    const fleet::CampaignStatus& s = result.value().campaigns[i];
    std::printf("%-4d %-12s %6zu %6zu %6zu %6zu %9zu %9zu  %s\n",
                s.campaign_id, std::string(fleet::to_string(s.state)).c_str(),
                s.units_run, s.error_score, s.progress.probes_shed,
                s.watchdog_trips, s.backpressure_rejections, s.units_resumed,
                i == 0 ? (chaos_contained ? "contained" : "ESCAPED")
                       : (tenant_ok[i] ? "bit-exact" : "DIVERGED"));
  }
  std::printf("wall %.2f s, isolation %s\n", result.value().wall_seconds,
              isolation_ok ? "OK" : "BROKEN");

  util::JsonObject report;
  report.set("campaigns", util::Value(static_cast<double>(campaigns)));
  report.set("error_budget", util::Value(static_cast<double>(error_budget)));
  report.set("shed_enabled", util::Value(shed));
  report.set("chaos_contained", util::Value(chaos_contained));
  report.set("isolation_ok", util::Value(isolation_ok));
  report.set("wall_seconds", util::Value(result.value().wall_seconds));
  util::Value::Array tenants;
  for (const fleet::CampaignStatus& s : result.value().campaigns) {
    util::JsonObject tenant;
    tenant.set("campaign_id", util::Value(s.campaign_id));
    tenant.set("state", util::Value(std::string(fleet::to_string(s.state))));
    tenant.set("units_run", util::Value(static_cast<double>(s.units_run)));
    tenant.set("error_score", util::Value(static_cast<double>(s.error_score)));
    tenant.set("probes_shed",
               util::Value(static_cast<double>(s.progress.probes_shed)));
    tenant.set("watchdog_trips",
               util::Value(static_cast<double>(s.watchdog_trips)));
    tenants.push_back(util::Value(std::move(tenant)));
  }
  report.set("tenants", util::Value(std::move(tenants)));
  std::ofstream(out_path) << util::Value(std::move(report)).dump() << "\n";

  std::filesystem::remove_all(base);
  if (gate && (!isolation_ok || !chaos_contained)) {
    std::fprintf(stderr, "GATE FAILED: %s\n",
                 !chaos_contained ? "chaos tenant escaped containment"
                                  : "clean tenant diverged from solo run");
    return 1;
  }
  return 0;
}
