// micro_core — performance-tracking microbenchmarks for the hot paths of
// the library (google-benchmark): JSON parse/serialize, filter matching,
// control-plane path combination, and a full single-destination campaign
// iteration.  Not a paper figure; a regression harness for contributors.
#include <benchmark/benchmark.h>

#include "apps/host.hpp"
#include "docdb/filter.hpp"
#include "measure/schema.hpp"
#include "measure/testsuite.hpp"
#include "scion/beacon.hpp"
#include "scion/scionlab.hpp"

namespace {

using namespace upin;

const char* kStatsJson =
    R"({"_id":"2_15_000000012000","path_id":"2_15","server_id":2,)"
    R"("timestamp_ms":12000,"hop_count":6,"isds":[16,17],)"
    R"("latency_ms":41.52,"loss_pct":3.3,"jitter_ms":0.61,)"
    R"("bw":{"up_64":4.1,"down_64":11.2,"up_mtu":9.0,"down_mtu":11.7},)"
    R"("target_mbps":12.0})";

void BM_JsonParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Value::parse(kStatsJson));
  }
}

void BM_JsonDump(benchmark::State& state) {
  const util::Value doc = util::Value::parse(kStatsJson).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.dump());
  }
}

void BM_FilterCompile(benchmark::State& state) {
  const util::Value query = util::Value::parse(
      R"({"server_id": 2, "loss_pct": {"$lt": 10}, "isds": {"$nin": [20]}})")
      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(docdb::Filter::compile(query));
  }
}

void BM_FilterMatch(benchmark::State& state) {
  const docdb::Filter filter =
      docdb::Filter::compile(
          util::Value::parse(
              R"({"server_id": 2, "loss_pct": {"$lt": 10}, "isds": 17})")
              .value())
          .value();
  const util::Value doc = util::Value::parse(kStatsJson).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches(doc));
  }
}

void BM_BeaconingConstruction(benchmark::State& state) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  for (auto _ : state) {
    scion::Beaconing beacons(env.topology);
    benchmark::DoNotOptimize(&beacons);
  }
}

void BM_PathCombination(benchmark::State& state) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  const scion::Beaconing beacons(env.topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        beacons.paths(env.user_as, scion::scionlab::kIreland));
  }
}

void BM_PingMeasurement(benchmark::State& state) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  const scion::SnetAddress ireland{scion::scionlab::kIreland, "172.31.43.7"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.ping(ireland, {}));
  }
}

void BM_CampaignIteration(benchmark::State& state) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  for (auto _ : state) {
    state.PauseTiming();
    apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
    docdb::Database db;
    measure::TestSuiteConfig config;
    config.iterations = 1;
    config.server_ids = {{3}};
    measure::TestSuite suite(host, db, config);
    state.ResumeTiming();
    if (!suite.run().ok()) std::abort();
  }
}

BENCHMARK(BM_JsonParse);
BENCHMARK(BM_JsonDump);
BENCHMARK(BM_FilterCompile);
BENCHMARK(BM_FilterMatch);
BENCHMARK(BM_BeaconingConstruction);
BENCHMARK(BM_PathCombination);
BENCHMARK(BM_PingMeasurement);
BENCHMARK(BM_CampaignIteration);

}  // namespace

BENCHMARK_MAIN();
