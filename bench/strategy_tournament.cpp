// strategy_tournament — every registered selection strategy, same data,
// same faults, head to head.
//
// One calm measurement campaign on the *multihomed* testbed (two
// attachment points, so disjoint access links exist) feeds every
// strategy identical path summaries.  Each strategy is then scored on:
//
//   * regret      — median latency of its top pick minus the best median
//                   among the paths it admitted (ms; 0 = oracle);
//   * goodput     — mean achieved Mbps of a fixed 48 Mbps downstream
//                   demand split over its k-subflow multipath plan
//                   (k in {1, 2, 4}), sampled at identical virtual times
//                   under three fault regimes (calm / link-flap /
//                   server-down);
//   * failover    — mean revocation-failover latency of a k=2 controller
//                   pinned through flap episodes (fault regimes only).
//
// Usage:
//   strategy_tournament              full tournament, text table
//   strategy_tournament --csv       CSV rows instead of the table
//   strategy_tournament --gate      link-flap regime only; exit 1 unless
//                                   disjointness-max k=2 goodput beats
//                                   k=1 by >= 1.5x (CI smoke gate)
//   strategy_tournament --out FILE  JSON report path (BENCH_strategy.json)
//   strategy_tournament --seed N    campaign + fault seed (default 42)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/host.hpp"
#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/multipath.hpp"
#include "select/selector.hpp"
#include "upin/controller.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace upin;
using util::SimTime;
using util::Value;

constexpr int kServerId = 3;          // AWS Ireland, the paper's featured dst
constexpr double kDemandMbps = 48.0;  // > one access link, < two
constexpr std::size_t kSubflowCounts[] = {1, 2, 4};

struct Regime {
  const char* name;
  simnet::FaultPlanConfig faults;
};

std::vector<Regime> make_regimes(bool gate) {
  simnet::FaultPlanConfig flap;
  flap.link_flap_per_hour = 2.0;
  flap.link_flap_min_s = 60.0;
  flap.link_flap_max_s = 180.0;
  simnet::FaultPlanConfig dark;
  dark.server_down_per_hour = 1.0;
  dark.server_down_min_s = 120.0;
  dark.server_down_max_s = 600.0;
  if (gate) return {{"link-flap", flap}};
  return {{"calm", {}}, {"link-flap", flap}, {"server-down", dark}};
}

/// The shared measurement substrate: one calm campaign on the multihomed
/// testbed, summarized once, selected per strategy.
struct Substrate {
  scion::ScionlabEnv env;
  docdb::Database db;
  std::map<std::string, select::Selection> selections;  // by strategy key
};

std::unique_ptr<Substrate> run_campaign(std::uint64_t seed) {
  auto sub = std::make_unique<Substrate>();
  sub->env = scion::scionlab_topology_multihomed();
  apps::ScionHost host(sub->env, seed, sub->env.user_as, "10.0.8.1");

  measure::TestSuiteConfig config;
  config.iterations = 4;
  config.server_ids = {{kServerId}};
  measure::TestSuite suite(host, sub->db, config);
  if (!suite.run().ok()) {
    std::fprintf(stderr, "[strategy_tournament] campaign failed\n");
    std::abort();
  }

  const select::PathSelector selector(sub->db, sub->env.topology);
  select::UserRequest request;
  request.server_id = kServerId;
  for (const std::string& key : select::StrategyRegistry::global().keys()) {
    auto selection = selector.select_with(key, request);
    if (!selection.ok()) {
      std::fprintf(stderr, "[strategy_tournament] %s failed: %s\n",
                   key.c_str(), selection.error().message.c_str());
      std::abort();
    }
    sub->selections[key] = std::move(selection).value();
  }
  return sub;
}

/// Median-latency regret of the strategy's top pick against the best
/// median among the paths it admitted.
double regret_ms(const select::Selection& selection) {
  if (selection.ranked.empty()) return 0.0;
  double best = 1e18;
  double winner = 0.0;
  for (std::size_t i = 0; i < selection.ranked.size(); ++i) {
    const auto& latency = selection.ranked[i].summary.latency_ms;
    if (!latency.has_value()) continue;
    best = std::min(best, latency->median);
    if (i == 0) winner = latency->median;
  }
  if (best >= 1e18) return 0.0;
  return winner - best;
}

std::vector<apps::SubflowSpec> specs_of(const select::MultipathPlan& plan) {
  std::vector<apps::SubflowSpec> specs;
  for (const select::MultipathSubflow& subflow : plan.subflows) {
    specs.push_back(apps::SubflowSpec{subflow.summary.sequence,
                                      subflow.weight});
  }
  return specs;
}

/// Identical sample instants for every contender: fixed calm times plus
/// the midpoints of the first flap episodes on the top pick's downstream
/// access link (so fault regimes actually exercise the faults).
std::vector<SimTime> sample_times(const scion::ScionlabEnv& env,
                                  std::uint64_t seed,
                                  const Regime& regime,
                                  const select::Selection& reference) {
  std::vector<SimTime> times;
  for (const double s : {1200.0, 2400.0, 3600.0, 4800.0}) {
    times.push_back(util::sim_seconds(s));
  }
  if (regime.faults.link_flap_per_hour > 0.0 && !reference.ranked.empty()) {
    simnet::NetworkConfig net_config;
    net_config.faults = regime.faults;
    apps::ScionHost probe(env, seed, env.user_as, "10.0.8.1", net_config);
    const auto path = scion::Path::parse_sequence(
        reference.ranked.front().summary.sequence);
    if (path.ok()) {
      const auto route = probe.route_of(path.value());
      if (route.ok() && route.value().size() >= 2) {
        // Downstream traffic enters over (AP -> user AS).
        const auto windows = probe.network().faults().link_flap_windows(
            route.value()[1], route.value()[0]);
        std::size_t used = 0;
        for (const simnet::FaultWindow& window : windows) {
          if (used == 4) break;
          times.push_back(window.start + (window.end - window.start) / 2);
          ++used;
        }
      }
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

/// Mean achieved Mbps of the fixed demand over the strategy's k-subflow
/// plan, across the sample instants, on a fresh host under the regime's
/// fault plan.  A failed run (e.g. the whole plan revoked) counts as
/// zero goodput — that *is* the cost of the strategy.
double mean_goodput(const scion::ScionlabEnv& env, std::uint64_t seed,
                    const Regime& regime, const select::Selection& selection,
                    std::size_t k, const std::vector<SimTime>& times) {
  const auto plan = select::plan_multipath(selection, k);
  if (!plan.ok()) return 0.0;
  simnet::NetworkConfig net_config;
  net_config.faults = regime.faults;
  apps::ScionHost host(env, seed, env.user_as, "10.0.8.1", net_config);
  const scion::SnetAddress server =
      env.servers[static_cast<std::size_t>(kServerId) - 1];

  apps::MultipathBwtestOptions options;
  options.total_target_mbps = kDemandMbps;
  options.downstream = true;
  double total = 0.0;
  for (const SimTime t : times) {
    host.clock().advance_to(t);
    const auto report =
        host.multipath_bwtest(server, specs_of(plan.value()), options);
    if (report.ok()) total += report.value().achieved_mbps;
  }
  return times.empty() ? 0.0 : total / static_cast<double>(times.size());
}

/// Mean revocation-failover latency (ms) of a k=2 controller pinned on
/// the strategy, pinged through each sample instant.  Negative when the
/// regime never produced a failover.
double mean_failover_ms(const scion::ScionlabEnv& env, std::uint64_t seed,
                        const Regime& regime, const docdb::Database& db,
                        const std::string& strategy,
                        const std::vector<SimTime>& times) {
  if (!regime.faults.any()) return -1.0;
  simnet::NetworkConfig net_config;
  net_config.faults = regime.faults;
  apps::ScionHost host(env, seed, env.user_as, "10.0.8.1", net_config);
  const select::PathSelector selector(db, env.topology);
  upinfw::PathController controller(host, selector, strategy);

  select::UserRequest request;
  request.server_id = kServerId;
  if (!controller.apply_multipath(request, 2).ok()) return -1.0;

  apps::MultipathPingOptions options;
  options.count = 10;
  double latency_sum = 0.0;
  std::size_t failovers_seen = 0;
  for (const SimTime t : times) {
    host.clock().advance_to(t);
    const auto pinned = controller.active_multipath(kServerId);
    if (!pinned.has_value()) break;
    const std::size_t before = controller.failovers();
    (void)controller.multipath_ping(kServerId, options);
    if (controller.failovers() == before) continue;
    // Reconstruct the latency the controller measured: earliest delivered
    // revocation across the old plan's subflows to the detection instant.
    std::optional<SimTime> since;
    for (const select::MultipathSubflow& subflow : pinned->plan.subflows) {
      const auto path = scion::Path::parse_sequence(subflow.summary.sequence);
      if (!path.ok()) continue;
      const auto when =
          host.control_plane().revoked_since(path.value(), host.clock().now());
      if (when.has_value() && (!since.has_value() || *when < *since)) {
        since = when;
      }
    }
    if (since.has_value()) {
      latency_sum += util::to_millis(host.clock().now() - *since);
      ++failovers_seen;
    }
  }
  if (failovers_seen == 0) return -1.0;
  return latency_sum / static_cast<double>(failovers_seen);
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool csv = false;
  std::uint64_t seed = 42;
  std::string out_path = "BENCH_strategy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_int(argv[++i]);
      if (!parsed.has_value() || *parsed < 0) {
        std::fprintf(stderr, "bad --seed\n");
        return 2;
      }
      seed = static_cast<std::uint64_t>(*parsed);
    }
  }

  std::fprintf(stderr,
               "[strategy_tournament] calm campaign on the multihomed "
               "testbed (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  const auto substrate = run_campaign(seed);
  const select::Selection& reference =
      substrate->selections.at(std::string(select::kDisjointnessMax));

  const std::vector<std::string> strategies =
      gate ? std::vector<std::string>{std::string(select::kDisjointnessMax)}
           : select::StrategyRegistry::global().keys();

  if (!csv) {
    std::printf("strategy tournament — seed %llu, server %d, demand %.0f "
                "Mbps downstream\n",
                static_cast<unsigned long long>(seed), kServerId, kDemandMbps);
  } else {
    std::printf(
        "regime,strategy,regret_ms,goodput_k1,goodput_k2,goodput_k4,"
        "failover_ms\n");
  }

  bool gate_ok = true;
  Value::Array regime_rows;
  for (const Regime& regime : make_regimes(gate)) {
    const std::vector<SimTime> times =
        sample_times(substrate->env, seed, regime, reference);
    if (!csv) {
      std::printf("\n[%s] %zu sample instants\n", regime.name, times.size());
      std::printf("  %-18s %9s %11s %11s %11s %11s\n", "strategy",
                  "regret_ms", "goodput_k1", "goodput_k2", "goodput_k4",
                  "failover_ms");
    }
    Value::Array strategy_rows;
    for (const std::string& key : strategies) {
      const select::Selection& selection = substrate->selections.at(key);
      const double regret = regret_ms(selection);
      double goodput[3] = {0.0, 0.0, 0.0};
      for (std::size_t i = 0; i < 3; ++i) {
        goodput[i] = mean_goodput(substrate->env, seed, regime, selection,
                                  kSubflowCounts[i], times);
      }
      const double failover = mean_failover_ms(substrate->env, seed, regime,
                                               substrate->db, key, times);
      if (gate && std::strcmp(regime.name, "link-flap") == 0 &&
          key == select::kDisjointnessMax) {
        gate_ok = goodput[1] > 0.0 && goodput[1] >= 1.5 * goodput[0];
      }
      if (csv) {
        std::printf("%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f\n", regime.name,
                    key.c_str(), regret, goodput[0], goodput[1], goodput[2],
                    failover);
      } else {
        std::printf("  %-18s %9.2f %11.2f %11.2f %11.2f %11.2f\n",
                    key.c_str(), regret, goodput[0], goodput[1], goodput[2],
                    failover);
      }
      strategy_rows.push_back(Value::object({
          {"strategy", key},
          {"regret_ms", regret},
          {"goodput_k1_mbps", goodput[0]},
          {"goodput_k2_mbps", goodput[1]},
          {"goodput_k4_mbps", goodput[2]},
          {"failover_ms", failover},
      }));
    }
    regime_rows.push_back(Value::object({
        {"regime", regime.name},
        {"samples", static_cast<std::int64_t>(times.size())},
        {"strategies", Value(std::move(strategy_rows))},
    }));
  }

  const Value report = Value::object({
      {"bench", "strategy_tournament"},
      {"seed", static_cast<std::int64_t>(seed)},
      {"server_id", kServerId},
      {"demand_mbps", kDemandMbps},
      {"gate", gate},
      {"regimes", Value(std::move(regime_rows))},
  });
  std::ofstream out(out_path);
  out << report.dump(2) << "\n";
  out.close();
  std::fprintf(stderr, "[strategy_tournament] wrote %s\n", out_path.c_str());

  if (gate && !gate_ok) {
    std::fprintf(stderr,
                 "[strategy_tournament] GATE FAILED: disjointness-max k=2 "
                 "goodput is not >= 1.5x its k=1 goodput under link-flap\n");
    return 1;
  }
  return 0;
}
