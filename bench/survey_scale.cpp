// survey_scale — the §6 headline campaign at paper scale.
//
// The paper gathered "approximately three thousand samples" across five
// featured destinations (Germany, Ireland, N. Virginia, Singapore,
// Korea).  This harness runs that survey, reports the dataset size, the
// virtual duration of the campaign, the wall time our simulator needed,
// and a per-destination dataset overview.  With --journal <path> the
// database is durable, so the closing metrics table reports real
// group-commit pipeline numbers (flush latency, group size, stalls)
// instead of zeros.
#include <chrono>
#include <cstring>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace upin;
  const bool csv = bench::want_csv(argc, argv);
  std::string journal_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    }
  }

  bench::Campaign campaign(42, {}, journal_path);
  measure::TestSuiteConfig config;
  config.iterations = 55;
  config.server_ids = {{bench::kGermanyId, bench::kNVirginiaId,
                        bench::kIrelandId, bench::kSingaporeId,
                        bench::kKoreaId}};

  const auto wall_start = std::chrono::steady_clock::now();
  const measure::TestSuiteProgress progress = campaign.run(config);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const double virtual_s =
      util::to_seconds(campaign.host().clock().now());

  if (csv) {
    std::printf("server_id,paths,samples\n");
  } else {
    bench::print_header(
        "Survey scale — the paper's five-destination campaign (§6)",
        "paper: ~3000 samples over Germany, Ireland, N. Virginia, "
        "Singapore, Korea");
  }

  for (const int server_id :
       {bench::kGermanyId, bench::kNVirginiaId, bench::kIrelandId,
        bench::kSingaporeId, bench::kKoreaId}) {
    const auto summaries = campaign.summaries(server_id);
    std::size_t samples = 0;
    for (const auto& s : summaries) samples += s.samples;
    if (csv) {
      std::printf("%d,%zu,%zu\n", server_id, summaries.size(), samples);
    } else {
      std::printf("  server %d: %2zu paths, %4zu samples\n", server_id,
                  summaries.size(), samples);
    }
  }

  if (!csv) {
    std::printf("\ntotal stats documents : %zu (paper: ~3000)\n",
                progress.stats_inserted);
    std::printf("path tests run        : %zu (%zu ping failures, %zu bwtest "
                "failures)\n",
                progress.path_tests_run, progress.ping_failures,
                progress.bwtest_failures);
    std::printf("virtual campaign time : %.1f h\n", virtual_s / 3600.0);
    std::printf("wall time             : %.2f s (speedup %.0fx)\n", wall_s,
                virtual_s / wall_s);
    std::printf("\n%s", obs::pipeline_summary(obs::Registry::global()).c_str());
    if (!campaign.durable()) {
      std::printf("  (in-memory database: run with --journal <path> for real "
                  "pipeline numbers)\n");
    }
  }
  return 0;
}
