// custom_testbed — portability (paper §4.1.3): the same pipeline on a
// user-described SCION network.
//
// Writes a small two-ISD topology as JSON, loads it back through the
// topology I/O layer, assembles a ScionlabEnv around it, and runs a
// mini campaign plus a selection — nothing in the stack is specific to
// the built-in SCIONLab testbed.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "apps/host.hpp"
#include "measure/testsuite.hpp"
#include "scion/topology_io.hpp"
#include "select/selector.hpp"

namespace {

constexpr const char* kTopologyJson = R"({
  "ases": [
    {"ia": "1-ffaa:0:1", "name": "core Amsterdam", "role": "core",
     "lat": 52.37, "lon": 4.90, "city": "Amsterdam", "country": "NL",
     "operator": "SURF"},
    {"ia": "1-ffaa:0:2", "name": "core Paris", "role": "core",
     "lat": 48.86, "lon": 2.35, "city": "Paris", "country": "FR",
     "operator": "RENATER"},
    {"ia": "1-ffaa:0:3", "name": "AP Brussels", "role": "attachment-point",
     "lat": 50.85, "lon": 4.35, "city": "Brussels", "country": "BE",
     "operator": "BELNET"},
    {"ia": "1-ffaa:1:10", "name": "our AS", "role": "user",
     "lat": 51.22, "lon": 4.40, "city": "Antwerp", "country": "BE",
     "operator": "UAntwerp"},
    {"ia": "2-ffaa:0:1", "name": "core Madrid", "role": "core",
     "lat": 40.42, "lon": -3.70, "city": "Madrid", "country": "ES",
     "operator": "RedIRIS"},
    {"ia": "2-ffaa:0:2", "name": "server Lisbon", "role": "non-core",
     "lat": 38.72, "lon": -9.14, "city": "Lisbon", "country": "PT",
     "operator": "FCCN"}
  ],
  "links": [
    {"a": "1-ffaa:0:1", "b": "1-ffaa:0:2", "type": "core"},
    {"a": "1-ffaa:0:1", "b": "1-ffaa:0:3", "type": "parent-child"},
    {"a": "1-ffaa:0:2", "b": "1-ffaa:0:3", "type": "parent-child"},
    {"a": "1-ffaa:0:3", "b": "1-ffaa:1:10", "type": "parent-child",
     "capacity_ab_mbps": 50, "capacity_ba_mbps": 20, "mtu": 1452},
    {"a": "1-ffaa:0:1", "b": "2-ffaa:0:1", "type": "core"},
    {"a": "1-ffaa:0:2", "b": "2-ffaa:0:1", "type": "core"},
    {"a": "2-ffaa:0:1", "b": "2-ffaa:0:2", "type": "parent-child"}
  ]
})";

}  // namespace

int main() {
  using namespace upin;

  // 1. A topology file a user would write for their network.
  const std::string path =
      (std::filesystem::temp_directory_path() / "custom_testbed.json")
          .string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << kTopologyJson;
  }
  auto topology = scion::load_topology(path);
  std::filesystem::remove(path);
  if (!topology.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 topology.error().message.c_str());
    return 1;
  }
  std::printf("loaded custom topology: %zu ASes, %zu links, %zu ISDs\n",
              topology.value().ases().size(), topology.value().links().size(),
              topology.value().isds().size());

  // 2. Assemble an environment: our AS plus the testable destinations.
  scion::ScionlabEnv env;
  env.topology = std::move(topology).value();
  env.user_as = scion::IsdAsn::parse("1-ffaa:1:10").value();
  env.servers = {
      scion::SnetAddress::parse("2-ffaa:0:2,[10.2.0.2]").value(),  // id 1
      scion::SnetAddress::parse("1-ffaa:0:3,[10.1.0.3]").value(),  // id 2
  };

  // 3. The identical pipeline: campaign, storage, selection.
  apps::ScionHost host(env, 7, env.user_as, "10.9.9.9");
  docdb::Database db;
  measure::TestSuiteConfig config;
  config.iterations = 8;
  measure::TestSuite suite(host, db, config);
  if (!suite.run().ok()) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }
  std::printf("campaign: %zu paths, %zu samples\n",
              suite.progress().paths_collected,
              suite.progress().stats_inserted);

  const select::PathSelector selector(db, env.topology);
  for (int server_id = 1; server_id <= 2; ++server_id) {
    select::UserRequest request;
    request.server_id = server_id;
    request.objective = select::Objective::kLowestLatency;
    const auto best = selector.best(request);
    if (best.ok()) {
      std::printf("server %d best path: %s (%s)\n", server_id,
                  best.value().summary.sequence.c_str(),
                  best.value().rationale.c_str());
    }
    // Sovereignty works against user-supplied metadata too.
    request.exclude_countries = {"FR"};
    const auto no_france = selector.best(request);
    std::printf("server %d avoiding FR: %s\n", server_id,
                no_france.ok()
                    ? no_france.value().summary.sequence.c_str()
                    : no_france.error().message.c_str());
  }
  return 0;
}
