// quickstart — the smallest end-to-end tour of the library.
//
// Builds the SCIONLab-like testbed, discovers paths from the user AS to
// the Ireland destination, probes one path, runs a bandwidth test, runs a
// tiny measurement campaign into an in-memory database, and asks the
// selector for the best low-latency path.
#include <cstdio>

#include "apps/host.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"

int main() {
  using namespace upin;

  // 1. The testbed and our AS (attached to ETHZ-AP, paper §3.2).
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, /*seed=*/42, env.user_as, "10.0.8.1");

  const apps::AddressInfo address = host.address();
  std::printf("local address: %s (%s)\n", address.local.to_string().c_str(),
              address.as_name.c_str());

  // 2. `scion showpaths --extended` to AWS Ireland.
  apps::ShowpathsOptions show;
  show.max_paths = 40;
  show.extended = true;
  const auto listings = host.showpaths(scion::scionlab::kIreland, show);
  if (!listings.ok()) {
    std::fprintf(stderr, "showpaths failed: %s\n",
                 listings.error().message.c_str());
    return 1;
  }
  std::printf("\npaths to %s (%zu found):\n",
              scion::scionlab::kIreland.to_string().c_str(),
              listings.value().size());
  for (const apps::PathListing& listing : listings.value()) {
    std::printf("  %s\n", listing.render.c_str());
  }

  // 3. `scion ping` over the best path.
  const scion::SnetAddress ireland{scion::scionlab::kIreland, "172.31.43.7"};
  const auto ping = host.ping(ireland, apps::PingOptions{});
  if (ping.ok()) {
    std::printf("\nping via best path: %s\n", ping.value().summary().c_str());
  }

  // 4. `scion-bwtestclient -cs 3,1000,?,12Mbps`.
  apps::BwtestOptions bw;
  bw.cs_spec = "3,1000,?,12Mbps";
  const auto bwtest = host.bwtestclient(ireland, bw);
  if (bwtest.ok()) {
    std::printf("bwtest: up %.2f Mbps, down %.2f Mbps (attempted %.2f)\n",
                bwtest.value().client_to_server.achieved_mbps,
                bwtest.value().server_to_client.achieved_mbps,
                bwtest.value().client_to_server.attempted_mbps);
  }

  // 5. A small campaign into the measurement database...
  docdb::Database db;
  measure::TestSuiteConfig config;
  config.iterations = 3;
  config.server_ids = {{3}};  // Ireland
  measure::TestSuite suite(host, db, config);
  const auto run = suite.run();
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().message.c_str());
    return 1;
  }
  std::printf("\ncampaign: %zu paths, %zu tests, %zu stats documents\n",
              suite.progress().paths_collected,
              suite.progress().path_tests_run,
              suite.progress().stats_inserted);

  // 6. ...and the user-driven selection on top of it.
  select::PathSelector selector(db, env.topology);
  select::UserRequest request;
  request.server_id = 3;
  request.objective = select::Objective::kLowestLatency;
  const auto best = selector.best(request);
  if (!best.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 best.error().message.c_str());
    return 1;
  }
  std::printf("best path for [%s]:\n  %s\n  %s\n",
              request.describe().c_str(),
              best.value().summary.sequence.c_str(),
              best.value().rationale.c_str());

  // The same request, excluding the US for sovereignty reasons.
  request.exclude_countries = {"US"};
  const auto sovereign = selector.best(request);
  if (sovereign.ok()) {
    std::printf("best path avoiding US:\n  %s\n  %s\n",
                sovereign.value().summary.sequence.c_str(),
                sovereign.value().rationale.c_str());
  }
  return 0;
}
