// scion_cli — the paper's command surface (§3.3) as a CLI front-end.
//
//   scion_cli address
//   scion_cli showpaths <isd-as> [-m N] [--extended]
//   scion_cli ping <isd-as,[host]> [-c N] [--interval <s>]
//             [--sequence "<hop predicates>"] [--interactive]
//   scion_cli traceroute <isd-as,[host]> [--sequence "..."]
//   scion_cli bwtestclient -s <isd-as,[host]> -cs <spec> [-sc <spec>]
//             [--sequence "..."]
//
// --interactive reproduces the paper's highlighted feature: "displays all
// the available paths for the specified destination allowing the user to
// select the desired traffic route" (a path number is read from stdin).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/host.hpp"
#include "scion/scionlab.hpp"
#include "util/strings.hpp"

namespace {

using namespace upin;

int fail(const std::string& message) {
  std::fprintf(stderr, "scion_cli: %s\n", message.c_str());
  return 1;
}

/// List paths and let the user pick one by number (interactive mode).
util::Result<std::string> choose_interactively(apps::ScionHost& host,
                                               scion::IsdAsn dst) {
  apps::ShowpathsOptions options;
  options.max_paths = 40;
  options.extended = true;
  const auto listings = host.showpaths(dst, options);
  if (!listings.ok()) return util::Result<std::string>(listings.error());
  std::printf("Available paths to %s:\n", dst.to_string().c_str());
  for (const apps::PathListing& listing : listings.value()) {
    std::printf("%s\n", listing.render.c_str());
  }
  std::printf("Choose path: ");
  std::fflush(stdout);
  std::string line;
  if (!std::getline(std::cin, line)) {
    return util::Error{util::ErrorCode::kInvalidArgument, "no selection"};
  }
  const auto index = util::parse_int(util::trim(line));
  if (!index.has_value() || *index < 0 ||
      static_cast<std::size_t>(*index) >= listings.value().size()) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "selection out of range"};
  }
  return listings.value()[static_cast<std::size_t>(*index)].path.sequence();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return fail(
        "usage: scion_cli <address|showpaths|ping|traceroute|bwtestclient> "
        "...");
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");

  const auto flag_value = [&](const std::string& name) -> const std::string* {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
      if (args[i] == name) return &args[i + 1];
    }
    return nullptr;
  };
  const auto has_flag = [&](const std::string& name) {
    for (const std::string& arg : args) {
      if (arg == name) return true;
    }
    return false;
  };

  if (command == "address") {
    const apps::AddressInfo info = host.address();
    std::printf("%s\n", info.local.to_string().c_str());
    return 0;
  }

  if (command == "showpaths") {
    if (args.empty()) return fail("showpaths needs a destination ISD-AS");
    const auto dst = scion::IsdAsn::parse(args[0]);
    if (!dst.ok()) return fail(dst.error().message);
    apps::ShowpathsOptions options;
    options.extended = has_flag("--extended");
    if (const std::string* m = flag_value("-m")) {
      const auto parsed = util::parse_int(*m);
      if (!parsed.has_value() || *parsed <= 0) return fail("bad -m value");
      options.max_paths = static_cast<std::size_t>(*parsed);
    }
    const auto listings = host.showpaths(dst.value(), options);
    if (!listings.ok()) return fail(listings.error().message);
    for (const apps::PathListing& listing : listings.value()) {
      std::printf("%s\n", listing.render.c_str());
    }
    return 0;
  }

  if (command == "ping" || command == "traceroute") {
    if (args.empty()) return fail(command + " needs a destination address");
    const auto dst = scion::SnetAddress::parse(args[0]);
    if (!dst.ok()) return fail(dst.error().message);

    std::string sequence;
    if (const std::string* seq = flag_value("--sequence")) sequence = *seq;
    if (has_flag("--interactive") || has_flag("-i")) {
      const auto chosen = choose_interactively(host, dst.value().ia);
      if (!chosen.ok()) return fail(chosen.error().message);
      sequence = chosen.value();
    }

    if (command == "traceroute") {
      const auto report = host.traceroute(dst.value(), sequence);
      if (!report.ok()) return fail(report.error().message);
      for (std::size_t i = 0; i < report.value().trace.hops.size(); ++i) {
        const simnet::TraceHop& hop = report.value().trace.hops[i];
        std::printf("%2zu %-18s %s\n", i + 1,
                    report.value().path.hops()[i + 1].ia.to_string().c_str(),
                    hop.rtt_ms.has_value()
                        ? util::format("%.3f ms", *hop.rtt_ms).c_str()
                        : "*");
      }
      return 0;
    }

    apps::PingOptions options;
    options.sequence = sequence;
    if (const std::string* c = flag_value("-c")) {
      const auto parsed = util::parse_int(*c);
      if (!parsed.has_value() || *parsed <= 0) return fail("bad -c value");
      options.count = static_cast<std::size_t>(*parsed);
    }
    if (const std::string* interval = flag_value("--interval")) {
      const auto parsed = util::parse_double(*interval);
      if (!parsed.has_value() || *parsed <= 0) return fail("bad --interval");
      options.interval_s = *parsed;
    }
    const auto report = host.ping(dst.value(), options);
    if (!report.ok()) return fail(report.error().message);
    std::printf("using path: %s\n", report.value().path.to_string().c_str());
    for (std::size_t i = 0; i < report.value().stats.rtt_ms.size(); ++i) {
      const auto& rtt = report.value().stats.rtt_ms[i];
      if (rtt.has_value()) {
        std::printf("%zu bytes from %s: scmp_seq=%zu time=%.3fms\n",
                    static_cast<std::size_t>(options.payload_bytes),
                    dst.value().to_string().c_str(), i, *rtt);
      } else {
        std::printf("scmp_seq=%zu timeout\n", i);
      }
    }
    std::printf("%s\n", report.value().summary().c_str());
    return 0;
  }

  if (command == "bwtestclient") {
    const std::string* server = flag_value("-s");
    if (server == nullptr) return fail("bwtestclient needs -s <address>");
    const auto dst = scion::SnetAddress::parse(*server);
    if (!dst.ok()) return fail(dst.error().message);

    apps::BwtestOptions options;
    if (const std::string* cs = flag_value("-cs")) options.cs_spec = *cs;
    if (const std::string* sc = flag_value("-sc")) options.sc_spec = *sc;
    if (const std::string* seq = flag_value("--sequence")) {
      options.sequence = *seq;
    }
    const auto report = host.bwtestclient(dst.value(), options);
    if (!report.ok()) return fail(report.error().message);
    std::printf("path: %s\n", report.value().path.to_string().c_str());
    std::printf("C->S (%s): attempted %.2f Mbps, achieved %.2f Mbps\n",
                report.value().cs_resolved.to_string().c_str(),
                report.value().client_to_server.attempted_mbps,
                report.value().client_to_server.achieved_mbps);
    std::printf("S->C (%s): attempted %.2f Mbps, achieved %.2f Mbps\n",
                report.value().sc_resolved.to_string().c_str(),
                report.value().server_to_client.attempted_mbps,
                report.value().server_to_client.achieved_mbps);
    return 0;
  }

  return fail("unknown command: " + command);
}
