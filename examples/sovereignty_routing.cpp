// sovereignty_routing — the paper's governance use case (§1, §6):
// "devices to exclude for geographical or sovereignty reasons".
//
// A European research group wants to reach the five featured servers
// while (a) never transiting the United States, then (b) never touching
// AWS infrastructure at all.  The example runs a measurement campaign,
// then shows — per destination — what each policy costs in latency and
// which requests are simply unsatisfiable (the selector reports why).
#include <cstdio>

#include "apps/host.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"

namespace {

using namespace upin;

void report(const select::PathSelector& selector, int server_id,
            const char* label, const select::UserRequest& request) {
  const auto best = selector.best(request);
  if (!best.ok()) {
    std::printf("    %-18s : unsatisfiable (%s)\n", label,
                best.error().message.c_str());
    return;
  }
  std::printf("    %-18s : %s, %s\n", label,
              best.value().summary.path_id.c_str(),
              best.value().rationale.c_str());
  (void)server_id;
}

}  // namespace

int main() {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  std::printf("measuring the five featured destinations...\n");
  measure::TestSuiteConfig config;
  config.iterations = 10;
  config.server_ids = {{1, 2, 3, 4, 5}};
  measure::TestSuite suite(host, db, config);
  if (!suite.run().ok()) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }
  std::printf("collected %zu samples over %zu paths\n\n",
              suite.progress().stats_inserted,
              suite.progress().paths_collected);

  const select::PathSelector selector(db, env.topology);
  const char* names[] = {"Germany", "N. Virginia", "Ireland", "Singapore",
                         "Korea"};

  for (int server_id = 1; server_id <= 5; ++server_id) {
    std::printf("destination %d (%s):\n", server_id, names[server_id - 1]);

    select::UserRequest unconstrained;
    unconstrained.server_id = server_id;
    unconstrained.objective = select::Objective::kLowestLatency;
    report(selector, server_id, "no constraints", unconstrained);

    select::UserRequest no_us = unconstrained;
    no_us.exclude_countries = {"US"};
    report(selector, server_id, "avoid US", no_us);

    select::UserRequest no_aws = unconstrained;
    no_aws.exclude_operators = {"AWS"};
    report(selector, server_id, "avoid AWS", no_aws);

    select::UserRequest eu_only = unconstrained;
    eu_only.allowed_isds = {16, 17, 19};  // European ISDs + AWS's own
    report(selector, server_id, "EU ISDs only", eu_only);

    std::printf("\n");
  }

  std::printf(
      "note: N. Virginia is unreachable without touching the US, and every\n"
      "AWS destination is unsatisfiable under 'avoid AWS' — the selector\n"
      "surfaces the reason per path instead of silently relaxing policy.\n");
  return 0;
}
