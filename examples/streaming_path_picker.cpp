// streaming_path_picker — the §6.1 jitter use case.
//
// "This assessment helps us to exclude routes passing through these ASes
// for streaming audio and video services, as well as, for example, VoIP
// calls, in which latency consistency is more important than low latency
// values."
//
// The example measures the Ireland destination, then contrasts the
// lowest-latency choice with the most-consistent (lowest-IQR) choice and
// shows how a max-jitter constraint excludes the noisy Ohio / Singapore
// detours outright.
#include <cstdio>

#include "apps/host.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"

int main() {
  using namespace upin;

  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  measure::TestSuiteConfig config;
  config.iterations = 25;  // jitter estimation needs samples
  config.server_ids = {{3}};
  measure::TestSuite suite(host, db, config);
  if (!suite.run().ok()) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }

  const select::PathSelector selector(db, env.topology);

  // Per-path jitter overview.
  std::printf("%-6s %-5s %-11s %-12s %s\n", "path", "hops", "median ms",
              "IQR ms", "mean jitter ms");
  const auto summaries = selector.summarize(3);
  for (const select::PathSummary& s : summaries.value()) {
    if (!s.latency_ms.has_value()) continue;
    std::printf("%-6s %-5zu %-11.2f %-12.3f %.3f\n", s.path_id.c_str(),
                s.hop_count, s.latency_ms->median, s.latency_ms->iqr,
                s.mean_jitter_ms.value_or(0.0));
  }

  select::UserRequest lowest;
  lowest.server_id = 3;
  lowest.objective = select::Objective::kLowestLatency;
  const auto fastest = selector.best(lowest);

  select::UserRequest steadiest = lowest;
  steadiest.objective = select::Objective::kMostConsistent;
  const auto consistent = selector.best(steadiest);

  if (fastest.ok() && consistent.ok()) {
    std::printf("\nfor bulk interactive use : %s (%s)\n",
                fastest.value().summary.path_id.c_str(),
                fastest.value().rationale.c_str());
    std::printf("for VoIP / streaming     : %s (%s)\n",
                consistent.value().summary.path_id.c_str(),
                consistent.value().rationale.c_str());
  }

  // Hard jitter budget: drop anything noisier than 1.5 ms RTT stddev.
  select::UserRequest budget = steadiest;
  budget.max_jitter_ms = 1.5;
  const auto selection = selector.select(budget);
  if (selection.ok()) {
    std::printf("\nwith a 1.5 ms jitter budget, %zu paths qualify; rejected:\n",
                selection.value().ranked.size());
    for (const auto& [path_id, reason] : selection.value().rejected) {
      std::printf("  %-6s %s\n", path_id.c_str(), reason.c_str());
    }
  }
  return 0;
}
