// survey_runner — the paper's test_suite.sh as a single binary (§5.1).
//
//   survey_runner <iterations> [--skip] [--some_only]
//                 [--db <journal.jsonl>] [--signed] [--target <Mbps>]
//                 [--servers 1,3,5] [--metrics] [--trace-out <file>]
//                 [--strategy <key>] [--multipath-k <n>]
//
// With --strategy the campaign's data feeds a post-run path selection
// under any registered strategy (default paper-objective); with
// --multipath-k the selection is additionally planned as a weighted
// k-subflow multipath flow and the plan printed.
//
// Runs the three-phase campaign against the embedded SCIONLab-like
// testbed: paths collection, test execution, batched storage.  With
// --db the measurement database is durable (JSONL journal); with
// --signed every batch is signed with a core-certified one-time key and
// verified by the database's write guard.  --metrics dumps the process
// metrics registry in Prometheus text format on stdout after the run;
// --trace-out writes the campaign's virtual-clock span tree to a file
// (bit-identical across runs of the same seed and config).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "apps/host.hpp"
#include "measure/testsuite.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scion/scionlab.hpp"
#include "select/multipath.hpp"
#include "select/selector.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <iterations> [--skip] [--some_only] [--resume] "
               "[--db <path>] [--signed] [--target <Mbps>] "
               "[--servers 1,3,5] [--metrics] [--trace-out <file>] "
               "[--strategy <key>] [--multipath-k <n>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upin;

  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const auto iterations = util::parse_int(argv[1]);
  if (!iterations.has_value() || *iterations <= 0) {
    std::fprintf(stderr, "iterations must be a positive integer\n");
    return 2;
  }

  measure::TestSuiteConfig config;
  config.iterations = static_cast<int>(*iterations);
  std::string db_path;
  bool signed_writes = false;
  bool dump_metrics = false;
  std::string trace_path;
  std::string strategy;
  std::size_t multipath_k = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--skip") {
      config.skip_collection = true;
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--some_only") {
      config.some_only = true;
    } else if (arg == "--signed") {
      signed_writes = true;
    } else if (arg == "--db" && i + 1 < argc) {
      db_path = argv[++i];
    } else if (arg == "--target" && i + 1 < argc) {
      const auto target = util::parse_double(argv[++i]);
      if (!target.has_value() || *target <= 0) {
        std::fprintf(stderr, "bad --target\n");
        return 2;
      }
      config.bw_target_mbps = *target;
    } else if (arg == "--servers" && i + 1 < argc) {
      std::vector<int> ids;
      for (const std::string& token : util::split(argv[++i], ',')) {
        const auto id = util::parse_int(token);
        if (!id.has_value()) {
          std::fprintf(stderr, "bad --servers list\n");
          return 2;
        }
        ids.push_back(static_cast<int>(*id));
      }
      config.server_ids = ids;
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy = argv[++i];
    } else if (arg == "--multipath-k" && i + 1 < argc) {
      const auto k = util::parse_int(argv[++i]);
      if (!k.has_value() || *k < 1) {
        std::fprintf(stderr, "bad --multipath-k\n");
        return 2;
      }
      multipath_k = static_cast<std::size_t>(*k);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (multipath_k > 1 && strategy.empty()) {
    strategy = select::kPaperObjective;
  }
  if (!strategy.empty() &&
      select::StrategyRegistry::global().find(strategy) == nullptr) {
    std::fprintf(stderr, "unknown strategy %s (known: %s)\n", strategy.c_str(),
                 util::join(select::StrategyRegistry::global().keys(), ", ")
                     .c_str());
    return 2;
  }

  util::Log::set_level(util::LogLevel::kInfo);

  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  std::printf("local AS: %s, attached to %s\n",
              host.address().local.to_string().c_str(),
              scion::scionlab::kEthzAp.to_string().c_str());

  // Database: in-memory by default, durable with --db.
  std::unique_ptr<docdb::Database> durable;
  docdb::Database memory;
  docdb::Database* db = &memory;
  if (!db_path.empty()) {
    auto opened = docdb::Database::open(db_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open db: %s\n",
                   opened.error().message.c_str());
      return 1;
    }
    durable = std::move(opened).value();
    db = durable.get();
    std::printf("durable database: %s\n", db_path.c_str());
  }

  obs::SpanTracer tracer("campaign");
  if (!trace_path.empty()) config.tracer = &tracer;

  scion::TrustStore trust;
  measure::TestSuite suite(host, *db, config);
  if (signed_writes) {
    const scion::IsdAsn core{17, scion::make_asn(0, 0x1101)};
    if (!trust.register_core(core).ok()) {
      std::fprintf(stderr, "trust setup failed\n");
      return 1;
    }
    db->set_write_guard(trust.make_write_guard());
    suite.enable_signed_writes(trust);
    std::printf("signed writes: every batch certified by %s\n",
                core.to_string().c_str());
  }

  const util::Status run = suite.run();
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.error().message.c_str());
    return 1;
  }

  const measure::TestSuiteProgress& p = suite.progress();
  std::printf("\ncampaign finished:\n");
  std::printf("  destinations visited : %zu\n", p.destinations_visited);
  std::printf("  paths collected      : %zu (%zu stale deleted)\n",
              p.paths_collected, p.paths_deleted);
  std::printf("  path tests run       : %zu\n", p.path_tests_run);
  std::printf("  ping failures        : %zu\n", p.ping_failures);
  std::printf("  bwtest failures      : %zu\n", p.bwtest_failures);
  std::printf("  stats inserted       : %zu in %zu batches (%zu rejected)\n",
              p.stats_inserted, p.batches_inserted, p.batches_rejected);
  if (p.errors.total() > 0) {
    std::printf(
        "  failures by class    : timeout %zu / unreachable %zu / "
        "garbled %zu / storage %zu / other %zu\n",
        p.errors.timeouts, p.errors.unreachable, p.errors.garbled,
        p.errors.storage, p.errors.other);
  }
  if (p.retry.retries > 0 || p.retry.budget_exhausted > 0) {
    std::printf("  retries              : %zu (%zu hit the backoff budget)\n",
                p.retry.retries, p.retry.budget_exhausted);
  }
  if (p.breaker_trips > 0 || p.breaker_skips > 0) {
    std::printf("  circuit breaker      : %zu trips, %zu path tests skipped\n",
                p.breaker_trips, p.breaker_skips);
  }
  std::printf("  checkpoints          : %zu recorded, %zu units resumed\n",
              p.checkpoints_recorded, p.units_skipped);
  std::printf("  virtual time         : %.1f min\n",
              util::to_seconds(host.clock().now()) / 60.0);

  if (!strategy.empty()) {
    const select::PathSelector selector(*db, env.topology);
    select::UserRequest request;
    request.server_id = config.server_ids.has_value() &&
                                !config.server_ids->empty()
                            ? config.server_ids->front()
                            : 3;  // Ireland, the paper's featured server
    const auto selection = selector.select_with(strategy, request);
    if (!selection.ok()) {
      std::fprintf(stderr, "selection failed: %s\n",
                   selection.error().message.c_str());
      return 1;
    }
    std::printf("\nselection under %s (server %d): %zu admitted, %zu rejected\n",
                strategy.c_str(), request.server_id,
                selection.value().ranked.size(),
                selection.value().rejected.size());
    const std::size_t shown =
        std::min<std::size_t>(3, selection.value().ranked.size());
    for (std::size_t i = 0; i < shown; ++i) {
      const select::RankedPath& ranked = selection.value().ranked[i];
      std::printf("  #%zu %-6s %s\n", i + 1, ranked.summary.path_id.c_str(),
                  ranked.rationale.c_str());
    }
    if (multipath_k > 1) {
      const auto plan = select::plan_multipath(selection.value(), multipath_k);
      if (!plan.ok()) {
        std::fprintf(stderr, "multipath plan failed: %s\n",
                     plan.error().message.c_str());
        return 1;
      }
      std::printf("  multipath plan (k=%zu):\n", multipath_k);
      for (const select::MultipathSubflow& subflow : plan.value().subflows) {
        std::printf("    subflow %-6s weight %.2f\n",
                    subflow.summary.path_id.c_str(), subflow.weight);
      }
      for (const select::SharedBottleneckHop& shared :
           plan.value().shared_bottlenecks) {
        std::printf("    shared early hop %s across %zu subflows\n",
                    shared.hop.to_string().c_str(), shared.subflows.size());
      }
    }
  }

  if (!trace_path.empty()) {
    std::ofstream trace(trace_path, std::ios::trunc);
    trace << tracer.render();
    if (!trace) {
      std::fprintf(stderr, "cannot write trace: %s\n", trace_path.c_str());
    } else {
      std::printf("  span trace           : %zu spans -> %s\n",
                  tracer.span_count(), trace_path.c_str());
    }
  }

  if (dump_metrics) {
    std::printf("\n%s", obs::Registry::global().to_prometheus().c_str());
  }

  if (durable != nullptr) {
    if (const util::Status compacted = durable->compact(); !compacted.ok()) {
      std::fprintf(stderr, "compact failed: %s\n",
                   compacted.error().message.c_str());
    }
  }
  return 0;
}
