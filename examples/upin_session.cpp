// upin_session — the UPIN framework loop end to end (paper §2.1, §7).
//
// Domain Explorer publishes node knowledge; the user states an intent
// ("video call to Ireland, never transiting the US"); the Recommender
// maps it to a request; the Path Controller pins the winning path; the
// Path Tracer records where traffic actually went; and the Path Verifier
// checks the intent against trace + fresh measurements — including the
// paper's caveat that hops in non-UPIN-enabled domains make a passing
// verdict merely "uncertain".
//
//   upin_session [--metrics] [--trace-out <file>] [--strategy <key>]
//                [--multipath-k <n>] [--explain-selection]
//
// --metrics dumps the metrics registry (Prometheus text format) after
// the session; --trace-out writes the measurement campaign's
// virtual-clock span tree to a file.  --strategy picks any key from the
// selection-strategy registry (default paper-objective);
// --explain-selection prints the winning selection's JSON decision
// trace; --multipath-k pins a weighted k-subflow plan instead of a
// single path and pings over it.
#include <cstdio>
#include <fstream>
#include <string_view>

#include "measure/testsuite.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scion/scionlab.hpp"
#include "upin/controller.hpp"
#include "upin/explorer.hpp"
#include "upin/recommend.hpp"
#include "upin/verifier.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace upin;

  bool dump_metrics = false;
  bool explain_selection = false;
  std::string trace_path;
  std::string strategy{select::kPaperObjective};
  std::size_t multipath_k = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--explain-selection") {
      explain_selection = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy = argv[++i];
    } else if (arg == "--multipath-k" && i + 1 < argc) {
      const auto k = util::parse_int(argv[++i]);
      if (!k.has_value() || *k < 1) {
        std::fprintf(stderr, "bad --multipath-k\n");
        return 2;
      }
      multipath_k = static_cast<std::size_t>(*k);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics] [--trace-out <file>] "
                   "[--strategy <key>] [--multipath-k <n>] "
                   "[--explain-selection]\n",
                   argv[0]);
      return 2;
    }
  }
  if (select::StrategyRegistry::global().find(strategy) == nullptr) {
    std::fprintf(stderr, "unknown strategy %s (known: %s)\n", strategy.c_str(),
                 util::join(select::StrategyRegistry::global().keys(), ", ")
                     .c_str());
    return 2;
  }

  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  // Knowledge base + measurement history.
  upinfw::DomainExplorer explorer(db, env.topology);
  if (!explorer.refresh().ok()) return 1;
  std::printf("domain explorer published %zu nodes\n",
              explorer.published_count());

  measure::TestSuiteConfig config;
  config.iterations = 12;
  config.server_ids = {{3}};  // Ireland
  obs::SpanTracer campaign_spans("campaign");
  if (!trace_path.empty()) config.tracer = &campaign_spans;
  measure::TestSuite suite(host, db, config);
  if (!suite.run().ok()) return 1;

  // The user's intent.
  const select::PathSelector selector(db, env.topology);
  select::UserRequest base;
  base.exclude_countries = {"US"};
  const upinfw::Recommender recommender(selector);
  const auto recommendation = recommender.recommend(
      upinfw::IntentProfile::kVideoCall, 3, 3, base);
  if (!recommendation.ok()) {
    std::fprintf(stderr, "no recommendation: %s\n",
                 recommendation.error().message.c_str());
    return 1;
  }
  std::printf("\n%s\n", recommendation.value().summary.c_str());
  for (const select::RankedPath& ranked : recommendation.value().ranked) {
    std::printf("  option %-6s %s\n", ranked.summary.path_id.c_str(),
                ranked.rationale.c_str());
  }

  if (explain_selection) {
    const auto explained =
        selector.select_with(strategy, recommendation.value().request);
    if (!explained.ok()) {
      std::fprintf(stderr, "selection failed: %s\n",
                   explained.error().message.c_str());
      return 1;
    }
    std::printf("\nselection trace (%s):\n%s\n", strategy.c_str(),
                explained.value().explain().dump(2).c_str());
  }

  // Path Controller pins the winner under the chosen strategy.
  upinfw::PathController controller(host, selector, strategy);
  const auto applied = controller.apply(recommendation.value().request);
  if (!applied.ok()) return 1;
  std::printf("\ncontroller pinned %s for destination 3 (strategy %s)\n",
              applied.value().chosen.summary.path_id.c_str(),
              strategy.c_str());

  if (multipath_k > 1) {
    const auto plan =
        controller.apply_multipath(recommendation.value().request, multipath_k);
    if (!plan.ok()) {
      std::fprintf(stderr, "multipath plan failed: %s\n",
                   plan.error().message.c_str());
      return 1;
    }
    std::printf("\nmultipath plan (k=%zu):\n", multipath_k);
    for (const select::MultipathSubflow& subflow :
         plan.value().plan.subflows) {
      std::printf("  subflow %-6s weight %.2f\n",
                  subflow.summary.path_id.c_str(), subflow.weight);
    }
    for (const select::SharedBottleneckHop& shared :
         plan.value().plan.shared_bottlenecks) {
      std::printf("  shared early hop %s across %zu subflows\n",
                  shared.hop.to_string().c_str(), shared.subflows.size());
    }
    const auto mp_ping = controller.multipath_ping(3);
    if (mp_ping.ok()) {
      std::printf("  multipath ping: %zu subflows, %zu probes, %.1f%% loss\n",
                  mp_ping.value().subflows.size(),
                  mp_ping.value().aggregate.sent(),
                  mp_ping.value().aggregate.loss_pct());
    }
  }

  // Path Tracer records where the traffic actually goes.
  upinfw::PathTracer tracer(host, db);
  const auto trace = tracer.trace_and_store(
      3, applied.value().chosen.summary.path_id, env.servers[2],
      applied.value().chosen.summary.sequence);
  if (!trace.ok()) return 1;
  std::printf("trace (%s):\n", trace.value().complete ? "complete" : "partial");
  for (const auto& [ia, rtt] : trace.value().hops) {
    std::printf("  %-18s %s\n", ia.to_string().c_str(),
                rtt.has_value() ? util::format("%.2f ms", *rtt).c_str()
                                : "no answer");
  }

  // Path Verifier: only ISD 17 (our domain) and 19 are UPIN-enabled, so
  // the AWS hops leave the verdict "uncertain" — the paper's caveat.
  upinfw::PathVerifier verifier(env.topology);
  verifier.enable_isd(17);
  verifier.enable_isd(19);

  const auto fresh = controller.ping(3);
  if (!fresh.ok()) return 1;
  select::UserRequest checked = applied.value().request;
  checked.max_latency_ms = 150.0;
  checked.max_loss_pct = 5.0;
  const upinfw::VerificationReport report =
      verifier.verify(checked, trace.value(), fresh.value().stats);

  std::printf("\nverification verdict: %s\n",
              upinfw::to_string(report.verdict));
  for (const upinfw::Check& check : report.checks) {
    std::printf("  [%s] %-14s %s\n", check.passed ? "ok" : "FAIL",
                check.name.c_str(), check.detail.c_str());
  }
  if (!report.unverifiable_hops.empty()) {
    std::printf("  unverifiable hops (non-UPIN domains):");
    for (const scion::IsdAsn ia : report.unverifiable_hops) {
      std::printf(" %s", ia.to_string().c_str());
    }
    std::printf("\n");
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::trunc);
    out << campaign_spans.render();
    if (!out) {
      std::fprintf(stderr, "cannot write trace: %s\n", trace_path.c_str());
    } else {
      std::printf("\nspan trace: %zu spans -> %s\n",
                  campaign_spans.span_count(), trace_path.c_str());
    }
  }
  if (dump_metrics) {
    std::printf("\n%s", obs::Registry::global().to_prometheus().c_str());
  }
  return 0;
}
