// upin_session — the UPIN framework loop end to end (paper §2.1, §7).
//
// Domain Explorer publishes node knowledge; the user states an intent
// ("video call to Ireland, never transiting the US"); the Recommender
// maps it to a request; the Path Controller pins the winning path; the
// Path Tracer records where traffic actually went; and the Path Verifier
// checks the intent against trace + fresh measurements — including the
// paper's caveat that hops in non-UPIN-enabled domains make a passing
// verdict merely "uncertain".
#include <cstdio>

#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "upin/controller.hpp"
#include "upin/explorer.hpp"
#include "upin/recommend.hpp"
#include "upin/verifier.hpp"
#include "util/strings.hpp"

int main() {
  using namespace upin;

  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  // Knowledge base + measurement history.
  upinfw::DomainExplorer explorer(db, env.topology);
  if (!explorer.refresh().ok()) return 1;
  std::printf("domain explorer published %zu nodes\n",
              explorer.published_count());

  measure::TestSuiteConfig config;
  config.iterations = 12;
  config.server_ids = {{3}};  // Ireland
  measure::TestSuite suite(host, db, config);
  if (!suite.run().ok()) return 1;

  // The user's intent.
  const select::PathSelector selector(db, env.topology);
  select::UserRequest base;
  base.exclude_countries = {"US"};
  const upinfw::Recommender recommender(selector);
  const auto recommendation = recommender.recommend(
      upinfw::IntentProfile::kVideoCall, 3, 3, base);
  if (!recommendation.ok()) {
    std::fprintf(stderr, "no recommendation: %s\n",
                 recommendation.error().message.c_str());
    return 1;
  }
  std::printf("\n%s\n", recommendation.value().summary.c_str());
  for (const select::RankedPath& ranked : recommendation.value().ranked) {
    std::printf("  option %-6s %s\n", ranked.summary.path_id.c_str(),
                ranked.rationale.c_str());
  }

  // Path Controller pins the winner.
  upinfw::PathController controller(host, selector);
  const auto applied = controller.apply(recommendation.value().request);
  if (!applied.ok()) return 1;
  std::printf("\ncontroller pinned %s for destination 3\n",
              applied.value().chosen.summary.path_id.c_str());

  // Path Tracer records where the traffic actually goes.
  upinfw::PathTracer tracer(host, db);
  const auto trace = tracer.trace_and_store(
      3, applied.value().chosen.summary.path_id, env.servers[2],
      applied.value().chosen.summary.sequence);
  if (!trace.ok()) return 1;
  std::printf("trace (%s):\n", trace.value().complete ? "complete" : "partial");
  for (const auto& [ia, rtt] : trace.value().hops) {
    std::printf("  %-18s %s\n", ia.to_string().c_str(),
                rtt.has_value() ? util::format("%.2f ms", *rtt).c_str()
                                : "no answer");
  }

  // Path Verifier: only ISD 17 (our domain) and 19 are UPIN-enabled, so
  // the AWS hops leave the verdict "uncertain" — the paper's caveat.
  upinfw::PathVerifier verifier(env.topology);
  verifier.enable_isd(17);
  verifier.enable_isd(19);

  const auto fresh = controller.ping(3);
  if (!fresh.ok()) return 1;
  select::UserRequest checked = applied.value().request;
  checked.max_latency_ms = 150.0;
  checked.max_loss_pct = 5.0;
  const upinfw::VerificationReport report =
      verifier.verify(checked, trace.value(), fresh.value().stats);

  std::printf("\nverification verdict: %s\n",
              upinfw::to_string(report.verdict));
  for (const upinfw::Check& check : report.checks) {
    std::printf("  [%s] %-14s %s\n", check.passed ? "ok" : "FAIL",
                check.name.c_str(), check.detail.c_str());
  }
  if (!report.unverifiable_hops.empty()) {
    std::printf("  unverifiable hops (non-UPIN domains):");
    for (const scion::IsdAsn ia : report.unverifiable_hops) {
      std::printf(" %s", ia.to_string().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
