#include "apps/bwspec.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace upin::apps {

using util::ErrorCode;
using util::Result;

Result<BwSpec> BwSpec::parse(std::string_view text) {
  const std::vector<std::string> parts = util::split(text, ',');
  if (parts.size() != 4) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "bwtest spec needs 4 comma-separated fields"};
  }
  BwSpec spec;
  int wildcards = 0;

  const auto numeric = [&](std::string_view field)
      -> Result<std::optional<double>> {
    const std::string_view trimmed = util::trim(field);
    if (trimmed == "?") {
      ++wildcards;
      return std::optional<double>{};
    }
    const auto value = util::parse_double(trimmed);
    if (!value.has_value()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "bad bwtest field: " + std::string(field)};
    }
    return std::optional<double>{*value};
  };

  Result<std::optional<double>> duration = numeric(parts[0]);
  if (!duration.ok()) return Result<BwSpec>(duration.error());
  spec.duration_s = duration.value();

  const std::string_view size_field = util::trim(parts[1]);
  if (size_field == "MTU" || size_field == "mtu") {
    spec.packet_is_mtu = true;
  } else {
    Result<std::optional<double>> size = numeric(parts[1]);
    if (!size.ok()) return Result<BwSpec>(size.error());
    spec.packet_bytes = size.value();
  }

  Result<std::optional<double>> count = numeric(parts[2]);
  if (!count.ok()) return Result<BwSpec>(count.error());
  spec.packet_count = count.value();

  // Bandwidth with optional unit suffix.
  std::string_view bw_field = util::trim(parts[3]);
  double unit = 1.0;  // Mbps
  if (bw_field == "?") {
    ++wildcards;
  } else {
    if (util::ends_with(bw_field, "Mbps") || util::ends_with(bw_field, "mbps")) {
      bw_field = bw_field.substr(0, bw_field.size() - 4);
    } else if (util::ends_with(bw_field, "kbps")) {
      bw_field = bw_field.substr(0, bw_field.size() - 4);
      unit = 1e-3;
    } else if (util::ends_with(bw_field, "bps")) {
      bw_field = bw_field.substr(0, bw_field.size() - 3);
      unit = 1e-6;
    }
    const auto value = util::parse_double(util::trim(bw_field));
    if (!value.has_value()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "bad bandwidth field: " + std::string(parts[3])};
    }
    spec.target_mbps = *value * unit;
  }

  if (wildcards > 1) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "at most one '?' wildcard is allowed"};
  }
  return spec;
}

Result<BwSpec> BwSpec::resolve(double path_mtu_bytes) const {
  BwSpec resolved = *this;
  if (resolved.packet_is_mtu) {
    resolved.packet_bytes = path_mtu_bytes;
  }

  const int known = (resolved.duration_s.has_value() ? 1 : 0) +
                    (resolved.packet_bytes.has_value() ? 1 : 0) +
                    (resolved.packet_count.has_value() ? 1 : 0) +
                    (resolved.target_mbps.has_value() ? 1 : 0);
  if (known < 3) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "bwtest spec is under-constrained"};
  }

  // bandwidth_bps = count * size * 8 / duration
  if (!resolved.packet_count.has_value()) {
    resolved.packet_count =
        std::floor(*resolved.target_mbps * 1e6 * *resolved.duration_s /
                   (8.0 * *resolved.packet_bytes));
  } else if (!resolved.target_mbps.has_value()) {
    resolved.target_mbps = *resolved.packet_count * *resolved.packet_bytes *
                           8.0 / *resolved.duration_s / 1e6;
  } else if (!resolved.duration_s.has_value()) {
    resolved.duration_s = *resolved.packet_count * *resolved.packet_bytes *
                          8.0 / (*resolved.target_mbps * 1e6);
  } else if (!resolved.packet_bytes.has_value()) {
    resolved.packet_bytes = *resolved.target_mbps * 1e6 *
                            *resolved.duration_s /
                            (8.0 * *resolved.packet_count);
  }

  if (*resolved.duration_s <= 0.0 || *resolved.duration_s > 10.0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "duration must be in (0, 10] seconds"};
  }
  if (*resolved.packet_bytes < 4.0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "packet size must be at least 4 bytes"};
  }
  if (*resolved.target_mbps <= 0.0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "target bandwidth must be positive"};
  }
  return resolved;
}

std::string BwSpec::to_string() const {
  const auto field = [](const std::optional<double>& value) -> std::string {
    if (!value.has_value()) return "?";
    if (*value == std::floor(*value)) {
      return std::to_string(static_cast<long long>(*value));
    }
    return util::format("%g", *value);
  };
  std::string size = packet_is_mtu && !packet_bytes.has_value()
                         ? "MTU"
                         : field(packet_bytes);
  return field(duration_s) + "," + size + "," + field(packet_count) + "," +
         (target_mbps.has_value() ? util::format("%gMbps", *target_mbps) : "?");
}

}  // namespace upin::apps
