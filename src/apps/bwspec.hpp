// bwspec.hpp — the bwtester parameter mini-language.
//
// `scion-bwtestclient` takes test parameters as "<duration>,<size>,<count>,
// <bandwidth>" with `?` wildcards resolved from the other three (paper
// §3.3: "5,100,?,150Mbps specifies that the packet size is 100 bytes,
// sent over 5 seconds, resulting in a bandwidth of 150Mbps").  Size may
// also be the literal "MTU", resolved against the path MTU at run time.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace upin::apps {

/// A parsed bwtest parameter set.  Unset fields were `?` wildcards.
struct BwSpec {
  std::optional<double> duration_s;
  std::optional<double> packet_bytes;  ///< unset also when "MTU" was given
  bool packet_is_mtu = false;          ///< size given as literal "MTU"
  std::optional<double> packet_count;
  std::optional<double> target_mbps;

  /// Parse "3,64,?,12Mbps".  At most one `?`; bandwidth accepts a
  /// trailing "Mbps"/"kbps"/"bps" unit (default Mbps).
  [[nodiscard]] static util::Result<BwSpec> parse(std::string_view text);

  /// Fill wildcards given the path MTU: packet size resolves from "MTU";
  /// the remaining unknown resolves from bandwidth = count*size*8/duration.
  /// Fails when the spec is over- or under-constrained or out of range
  /// (duration must be in (0, 10] s, size >= 4 bytes — §3.3).
  [[nodiscard]] util::Result<BwSpec> resolve(double path_mtu_bytes) const;

  /// Render back to the "d,s,n,bwMbps" form.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace upin::apps
