#include "apps/host.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace upin::apps {

using scion::IsdAsn;
using scion::Path;
using scion::SnetAddress;
using util::ErrorCode;
using util::Result;
using util::SimTime;

ScionHost::ScionHost(const scion::ScionlabEnv& env, std::uint64_t seed,
                     IsdAsn local_as, std::string local_host_ip,
                     simnet::NetworkConfig net_config, HostConfig config)
    : env_(env),
      beaconing_(env.topology),
      compiled_(env.topology.compile(seed, net_config)),
      config_(config),
      control_plane_(seed, config.control_plane, env.topology, beaconing_,
                     compiled_.node_of, compiled_.network.faults(), local_as),
      local_as_(local_as),
      local_host_ip_(std::move(local_host_ip)) {}

AddressInfo ScionHost::address() const {
  AddressInfo info;
  info.local = SnetAddress{local_as_, local_host_ip_};
  if (const scion::AsInfo* as_info = env_.topology.find_as(local_as_)) {
    info.as_name = as_info->name;
    info.role = as_info->role;
  }
  return info;
}

Result<std::vector<PathListing>> ScionHost::showpaths(
    IsdAsn dst, const ShowpathsOptions& options) const {
  if (env_.topology.find_as(dst) == nullptr) {
    return util::Error{ErrorCode::kNotFound,
                       "unknown destination AS " + dst.to_string()};
  }
  control_plane_.sync(clock_.now());
  std::vector<Path> paths =
      control_plane_.annotated_paths(local_as_, dst, clock_.now());
  if (paths.size() > options.max_paths) paths.resize(options.max_paths);

  std::vector<PathListing> listings;
  listings.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    PathListing listing;
    listing.path = paths[i];
    // Path status reflects current liveness: a hop inside an active hard
    // outage window makes the path show "timeout", as in the real
    // `showpaths` output.  A delivered revocation ("revoked") wins over
    // the data-plane view; stale lifetime flags lose to both.
    if (listing.path.status() != "revoked") {
      for (const scion::PathHop& hop : listing.path.hops()) {
        const auto node = compiled_.node_of.find(hop.ia);
        if (node != compiled_.node_of.end() &&
            compiled_.network.outage_drop(node->second, clock_.now()) >= 1.0) {
          listing.path.set_status("timeout");
          break;
        }
      }
    }
    std::string render =
        util::format("[%2zu] %s", i, listing.path.sequence().c_str());
    if (options.extended) {
      render += util::format(
          " MTU: %d, Status: %s, Latency: %dms",
          static_cast<int>(listing.path.mtu()), listing.path.status().c_str(),
          static_cast<int>(util::to_millis(listing.path.static_latency())));
    }
    listing.render = std::move(render);
    listings.push_back(std::move(listing));
  }
  return listings;
}

Result<Path> ScionHost::pick_path(IsdAsn dst, const std::string& sequence) {
  const SimTime now = clock_.now();
  control_plane_.sync(now);
  const std::vector<Path> paths =
      control_plane_.annotated_paths(local_as_, dst, now);
  if (paths.empty()) {
    return util::Error{ErrorCode::kUnreachable,
                       "no path to " + dst.to_string()};
  }

  if (sequence.empty()) {
    // Best live path: skip anything with a delivered revocation.  This is
    // host-level failover — the ranking is untouched, dead paths just
    // drop out until their fault window heals.
    for (const Path& candidate : paths) {
      if (candidate.status() != "revoked") return candidate;
    }
    return util::Error{ErrorCode::kRevoked,
                       "all paths to " + dst.to_string() +
                           " are revoked by the control plane"};
  }

  Result<Path> wanted = Path::parse_sequence(sequence);
  if (!wanted.ok()) return wanted;
  for (const Path& candidate : paths) {
    if (candidate.hops().size() != wanted.value().hops().size()) continue;
    bool same = true;
    for (std::size_t i = 0; i < candidate.hops().size(); ++i) {
      if (candidate.hops()[i].ia != wanted.value().hops()[i].ia) {
        same = false;
        break;
      }
    }
    if (same) {
      if (candidate.status() == "revoked") {
        // The revocation was delivered before send time: fail without
        // putting a single probe on the wire (the churn invariant).
        return util::Error{ErrorCode::kRevoked,
                           "path revoked by control plane: " + sequence};
      }
      return candidate;
    }
  }
  return util::Error{ErrorCode::kNotFound,
                     "no discovered path matches sequence: " + sequence};
}

util::Error ScionHost::classify_dead_path(const Path& path,
                                          util::Error original) const {
  // A probe train that died mid-flight is reclassified with the
  // control-plane taxonomy: a revocation delivered inside the window
  // explains the death better than a generic timeout, and an elapsed
  // lifetime better than nothing.  Garbled answers keep their class —
  // the server responded, so the path itself was alive.
  if (original.code != ErrorCode::kTimeout &&
      original.code != ErrorCode::kUnreachable) {
    return original;
  }
  if (control_plane_.path_revoked(path, clock_.now())) {
    return util::Error{ErrorCode::kRevoked,
                       "path revoked mid-probe: " + path.to_string() +
                           " (" + original.message + ")"};
  }
  if (path.expired(clock_.now())) {
    return util::Error{ErrorCode::kExpired,
                       "path lifetime expired mid-probe: " + path.to_string() +
                           " (" + original.message + ")"};
  }
  return original;
}

Result<std::vector<simnet::NodeId>> ScionHost::route_of(
    const Path& path) const {
  std::vector<simnet::NodeId> route;
  route.reserve(path.hops().size());
  for (const scion::PathHop& hop : path.hops()) {
    const auto it = compiled_.node_of.find(hop.ia);
    if (it == compiled_.node_of.end()) {
      return util::Error{ErrorCode::kNotFound,
                         "AS not in compiled network: " + hop.ia.to_string()};
    }
    route.push_back(it->second);
  }
  return route;
}

std::string PingReport::summary() const {
  const auto avg = stats.avg_ms();
  return util::format(
      "%zu packets sent, %zu lost (%.1f%%), avg RTT %s", stats.sent(),
      stats.lost(), stats.loss_pct(),
      avg.has_value() ? util::format("%.2fms", *avg).c_str() : "n/a");
}

Result<PingReport> ScionHost::ping(const SnetAddress& dst,
                                   const PingOptions& options) {
  Result<Path> path = pick_path(dst.ia, options.sequence);
  if (!path.ok()) return Result<PingReport>(path.error());
  Result<std::vector<simnet::NodeId>> route = route_of(path.value());
  if (!route.ok()) return Result<PingReport>(route.error());

  simnet::PingOptions ping_options;
  ping_options.count = options.count;
  ping_options.interval = util::sim_seconds(options.interval_s);
  ping_options.payload_bytes = options.payload_bytes;

  Result<simnet::PingStats> stats =
      compiled_.network.ping(route.value(), ping_options, clock_.now());
  if (!stats.ok()) {
    // Failed commands still burn wall clock: a timed-out or garbled run
    // occupied its full schedule before the client gave up, while an
    // unreachable destination fails fast (the SCMP error returns after
    // config().scmp_error_fail_fast_s).
    if (stats.error().code == ErrorCode::kTimeout ||
        stats.error().code == ErrorCode::kBadResponse) {
      clock_.advance(util::sim_seconds(static_cast<double>(options.count) *
                                       options.interval_s));
    } else if (stats.error().code == ErrorCode::kUnreachable) {
      clock_.advance(util::sim_seconds(config_.scmp_error_fail_fast_s));
    }
    control_plane_.sync(clock_.now());
    return Result<PingReport>(
        classify_dead_path(path.value(), stats.error()));
  }

  // The command occupies the timeline for count * interval.
  clock_.advance(util::sim_seconds(static_cast<double>(options.count) *
                                   options.interval_s));

  if (stats.value().sent() > 0 && stats.value().lost() == stats.value().sent()) {
    // Every probe died on the wire — a flapped link, not a dark server.
    // If the control plane delivered a covering revocation by the end of
    // the run, report that instead of silent 100 % loss.
    control_plane_.sync(clock_.now());
    if (control_plane_.path_revoked(path.value(), clock_.now())) {
      return Result<PingReport>(util::Error{
          ErrorCode::kRevoked,
          "path revoked mid-probe: " + path.value().to_string()});
    }
  }

  PingReport report;
  report.path = std::move(path).value();
  report.stats = std::move(stats).value();
  return report;
}

Result<TracerouteReport> ScionHost::traceroute(const SnetAddress& dst,
                                               const std::string& sequence) {
  Result<Path> path = pick_path(dst.ia, sequence);
  if (!path.ok()) return Result<TracerouteReport>(path.error());
  Result<std::vector<simnet::NodeId>> route = route_of(path.value());
  if (!route.ok()) return Result<TracerouteReport>(route.error());

  Result<simnet::TraceResult> trace =
      compiled_.network.traceroute(route.value(), clock_.now());
  if (!trace.ok()) return Result<TracerouteReport>(trace.error());
  clock_.advance(util::sim_seconds(1.0));

  TracerouteReport report;
  report.path = std::move(path).value();
  report.trace = std::move(trace).value();
  return report;
}

Result<BwtestReport> ScionHost::bwtestclient(const SnetAddress& server,
                                             const BwtestOptions& options) {
  Result<Path> path = pick_path(server.ia, options.sequence);
  if (!path.ok()) return Result<BwtestReport>(path.error());
  Result<std::vector<simnet::NodeId>> route = route_of(path.value());
  if (!route.ok()) return Result<BwtestReport>(route.error());

  Result<BwSpec> cs_parsed = BwSpec::parse(options.cs_spec);
  if (!cs_parsed.ok()) return Result<BwtestReport>(cs_parsed.error());
  Result<BwSpec> cs = cs_parsed.value().resolve(path.value().mtu());
  if (!cs.ok()) return Result<BwtestReport>(cs.error());

  // "The parameters for the client-to-server direction ... by default,
  // they are used for the server-to-client too" (§3.3).
  Result<BwSpec> sc_parsed = BwSpec::parse(
      options.sc_spec.empty() ? options.cs_spec : options.sc_spec);
  if (!sc_parsed.ok()) return Result<BwtestReport>(sc_parsed.error());
  Result<BwSpec> sc = sc_parsed.value().resolve(path.value().mtu());
  if (!sc.ok()) return Result<BwtestReport>(sc.error());

  const auto run = [&](const BwSpec& spec,
                       const std::vector<simnet::NodeId>& direction_route)
      -> Result<simnet::BwtestResult> {
    simnet::BwtestOptions bw_options;
    bw_options.duration_s = *spec.duration_s;
    bw_options.packet_bytes = *spec.packet_bytes;
    bw_options.target_mbps = *spec.target_mbps;
    Result<simnet::BwtestResult> result =
        compiled_.network.bwtest(direction_route, bw_options, clock_.now());
    // The test occupies the timeline whether it succeeded, the server
    // errored mid-run, or the transfer timed out; an unreachable server
    // fails fast and only argument errors cost nothing.
    if (result.ok() || result.error().code == util::ErrorCode::kBadResponse ||
        result.error().code == util::ErrorCode::kTimeout) {
      clock_.advance(util::sim_seconds(*spec.duration_s));
    } else if (result.error().code == util::ErrorCode::kUnreachable) {
      clock_.advance(util::sim_seconds(config_.scmp_error_fail_fast_s));
    }
    if (!result.ok()) {
      control_plane_.sync(clock_.now());
      return Result<simnet::BwtestResult>(
          classify_dead_path(path.value(), result.error()));
    }
    return result;
  };

  Result<simnet::BwtestResult> cs_result = run(cs.value(), route.value());
  if (!cs_result.ok()) return Result<BwtestReport>(cs_result.error());

  std::vector<simnet::NodeId> reverse_route(route.value().rbegin(),
                                            route.value().rend());
  Result<simnet::BwtestResult> sc_result = run(sc.value(), reverse_route);
  if (!sc_result.ok()) return Result<BwtestReport>(sc_result.error());

  BwtestReport report;
  report.path = std::move(path).value();
  report.cs_resolved = std::move(cs).value();
  report.sc_resolved = std::move(sc).value();
  report.client_to_server = cs_result.value();
  report.server_to_client = sc_result.value();
  return report;
}

namespace {

/// Weights normalized to sum 1; kInvalidArgument on empty input or a
/// non-positive weight.
Result<std::vector<double>> normalized_weights(
    const std::vector<SubflowSpec>& subflows) {
  if (subflows.empty()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "multipath needs at least one subflow"};
  }
  double total = 0.0;
  for (const SubflowSpec& spec : subflows) {
    if (!(spec.weight > 0.0)) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "subflow weights must be positive"};
    }
    total += spec.weight;
  }
  std::vector<double> weights;
  weights.reserve(subflows.size());
  for (const SubflowSpec& spec : subflows) {
    weights.push_back(spec.weight / total);
  }
  return weights;
}

/// Integer split of `total` by weight, largest remainder (ties to the
/// earlier subflow) so the shares always sum to `total` exactly.
std::vector<std::size_t> split_by_weight(std::size_t total,
                                         const std::vector<double>& weights) {
  std::vector<std::size_t> shares(weights.size(), 0);
  std::vector<double> remainders(weights.size(), 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i];
    shares[i] = static_cast<std::size_t>(exact);
    remainders[i] = exact - static_cast<double>(shares[i]);
    assigned += shares[i];
  }
  while (assigned < total) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < weights.size(); ++i) {
      if (remainders[i] > remainders[best]) best = i;
    }
    ++shares[best];
    remainders[best] = -1.0;
    ++assigned;
  }
  return shares;
}

}  // namespace

Result<MultipathPingReport> ScionHost::multipath_ping(
    const SnetAddress& dst, const std::vector<SubflowSpec>& subflows,
    const MultipathPingOptions& options) {
  Result<std::vector<double>> weights = normalized_weights(subflows);
  if (!weights.ok()) return Result<MultipathPingReport>(weights.error());
  const std::vector<std::size_t> probes =
      split_by_weight(options.count, weights.value());

  // Every subflow launches at the same instant; the clock advances once
  // below, by the longest subflow schedule.
  const SimTime start = clock_.now();
  MultipathPingReport report;
  report.subflows.reserve(subflows.size());
  double burn_s = 0.0;
  for (std::size_t i = 0; i < subflows.size(); ++i) {
    MultipathPingReport::Subflow subflow;
    subflow.probes = probes[i];
    Result<Path> path = pick_path(dst.ia, subflows[i].sequence);
    if (!path.ok()) {
      subflow.error = path.error();
      report.subflows.push_back(std::move(subflow));
      continue;
    }
    subflow.path = std::move(path).value();
    if (subflow.probes == 0) {
      // The weight rounded this subflow out of the schedule entirely.
      subflow.ok = true;
      report.subflows.push_back(std::move(subflow));
      continue;
    }
    Result<std::vector<simnet::NodeId>> route = route_of(subflow.path);
    if (!route.ok()) {
      subflow.error = route.error();
      report.subflows.push_back(std::move(subflow));
      continue;
    }
    simnet::PingOptions ping_options;
    ping_options.count = subflow.probes;
    ping_options.interval = util::sim_seconds(options.interval_s);
    ping_options.payload_bytes = options.payload_bytes;
    Result<simnet::PingStats> stats =
        compiled_.network.ping(route.value(), ping_options, start);
    const double schedule_s =
        static_cast<double>(subflow.probes) * options.interval_s;
    if (!stats.ok()) {
      subflow.error = stats.error();
      if (subflow.error.code == ErrorCode::kTimeout ||
          subflow.error.code == ErrorCode::kBadResponse) {
        burn_s = std::max(burn_s, schedule_s);
      } else if (subflow.error.code == ErrorCode::kUnreachable) {
        burn_s = std::max(burn_s, config_.scmp_error_fail_fast_s);
      }
      report.subflows.push_back(std::move(subflow));
      continue;
    }
    burn_s = std::max(burn_s, schedule_s);
    subflow.ok = true;
    subflow.stats = std::move(stats).value();
    report.subflows.push_back(std::move(subflow));
  }

  clock_.advance(util::sim_seconds(burn_s));
  control_plane_.sync(clock_.now());

  // Post-mortems with the end-of-run control-plane view: mid-probe
  // revocations reclassify dead subflows, and a fully-lost subflow whose
  // covering revocation arrived by now reports kRevoked, as in ping().
  for (MultipathPingReport::Subflow& subflow : report.subflows) {
    if (!subflow.ok) {
      if (!subflow.path.hops().empty()) {
        subflow.error = classify_dead_path(subflow.path, subflow.error);
      }
      continue;
    }
    if (subflow.stats.sent() > 0 &&
        subflow.stats.lost() == subflow.stats.sent() &&
        control_plane_.path_revoked(subflow.path, clock_.now())) {
      subflow.ok = false;
      subflow.error = util::Error{
          ErrorCode::kRevoked,
          "path revoked mid-probe: " + subflow.path.to_string()};
    }
  }

  bool any_ok = false;
  for (const MultipathPingReport::Subflow& subflow : report.subflows) {
    if (!subflow.ok) continue;
    any_ok = true;
    report.aggregate.rtt_ms.insert(report.aggregate.rtt_ms.end(),
                                   subflow.stats.rtt_ms.begin(),
                                   subflow.stats.rtt_ms.end());
  }
  if (!any_ok) {
    for (const MultipathPingReport::Subflow& subflow : report.subflows) {
      if (!subflow.ok) return Result<MultipathPingReport>(subflow.error);
    }
  }
  return report;
}

Result<MultipathBwtestReport> ScionHost::multipath_bwtest(
    const SnetAddress& server, const std::vector<SubflowSpec>& subflows,
    const MultipathBwtestOptions& options) {
  Result<std::vector<double>> weights = normalized_weights(subflows);
  if (!weights.ok()) return Result<MultipathBwtestReport>(weights.error());

  const SimTime start = clock_.now();
  MultipathBwtestReport report;
  report.subflows.resize(subflows.size());
  std::vector<simnet::FlowSpec> flows;
  std::vector<std::size_t> flow_owner;  // flow index -> subflow index
  for (std::size_t i = 0; i < subflows.size(); ++i) {
    MultipathBwtestReport::Subflow& subflow = report.subflows[i];
    subflow.target_mbps = weights.value()[i] * options.total_target_mbps;
    Result<Path> path = pick_path(server.ia, subflows[i].sequence);
    if (!path.ok()) {
      subflow.error = path.error();
      continue;
    }
    subflow.path = std::move(path).value();
    Result<std::vector<simnet::NodeId>> route = route_of(subflow.path);
    if (!route.ok()) {
      subflow.error = route.error();
      continue;
    }
    simnet::FlowSpec flow;
    flow.route = std::move(route).value();
    if (options.downstream) {
      std::reverse(flow.route.begin(), flow.route.end());
    }
    flow.options.duration_s = options.duration_s;
    flow.options.packet_bytes = options.packet_bytes;
    flow.options.target_mbps = subflow.target_mbps;
    flows.push_back(std::move(flow));
    flow_owner.push_back(i);
  }

  double burn_s = 0.0;
  if (!flows.empty()) {
    Result<simnet::MultibwtestOutcome> outcome =
        compiled_.network.multibwtest(flows, start);
    if (!outcome.ok()) return Result<MultipathBwtestReport>(outcome.error());
    for (std::size_t f = 0; f < outcome.value().flows.size(); ++f) {
      MultipathBwtestReport::Subflow& subflow = report.subflows[flow_owner[f]];
      simnet::MultibwtestOutcome::Flow& flow = outcome.value().flows[f];
      if (flow.ok) {
        subflow.ok = true;
        subflow.result = flow.result;
        burn_s = std::max(burn_s, options.duration_s);
        report.attempted_mbps += flow.result.attempted_mbps;
        report.achieved_mbps += flow.result.achieved_mbps;
      } else {
        subflow.error = flow.error;
        if (flow.error.code == ErrorCode::kBadResponse ||
            flow.error.code == ErrorCode::kTimeout) {
          burn_s = std::max(burn_s, options.duration_s);
        } else if (flow.error.code == ErrorCode::kUnreachable) {
          burn_s = std::max(burn_s, config_.scmp_error_fail_fast_s);
        }
      }
    }
    report.shared_bottlenecks = std::move(outcome.value().shared_bottlenecks);
  }

  clock_.advance(util::sim_seconds(burn_s));
  control_plane_.sync(clock_.now());
  bool any_ok = false;
  for (MultipathBwtestReport::Subflow& subflow : report.subflows) {
    if (subflow.ok) {
      any_ok = true;
    } else if (!subflow.path.hops().empty()) {
      subflow.error = classify_dead_path(subflow.path, subflow.error);
    }
  }
  if (!any_ok) {
    for (const MultipathBwtestReport::Subflow& subflow : report.subflows) {
      if (!subflow.ok) return Result<MultipathBwtestReport>(subflow.error);
    }
  }
  return report;
}

void ScionHost::inject_outage(IsdAsn as, SimTime start, SimTime end,
                              double drop_prob) {
  const auto it = compiled_.node_of.find(as);
  if (it == compiled_.node_of.end()) return;
  compiled_.network.add_outage(
      simnet::OutageWindow{it->second, start, end, drop_prob});
}

}  // namespace upin::apps
