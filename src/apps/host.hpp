// host.hpp — the SCION end host and its application surface.
//
// A ScionHost binds the testbed (topology + compiled network + virtual
// clock) to one local AS and exposes the applications of paper §3.3 as
// library calls with the same semantics:
//
//   address()        ~ `scion address`
//   showpaths()      ~ `scion showpaths --extended -m N`
//   ping()           ~ `scion ping <dst> -c N --interval I --sequence S`
//   traceroute()     ~ `scion traceroute <dst> --sequence S`
//   bwtestclient()   ~ `scion-bwtestclient -s <dst> -cs SPEC [-sc SPEC]`
//
// Each call consumes virtual time exactly like the real command consumes
// wall time (30 pings at 0.1 s ≈ 3 s, one bwtest = its duration), so a
// measurement campaign lays its samples on a faithful shared timeline —
// the property behind the Fig 9 congestion-episode reading.
#pragma once

#include <memory>
#include <vector>

#include "apps/bwspec.hpp"
#include "scion/beacon.hpp"
#include "scion/control_plane.hpp"
#include "scion/scionlab.hpp"
#include "util/clock.hpp"

namespace upin::apps {

/// Host-level behaviour knobs (beyond the network model itself).
struct HostConfig {
  /// How long a failed command burns before the SCMP error arrives when
  /// the destination is unreachable (`scion ping`'s fail-fast, formerly a
  /// hardcoded ~1 s).
  double scmp_error_fail_fast_s = 1.0;
  /// Path cache + revocation propagation tuning.
  scion::ControlPlaneConfig control_plane;
};

/// Result of `scion address`.
struct AddressInfo {
  scion::SnetAddress local;
  std::string as_name;
  scion::AsRole role = scion::AsRole::kUser;
};

struct ShowpathsOptions {
  std::size_t max_paths = 10;  ///< -m; the paper uses 40
  bool extended = false;       ///< adds MTU / status / latency metadata
};

/// One row of showpaths output.
struct PathListing {
  scion::Path path;
  std::string render;  ///< the printed line (interfaces, and metadata if extended)
};

struct PingOptions {
  std::size_t count = 30;               ///< -c
  double interval_s = 0.1;              ///< --interval
  std::string sequence;                 ///< --sequence hop predicates; empty = best path
  double payload_bytes = 64.0;
};

struct PingReport {
  scion::Path path;                     ///< the path actually probed
  simnet::PingStats stats;
  [[nodiscard]] std::string summary() const;  ///< "30 packets, 3.3% loss, avg 41.2ms"
};

struct TracerouteReport {
  scion::Path path;
  simnet::TraceResult trace;
};

struct BwtestOptions {
  std::string cs_spec = "3,1000,?,12Mbps";  ///< -cs client->server
  std::string sc_spec;                      ///< -sc; empty = reuse cs (§3.3)
  std::string sequence;                     ///< hop predicates; empty = best path
};

struct BwtestReport {
  scion::Path path;
  BwSpec cs_resolved;
  BwSpec sc_resolved;
  simnet::BwtestResult client_to_server;
  simnet::BwtestResult server_to_client;
};

/// One subflow of a multipath operation: a pinned hop sequence plus its
/// relative send weight (normalized across the spec list; callers
/// typically derive both from a `select::MultipathPlan`).
struct SubflowSpec {
  std::string sequence;
  double weight = 1.0;
};

struct MultipathPingOptions {
  std::size_t count = 30;   ///< total probes, split across subflows by weight
  double interval_s = 0.1;
  double payload_bytes = 64.0;
};

/// Weighted round-robin probe train over k concurrent subflows.  The
/// subflows run in parallel on the timeline (the clock advances once, by
/// the longest subflow schedule), and each can fail individually.
struct MultipathPingReport {
  struct Subflow {
    scion::Path path;          ///< resolved path (default when pick failed)
    std::size_t probes = 0;    ///< weighted share of `count`
    bool ok = false;
    util::Error error;         ///< meaningful only when !ok
    simnet::PingStats stats;   ///< meaningful only when ok
  };
  std::vector<Subflow> subflows;
  simnet::PingStats aggregate;  ///< delivered probes across live subflows
};

struct MultipathBwtestOptions {
  double duration_s = 3.0;
  double packet_bytes = 1000.0;
  double total_target_mbps = 12.0;  ///< split across subflows by weight
  bool downstream = false;  ///< probe server->client instead of client->server
};

/// Concurrent weighted bandwidth probes over k subflows, with the shared
/// links modelled as contended (simnet::Network::multibwtest).
struct MultipathBwtestReport {
  struct Subflow {
    scion::Path path;
    double target_mbps = 0.0;  ///< weighted share of the total target
    bool ok = false;
    util::Error error;
    simnet::BwtestResult result;
  };
  std::vector<Subflow> subflows;
  double attempted_mbps = 0.0;  ///< summed over live subflows
  double achieved_mbps = 0.0;   ///< summed over live subflows (goodput)
  std::vector<simnet::SharedBottleneck> shared_bottlenecks;
};

/// A host inside the testbed.  Not copyable; shares the env and clock by
/// reference (one campaign = one host on one timeline).
class ScionHost {
 public:
  /// `local_host_ip` is this host's address within its AS.
  ScionHost(const scion::ScionlabEnv& env, std::uint64_t seed,
            scion::IsdAsn local_as, std::string local_host_ip,
            simnet::NetworkConfig net_config = {}, HostConfig config = {});

  ScionHost(const ScionHost&) = delete;
  ScionHost& operator=(const ScionHost&) = delete;

  [[nodiscard]] AddressInfo address() const;

  /// Paths to `dst`, ranked by hop count (then static latency), at most
  /// `options.max_paths` — the `scion showpaths` contract.
  [[nodiscard]] util::Result<std::vector<PathListing>> showpaths(
      scion::IsdAsn dst, const ShowpathsOptions& options) const;

  [[nodiscard]] util::Result<PingReport> ping(const scion::SnetAddress& dst,
                                              const PingOptions& options);

  [[nodiscard]] util::Result<TracerouteReport> traceroute(
      const scion::SnetAddress& dst, const std::string& sequence = {});

  [[nodiscard]] util::Result<BwtestReport> bwtestclient(
      const scion::SnetAddress& server, const BwtestOptions& options);

  /// Probe `dst` over `subflows.size()` concurrent paths, splitting
  /// `options.count` probes by normalized weight (largest remainder).
  /// Succeeds when at least one subflow delivers; kInvalidArgument on an
  /// empty spec list or non-positive weights.
  [[nodiscard]] util::Result<MultipathPingReport> multipath_ping(
      const scion::SnetAddress& dst, const std::vector<SubflowSpec>& subflows,
      const MultipathPingOptions& options);

  /// Drive `options.total_target_mbps` at `server` over the subflows
  /// concurrently (per-subflow target = normalized weight x total), with
  /// shared links contended.  Succeeds when at least one subflow ran.
  [[nodiscard]] util::Result<MultipathBwtestReport> multipath_bwtest(
      const scion::SnetAddress& server,
      const std::vector<SubflowSpec>& subflows,
      const MultipathBwtestOptions& options);

  /// The shared virtual clock (exposed so campaigns can schedule pauses).
  [[nodiscard]] util::VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] const util::VirtualClock& clock() const noexcept { return clock_; }

  /// Inject an outage on an AS (benchmark staging for Fig 9).
  void inject_outage(scion::IsdAsn as, util::SimTime start, util::SimTime end,
                     double drop_prob = 1.0);

  [[nodiscard]] const scion::ScionlabEnv& env() const noexcept { return env_; }
  [[nodiscard]] const scion::Beaconing& beaconing() const noexcept { return beaconing_; }
  [[nodiscard]] const simnet::Network& network() const noexcept {
    return compiled_.network;
  }
  /// Path lookup cache + revocation state for this host.  Mutable even on
  /// const hosts: lookups touch LRU order and deliver pending revocations.
  [[nodiscard]] scion::ControlPlane& control_plane() const noexcept {
    return control_plane_;
  }
  [[nodiscard]] const HostConfig& config() const noexcept { return config_; }

  /// Translate a path into the simnet route of its ASes.
  [[nodiscard]] util::Result<std::vector<simnet::NodeId>> route_of(
      const scion::Path& path) const;

 private:
  /// Path selected by `sequence` (validated against discovered paths), or
  /// the best (first-ranked) live path when the sequence is empty.  Never
  /// returns a path whose revocation was delivered before now — a pinned
  /// revoked sequence fails with kRevoked without touching the network.
  [[nodiscard]] util::Result<scion::Path> pick_path(
      scion::IsdAsn dst, const std::string& sequence);

  /// Reclassify a probe that died mid-flight: revocation delivered inside
  /// the probe window beats expiry beats the original error.
  [[nodiscard]] util::Error classify_dead_path(const scion::Path& path,
                                               util::Error original) const;

  const scion::ScionlabEnv& env_;
  scion::Beaconing beaconing_;
  scion::Topology::Compiled compiled_;
  HostConfig config_;
  mutable scion::ControlPlane control_plane_;
  util::VirtualClock clock_;
  scion::IsdAsn local_as_;
  std::string local_host_ip_;
};

}  // namespace upin::apps
