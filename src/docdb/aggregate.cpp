#include "docdb/aggregate.hpp"

#include <algorithm>
#include <map>

#include "docdb/filter.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Value;

namespace {

/// Resolve an expression against a document: "$path" is a field
/// reference (null Value when absent); anything else is a literal.
Value evaluate(const Value& expression, const Document& doc) {
  if (expression.is_string() && !expression.as_string().empty() &&
      expression.as_string()[0] == '$') {
    const Value* found =
        doc.get_path(std::string_view(expression.as_string()).substr(1));
    return found == nullptr ? Value() : *found;
  }
  return expression;
}

// ------------------------------------------------------------ accumulators

struct Accumulator {
  enum class Kind { kAvg, kSum, kMin, kMax, kCount, kFirst, kPush };
  Kind kind = Kind::kCount;
  Value argument;  ///< expression evaluated per document

  // running state
  double numeric = 0.0;
  std::size_t seen = 0;
  Value value_state;          // min/max/first
  Value::Array pushed;        // push
  bool has_value = false;

  void feed(const Document& doc) {
    switch (kind) {
      case Kind::kCount:
        ++seen;
        break;
      case Kind::kAvg:
      case Kind::kSum: {
        const Value v = evaluate(argument, doc);
        if (v.is_number()) {
          numeric += v.as_double();
          ++seen;
        }
        break;
      }
      case Kind::kMin:
      case Kind::kMax: {
        const Value v = evaluate(argument, doc);
        if (v.is_null()) break;
        if (!has_value ||
            (kind == Kind::kMin ? compare_values(v, value_state) < 0
                                : compare_values(v, value_state) > 0)) {
          value_state = v;
          has_value = true;
        }
        break;
      }
      case Kind::kFirst: {
        if (!has_value) {
          value_state = evaluate(argument, doc);
          has_value = true;
        }
        break;
      }
      case Kind::kPush: {
        const Value v = evaluate(argument, doc);
        if (!v.is_null()) pushed.push_back(v);
        break;
      }
    }
  }

  [[nodiscard]] Value finish() const {
    switch (kind) {
      case Kind::kCount: return Value(seen);
      case Kind::kSum: return Value(numeric);
      case Kind::kAvg:
        return seen == 0 ? Value()
                         : Value(numeric / static_cast<double>(seen));
      case Kind::kMin:
      case Kind::kMax:
      case Kind::kFirst: return has_value ? value_state : Value();
      case Kind::kPush: return Value(pushed);
    }
    return Value();
  }
};

Result<Accumulator> parse_accumulator(const Value& spec) {
  if (!spec.is_object() || spec.as_object().size() != 1) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "accumulator must be a single-operator object"};
  }
  const auto& [op, argument] = *spec.as_object().begin();
  Accumulator acc;
  acc.argument = argument;
  if (op == "$avg") {
    acc.kind = Accumulator::Kind::kAvg;
  } else if (op == "$sum") {
    acc.kind = Accumulator::Kind::kSum;
  } else if (op == "$min") {
    acc.kind = Accumulator::Kind::kMin;
  } else if (op == "$max") {
    acc.kind = Accumulator::Kind::kMax;
  } else if (op == "$count") {
    acc.kind = Accumulator::Kind::kCount;
  } else if (op == "$first") {
    acc.kind = Accumulator::Kind::kFirst;
  } else if (op == "$push") {
    acc.kind = Accumulator::Kind::kPush;
  } else {
    return util::Error{ErrorCode::kInvalidArgument,
                       "unknown accumulator " + op};
  }
  return acc;
}

// ------------------------------------------------------------------ stages

Result<std::vector<Document>> stage_match(std::vector<Document> docs,
                                          const Value& query) {
  Result<Filter> filter = Filter::compile(query);
  if (!filter.ok()) return Result<std::vector<Document>>(filter.error());
  std::vector<Document> out;
  out.reserve(docs.size());
  for (Document& doc : docs) {
    if (filter.value().matches(doc)) out.push_back(std::move(doc));
  }
  return out;
}

Result<std::vector<Document>> stage_group(const std::vector<Document>& docs,
                                          const Value& spec) {
  if (!spec.is_object() || !spec.as_object().contains("_id")) {
    return util::Error{ErrorCode::kInvalidArgument, "$group requires _id"};
  }
  const Value& key_expression = *spec.as_object().find("_id");

  struct Group {
    Value key;
    std::vector<std::pair<std::string, Accumulator>> accumulators;
  };
  // Keyed by canonical serialization for deterministic, sorted output.
  std::map<std::string, Group> groups;

  for (const Document& doc : docs) {
    const Value key = evaluate(key_expression, doc);
    const std::string token = key.dump();
    auto it = groups.find(token);
    if (it == groups.end()) {
      Group fresh;
      fresh.key = key;
      for (const auto& [name, acc_spec] : spec.as_object()) {
        if (name == "_id") continue;
        Result<Accumulator> acc = parse_accumulator(acc_spec);
        if (!acc.ok()) return Result<std::vector<Document>>(acc.error());
        fresh.accumulators.emplace_back(name, std::move(acc).value());
      }
      it = groups.emplace(token, std::move(fresh)).first;
    }
    for (auto& [name, acc] : it->second.accumulators) acc.feed(doc);
  }

  std::vector<Document> out;
  out.reserve(groups.size());
  for (const auto& [token, group] : groups) {
    util::JsonObject doc;
    doc.set("_id", group.key);
    for (const auto& [name, acc] : group.accumulators) {
      doc.set(name, acc.finish());
    }
    out.emplace_back(Value(std::move(doc)));
  }
  return out;
}

Result<std::vector<Document>> stage_sort(std::vector<Document> docs,
                                         const Value& spec) {
  if (!spec.is_object() || spec.as_object().size() != 1) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "$sort takes exactly one {field: 1|-1}"};
  }
  const auto& [field, direction] = *spec.as_object().begin();
  if (!direction.is_int() ||
      (direction.as_int() != 1 && direction.as_int() != -1)) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "$sort direction must be 1 or -1"};
  }
  const bool descending = direction.as_int() == -1;
  const std::string field_name = field;
  std::stable_sort(docs.begin(), docs.end(),
                   [&](const Document& a, const Document& b) {
                     const Value* va = a.get_path(field_name);
                     const Value* vb = b.get_path(field_name);
                     const Value null_value;
                     const int c = compare_values(va ? *va : null_value,
                                                  vb ? *vb : null_value);
                     return descending ? c > 0 : c < 0;
                   });
  return docs;
}

Result<std::vector<Document>> stage_project(const std::vector<Document>& docs,
                                            const Value& spec) {
  if (!spec.is_object()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "$project takes an object"};
  }
  std::vector<Document> out;
  out.reserve(docs.size());
  for (const Document& doc : docs) {
    util::JsonObject projected;
    for (const auto& [name, rule] : spec.as_object()) {
      if (rule.is_int() && rule.as_int() == 1) {
        if (const Value* kept = doc.get_path(name)) projected.set(name, *kept);
      } else if (rule.is_string()) {
        const Value v = evaluate(rule, doc);
        if (!v.is_null()) projected.set(name, v);
      } else {
        return util::Error{ErrorCode::kInvalidArgument,
                           "$project rule must be 1 or a \"$field\""};
      }
    }
    out.emplace_back(Value(std::move(projected)));
  }
  return out;
}

}  // namespace

Result<std::vector<Document>> aggregate_documents(std::vector<Document> docs,
                                                  const Value& pipeline) {
  if (!pipeline.is_array()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "pipeline must be a JSON array of stages"};
  }
  for (const Value& stage : pipeline.as_array()) {
    if (!stage.is_object() || stage.as_object().size() != 1) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "each stage must be a single-operator object"};
    }
    const auto& [op, spec] = *stage.as_object().begin();
    Result<std::vector<Document>> next = [&]() {
      if (op == "$match") return stage_match(std::move(docs), spec);
      if (op == "$group") return stage_group(docs, spec);
      if (op == "$sort") return stage_sort(std::move(docs), spec);
      if (op == "$project") return stage_project(docs, spec);
      if (op == "$limit") {
        if (!spec.is_int() || spec.as_int() < 0) {
          return Result<std::vector<Document>>(util::Error{
              ErrorCode::kInvalidArgument, "$limit takes a non-negative int"});
        }
        if (static_cast<std::size_t>(spec.as_int()) < docs.size()) {
          docs.resize(static_cast<std::size_t>(spec.as_int()));
        }
        return Result<std::vector<Document>>(std::move(docs));
      }
      if (op == "$skip") {
        if (!spec.is_int() || spec.as_int() < 0) {
          return Result<std::vector<Document>>(util::Error{
              ErrorCode::kInvalidArgument, "$skip takes a non-negative int"});
        }
        const auto n = std::min<std::size_t>(
            static_cast<std::size_t>(spec.as_int()), docs.size());
        docs.erase(docs.begin(), docs.begin() + static_cast<std::ptrdiff_t>(n));
        return Result<std::vector<Document>>(std::move(docs));
      }
      return Result<std::vector<Document>>(
          util::Error{ErrorCode::kInvalidArgument, "unknown stage " + op});
    }();
    if (!next.ok()) return next;
    docs = std::move(next).value();
  }
  return docs;
}

Result<std::vector<Document>> aggregate(const Collection& collection,
                                        const Value& pipeline) {
  std::vector<Document> docs;
  docs.reserve(collection.size());
  collection.for_each([&](const Document& doc) { docs.push_back(doc); });
  return aggregate_documents(std::move(docs), pipeline);
}

}  // namespace upin::docdb
