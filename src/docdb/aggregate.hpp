// aggregate.hpp — a MongoDB-style aggregation pipeline.
//
// The selection layer's queries ("average latency per ISD set and hop
// count", Fig 6) are group-by aggregations; a downstream user of a
// Mongo substitute expects them server-side.  Supported stages:
//
//   {"$match":  <filter query>}
//   {"$group":  {"_id": "$field" | null,
//                "<out>": {"$avg"|"$sum"|"$min"|"$max": "$path" | number},
//                "<out>": {"$count": {}},
//                "<out>": {"$first": "$path"},
//                "<out>": {"$push": "$path"}}}
//   {"$sort":   {"field": 1 | -1}}          (single key)
//   {"$skip":   N}
//   {"$limit":  N}
//   {"$project": {"keep": 1, "renamed": "$other.path"}}
//
// Field references are "$dotted.path" strings, as in Mongo.
#pragma once

#include "docdb/collection.hpp"

namespace upin::docdb {

/// Run `pipeline` (a JSON array of stage objects) over a collection.
/// Returns the resulting documents; kInvalidArgument on unknown stages,
/// operators or malformed arguments.
[[nodiscard]] util::Result<std::vector<Document>> aggregate(
    const Collection& collection, const util::Value& pipeline);

/// Same, but over an explicit document vector (used for stage chaining
/// and tests).
[[nodiscard]] util::Result<std::vector<Document>> aggregate_documents(
    std::vector<Document> documents, const util::Value& pipeline);

}  // namespace upin::docdb
