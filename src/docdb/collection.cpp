#include "docdb/collection.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <unordered_set>

#include "docdb/update.hpp"
#include "util/log.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

Collection::Collection(std::string name) : name_(std::move(name)) {}

std::size_t Collection::size() const {
  const std::shared_lock lock(mutex_);
  return id_to_slot_.size();
}

void Collection::emit(MutationEvent& event) {
  if (observer_) observer_(event);
}

void Collection::emit_sync(SyncTicket* ticket) {
  MutationEvent event{MutationEvent::Kind::kSync, name_, {}, {}, ticket};
  emit(event);
}

Status Collection::await_sync(const SyncTicket& ticket) {
  Status flushed = ticket.wait();
  if (!flushed.ok()) {
    util::Log::error("journal sync failed: " + flushed.error().message);
    flushed = Status(ErrorCode::kDataLoss,
                     "journal sync failed: " + flushed.error().message);
  }
  return flushed;
}

std::shared_lock<std::shared_mutex> Collection::gate_lock() const {
  return write_gate_ == nullptr ? std::shared_lock<std::shared_mutex>()
                                : std::shared_lock(*write_gate_);
}

void Collection::set_write_gate(std::shared_mutex* gate) {
  write_gate_ = gate;
}

Result<std::string> Collection::prepare_document(Document& doc) {
  if (!doc.is_object()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "document must be a JSON object"};
  }
  const Value* id_value = doc.get(kIdField);
  std::string id;
  if (id_value == nullptr) {
    id = "doc_" + std::to_string(
                      next_auto_id_.fetch_add(1, std::memory_order_relaxed));
    doc[kIdField] = Value(id);
  } else if (id_value->is_string()) {
    id = id_value->as_string();
  } else {
    return util::Error{ErrorCode::kInvalidArgument, "_id must be a string"};
  }
  return id;
}

void Collection::insert_locked(Document doc, const std::string& id) {
  const std::size_t position = slots_.size();
  slots_.push_back(Slot{std::move(doc), true});
  id_to_slot_.emplace(id, position);
  for (const auto& index : indexes_) {
    index->add(slots_[position].doc, position);
  }
}

Result<std::string> Collection::insert_one(Document doc) {
  Result<std::string> id = prepare_document(doc);
  if (!id.ok()) return id;
  // Encode the journal payload once, before the lock (§4.2.2: the write
  // path must not serialize the survey on storage encoding).
  std::string payload;
  if (journaled()) payload = Journal::encode_insert(name_, id.value(), doc);

  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    if (id_to_slot_.contains(id.value())) {
      return util::Error{ErrorCode::kConflict,
                         "duplicate _id: " + id.value()};
    }
    MutationEvent event{MutationEvent::Kind::kInsert, name_, id.value(),
                        std::move(payload), nullptr};
    insert_locked(std::move(doc), id.value());
    emit(event);
    emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) return Result<std::string>(durable.error());
  return id;
}

Result<std::vector<std::string>> Collection::insert_many(
    std::vector<Document> docs) {
  // Validate the whole batch first (atomicity): ids must be well-formed
  // and unique within the batch — a transient hash set keeps paper-scale
  // batches O(n) instead of the old O(n²) scan.
  std::vector<std::string> ids;
  ids.reserve(docs.size());
  std::unordered_set<std::string_view> batch_ids;
  batch_ids.reserve(docs.size());
  for (Document& doc : docs) {
    Result<std::string> id = prepare_document(doc);
    if (!id.ok()) return Result<std::vector<std::string>>(id.error());
    ids.push_back(std::move(id).value());
    // Views into `ids` stay valid: the vector was reserved to full size.
    if (!batch_ids.insert(ids.back()).second) {
      return util::Error{ErrorCode::kConflict,
                         "duplicate _id within batch: " + ids.back()};
    }
  }

  // One journal encode per document, outside the collection lock.
  std::vector<std::string> payloads;
  if (journaled()) {
    payloads.reserve(docs.size());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      payloads.push_back(Journal::encode_insert(name_, ids[i], docs[i]));
    }
  }

  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    for (const std::string& id : ids) {
      if (id_to_slot_.contains(id)) {
        return util::Error{ErrorCode::kConflict, "duplicate _id: " + id};
      }
    }
    for (std::size_t i = 0; i < docs.size(); ++i) {
      MutationEvent event{
          MutationEvent::Kind::kInsert, name_, ids[i],
          payloads.empty() ? std::string() : std::move(payloads[i]), nullptr};
      emit(event);
      insert_locked(std::move(docs[i]), ids[i]);
    }
    // One durability point for the whole batch (§4.2.2 trade-off).
    if (!docs.empty()) emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) {
    return Result<std::vector<std::string>>(durable.error());
  }
  return ids;
}

Result<Document> Collection::find_by_id(std::string_view id) const {
  const std::shared_lock lock(mutex_);
  const auto it = id_to_slot_.find(std::string(id));
  if (it == id_to_slot_.end()) {
    return util::Error{ErrorCode::kNotFound,
                       "no document with _id " + std::string(id)};
  }
  return slots_[it->second].doc;
}

std::vector<std::size_t> Collection::candidates_locked(
    const Filter& filter) const {
  // Planner: a filter pinning an indexed field by equality scans only the
  // index bucket; everything else scans the collection.
  for (const auto& index : indexes_) {
    if (const Value* pinned = filter.equality_on(index->field())) {
      std::vector<std::size_t> hits = index->lookup(*pinned);
      std::sort(hits.begin(), hits.end());
      hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
      return hits;
    }
  }
  std::vector<std::size_t> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(i);
  return all;
}

std::vector<Document> Collection::find(const Filter& filter,
                                       const FindOptions& options) const {
  const std::shared_lock lock(mutex_);
  std::vector<const Document*> matches;
  for (const std::size_t position : candidates_locked(filter)) {
    const Slot& slot = slots_[position];
    if (slot.alive && filter.matches(slot.doc)) matches.push_back(&slot.doc);
  }

  if (!options.sort_by.empty()) {
    std::stable_sort(matches.begin(), matches.end(),
                     [&](const Document* a, const Document* b) {
                       const Value* va = a->get_path(options.sort_by);
                       const Value* vb = b->get_path(options.sort_by);
                       const Value null_value;
                       const int c = compare_values(va ? *va : null_value,
                                                    vb ? *vb : null_value);
                       return options.descending ? c > 0 : c < 0;
                     });
  }

  std::vector<Document> out;
  const std::size_t begin = std::min(options.skip, matches.size());
  std::size_t end = matches.size();
  if (options.limit.has_value()) {
    end = std::min(end, begin + *options.limit);
  }
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(*matches[i]);
  return out;
}

Result<Document> Collection::find_one(const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  for (const std::size_t position : candidates_locked(filter)) {
    const Slot& slot = slots_[position];
    if (slot.alive && filter.matches(slot.doc)) return slot.doc;
  }
  return util::Error{ErrorCode::kNotFound, "no matching document"};
}

std::size_t Collection::count(const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const std::size_t position : candidates_locked(filter)) {
    const Slot& slot = slots_[position];
    if (slot.alive && filter.matches(slot.doc)) ++total;
  }
  return total;
}

Result<std::size_t> Collection::update_many(const Filter& filter,
                                            const Value& update) {
  SyncTicket ticket;
  std::size_t modified = 0;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    for (const std::size_t position : candidates_locked(filter)) {
      Slot& slot = slots_[position];
      if (!slot.alive || !filter.matches(slot.doc)) continue;

      Document updated = slot.doc;
      const Status status = apply_update(updated, update);
      if (!status.ok()) return Result<std::size_t>(status.error());
      if (updated == slot.doc) continue;

      for (const auto& index : indexes_) index->remove(slot.doc, position);
      slot.doc = std::move(updated);
      for (const auto& index : indexes_) index->add(slot.doc, position);
      ++modified;

      const std::string id(document_id(slot.doc).value_or(""));
      std::string payload;
      if (journaled()) payload = Journal::encode_update(name_, id, slot.doc);
      MutationEvent event{MutationEvent::Kind::kUpdate, name_, id,
                          std::move(payload), nullptr};
      emit(event);
    }
    if (modified > 0) emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) return Result<std::size_t>(durable.error());
  return modified;
}

std::size_t Collection::delete_many(const Filter& filter) {
  SyncTicket ticket;
  std::size_t removed = 0;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    for (const std::size_t position : candidates_locked(filter)) {
      Slot& slot = slots_[position];
      if (!slot.alive || !filter.matches(slot.doc)) continue;
      // Copy the id before clearing the slot: document_id() views into doc.
      const std::string id(document_id(slot.doc).value_or(""));
      for (const auto& index : indexes_) index->remove(slot.doc, position);
      id_to_slot_.erase(id);
      slot.alive = false;
      slot.doc = Document();
      ++removed;
      std::string payload;
      if (journaled()) payload = Journal::encode_delete(name_, id);
      MutationEvent event{MutationEvent::Kind::kDelete, name_, id,
                          std::move(payload), nullptr};
      emit(event);
    }
    if (removed > 0) emit_sync(&ticket);
  }
  // Count-returning API: a sync failure is logged by await_sync but not
  // reported — the deletions are applied in memory either way.
  (void)await_sync(ticket);
  return removed;
}

bool Collection::delete_by_id(std::string_view id) {
  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    const auto it = id_to_slot_.find(std::string(id));
    if (it == id_to_slot_.end()) return false;
    Slot& slot = slots_[it->second];
    for (const auto& index : indexes_) index->remove(slot.doc, it->second);
    slot.alive = false;
    slot.doc = Document();
    id_to_slot_.erase(it);
    std::string payload;
    if (journaled()) payload = Journal::encode_delete(name_, std::string(id));
    MutationEvent event{MutationEvent::Kind::kDelete, name_, std::string(id),
                        std::move(payload), nullptr};
    emit(event);
    emit_sync(&ticket);
  }
  // Bool-returning API: sync failures are logged by await_sync only.
  (void)await_sync(ticket);
  return true;
}

void Collection::create_index(std::string field) {
  const std::unique_lock lock(mutex_);
  for (const auto& index : indexes_) {
    if (index->field() == field) return;
  }
  auto index = std::make_unique<FieldIndex>(std::move(field));
  for (std::size_t position = 0; position < slots_.size(); ++position) {
    if (slots_[position].alive) index->add(slots_[position].doc, position);
  }
  indexes_.push_back(std::move(index));
}

std::vector<std::string> Collection::indexed_fields() const {
  const std::shared_lock lock(mutex_);
  std::vector<std::string> fields;
  fields.reserve(indexes_.size());
  for (const auto& index : indexes_) fields.push_back(index->field());
  return fields;
}

std::vector<Value> Collection::distinct(std::string_view field,
                                        const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  std::vector<Value> values;
  // Membership via an ordered index set over `values` (O(log n) per
  // candidate instead of the old O(n) scan), preserving first-seen order.
  const auto less = [&values](std::size_t a, std::size_t b) {
    return compare_values(values[a], values[b]) < 0;
  };
  std::set<std::size_t, decltype(less)> seen(less);
  const auto add_unique = [&](const Value& candidate) {
    values.push_back(candidate);
    if (!seen.insert(values.size() - 1).second) values.pop_back();
  };
  for (const Slot& slot : slots_) {
    if (!slot.alive || !filter.matches(slot.doc)) continue;
    const Value* field_value = slot.doc.get_path(field);
    if (field_value == nullptr) continue;
    if (field_value->is_array()) {
      for (const Value& element : field_value->as_array()) add_unique(element);
    } else {
      add_unique(*field_value);
    }
  }
  return values;
}

void Collection::for_each(
    const std::function<void(const Document&)>& fn) const {
  const std::shared_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.alive) fn(slot.doc);
  }
}

void Collection::set_observer(
    std::function<void(MutationEvent&)> observer) {
  const std::unique_lock lock(mutex_);
  observer_ = std::move(observer);
  has_observer_.store(static_cast<bool>(observer_),
                      std::memory_order_release);
}

}  // namespace upin::docdb
