#include "docdb/collection.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "docdb/update.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

namespace {

/// Planner instrumentation, resolved once.  The registry has no label
/// support, so the plan-kind label is spelled as a name suffix.
struct QueryMetrics {
  obs::Counter& plans_scan;
  obs::Counter& plans_index_point;
  obs::Counter& plans_index_range;
  obs::Gauge& index_entries;
  obs::LatencyHistogram& planner_latency_us;

  static QueryMetrics& get() {
    static QueryMetrics metrics{
        obs::Registry::global().counter("upin_query_plans_scan_total"),
        obs::Registry::global().counter("upin_query_plans_index_point_total"),
        obs::Registry::global().counter("upin_query_plans_index_range_total"),
        obs::Registry::global().gauge("upin_index_entries"),
        obs::Registry::global().histogram("upin_query_planner_latency_us", 0.0,
                                          500.0, 50)};
    return metrics;
  }
};

bool contains_object(const Value& value) {
  if (value.is_object()) return true;
  if (value.is_array()) {
    for (const Value& element : value.as_array()) {
      if (contains_object(element)) return true;
    }
  }
  return false;
}

/// Whether an $eq/$in operand can be answered through index keys.
/// Equality through the index needs `compare_values() == 0` to coincide
/// with the filter's deep equality, which object operands break (their
/// order-sensitive key serialization vs the order-insensitive ==).
/// Array operands only match whole-array keys, which compound columns
/// don't keep.
bool key_usable(const Value& operand, const OrderedIndex& index) {
  if (contains_object(operand)) return false;
  return !operand.is_array() || index.single_field();
}

struct CandidatePlan {
  QueryPlan plan;
  bool usable = false;
};

/// Build the best plan one index can offer for the filter's extractable
/// bounds: consume equalities into a key prefix left to right, then
/// terminate with either one `$in` fan-out or one range window.
CandidatePlan build_index_plan(
    const OrderedIndex& index,
    const std::vector<std::pair<std::string, std::vector<Filter::Bound>>>&
        bounds,
    std::size_t total_clauses) {
  using Bound = Filter::Bound;
  CandidatePlan out;
  const std::size_t columns = index.fields().size();

  std::vector<Value> prefix;
  const std::vector<Value>* in_list = nullptr;
  const Value* lower = nullptr;
  const Value* upper = nullptr;
  bool lower_inclusive = true;
  bool upper_inclusive = true;
  std::size_t consumed = 0;
  // True when candidates may include documents the consumed clauses
  // reject — the plan then stays residual even if it consumed everything.
  bool dirty = false;

  // Missing-field documents fold onto the null key, which the scan path
  // never matches with eq/range/$in — a constraint admitting null can
  // therefore pick up documents the scan rejects.  Only the first
  // column's folds are tracked, so later columns are conservative.
  const auto null_dirty = [&](std::size_t column) {
    return column > 0 || index.has_missing();
  };

  for (std::size_t column = 0; column < columns; ++column) {
    const std::vector<Bound>* field_bounds = nullptr;
    for (const auto& [field, list] : bounds) {
      if (field == index.fields()[column]) {
        field_bounds = &list;
        break;
      }
    }
    if (field_bounds == nullptr) break;

    // Equality pins this column and extends the prefix.
    const Bound* eq = nullptr;
    for (const Bound& bound : *field_bounds) {
      if (bound.op == Bound::Op::kEq && key_usable(*bound.operand, index)) {
        eq = &bound;
        break;
      }
    }
    if (eq != nullptr) {
      // An array operand never contains-matches (filter semantics), but
      // element-expanded keys would surface such documents.
      if (eq->operand->is_array()) dirty = true;
      if (eq->operand->is_null() && null_dirty(column)) dirty = true;
      prefix.push_back(*eq->operand);
      ++consumed;
      continue;
    }

    // $in fans out into one point range per element; terminal.
    for (const Bound& bound : *field_bounds) {
      if (bound.op != Bound::Op::kIn) continue;
      bool ok = true;
      for (const Value& element : *bound.list) {
        if (!key_usable(element, index)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      in_list = bound.list;
      ++consumed;
      for (const Value& element : *bound.list) {
        if (element.is_array()) dirty = true;
        if (element.is_null() && null_dirty(column)) dirty = true;
      }
      break;
    }
    if (in_list != nullptr) break;

    // Range window on this column; terminal.  Keep the tightest bound
    // per side — the looser clauses are implied, hence consumed too.
    std::size_t lower_clauses = 0;
    std::size_t upper_clauses = 0;
    for (const Bound& bound : *field_bounds) {
      switch (bound.op) {
        case Bound::Op::kGt:
        case Bound::Op::kGte: {
          ++lower_clauses;
          const bool inclusive = bound.op == Bound::Op::kGte;
          const int c =
              lower == nullptr ? 1 : compare_values(*bound.operand, *lower);
          if (c > 0 || (c == 0 && !inclusive)) {
            lower = bound.operand;
            lower_inclusive = inclusive;
          }
          break;
        }
        case Bound::Op::kLt:
        case Bound::Op::kLte: {
          ++upper_clauses;
          const bool inclusive = bound.op == Bound::Op::kLte;
          const int c =
              upper == nullptr ? -1 : compare_values(*bound.operand, *upper);
          if (c < 0 || (c == 0 && !inclusive)) {
            upper = bound.operand;
            upper_inclusive = inclusive;
          }
          break;
        }
        default: break;
      }
    }
    if (lower == nullptr && upper == nullptr) break;
    if (index.multikey()) {
      // Whole-array keys sort by type order, so an array with no element
      // inside the window can still land in it (e.g. [1,2] > 9).  The
      // residual predicate restores any-element semantics.
      dirty = true;
    }
    if (index.multikey() && lower != nullptr && upper != nullptr) {
      // Any-element semantics: one element may satisfy the lower bound
      // and a *different* one the upper ([-5, 100] matches $gt:0,$lt:10),
      // so intersecting the bounds loses matches.  Keep the lower only.
      upper = nullptr;
      upper_clauses = 0;
    }
    if (lower != nullptr) consumed += lower_clauses;
    if (upper != nullptr) consumed += upper_clauses;
    if ((lower == nullptr || (lower->is_null() && lower_inclusive)) &&
        null_dirty(column)) {
      dirty = true;
    }
    break;
  }

  if (consumed == 0) return out;
  out.usable = true;

  QueryPlan& plan = out.plan;
  plan.index = &index;
  plan.consumed_clauses = consumed;
  plan.total_clauses = total_clauses;
  plan.residual = consumed < total_clauses || dirty;

  if (in_list != nullptr) {
    // One point range per distinct element, ascending — the order a
    // covering sort streams in; deduped so no document repeats.
    std::vector<const Value*> elements;
    elements.reserve(in_list->size());
    for (const Value& element : *in_list) elements.push_back(&element);
    std::sort(elements.begin(), elements.end(),
              [](const Value* a, const Value* b) {
                return compare_values(*a, *b) < 0;
              });
    elements.erase(std::unique(elements.begin(), elements.end(),
                               [](const Value* a, const Value* b) {
                                 return compare_values(*a, *b) == 0;
                               }),
                   elements.end());
    plan.ranges.reserve(elements.size());
    for (const Value* element : elements) {
      OrderedIndex::Range range;
      range.prefix = prefix;
      range.prefix.push_back(*element);
      plan.ranges.push_back(std::move(range));
    }
  } else {
    OrderedIndex::Range range;
    range.prefix = std::move(prefix);
    range.lower = lower;
    range.lower_inclusive = lower_inclusive;
    range.upper = upper;
    range.upper_inclusive = upper_inclusive;
    plan.ranges.push_back(std::move(range));
  }

  bool all_points = true;
  for (const OrderedIndex::Range& range : plan.ranges) {
    if (!range.is_point(columns)) {
      all_points = false;
      break;
    }
  }
  plan.kind = all_points ? QueryPlan::Kind::kIndexPoint
                         : QueryPlan::Kind::kIndexRange;

  // Selectivity estimate: entries/distinct per fully-pinned key; partial
  // prefixes assume evenly split key populations and windows a fixed
  // fraction — crude, but it only has to rank plans.
  const double entries = static_cast<double>(index.entry_count());
  const double distinct =
      static_cast<double>(std::max<std::size_t>(1, index.distinct_keys()));
  const std::size_t pinned =
      plan.ranges.empty() ? columns : plan.ranges.front().prefix.size();
  double per_range;
  if (pinned >= columns) {
    per_range = entries / distinct;
  } else {
    double fraction = 1.0;
    if (pinned > 0) {
      fraction /= std::pow(distinct, static_cast<double>(pinned) /
                                         static_cast<double>(columns));
    }
    if (lower != nullptr && upper != nullptr) {
      fraction /= 3.0;
    } else if (lower != nullptr || upper != nullptr) {
      fraction /= 2.0;
    }
    per_range = entries * fraction;
  }
  plan.estimated_candidates =
      per_range * static_cast<double>(plan.ranges.size());
  return out;
}

}  // namespace

Collection::Collection(std::string name) : name_(std::move(name)) {}

Collection::~Collection() {
  // Keep the process-wide gauge honest when a database (reopen, test,
  // bench) tears down: back out this collection's live index entries.
  std::int64_t entries = 0;
  for (const auto& index : indexes_) {
    entries += static_cast<std::int64_t>(index->entry_count());
  }
  if (entries != 0) QueryMetrics::get().index_entries.add(-entries);
}

std::size_t Collection::size() const {
  const std::shared_lock lock(mutex_);
  return id_to_slot_.size();
}

void Collection::emit(MutationEvent& event) {
  if (observer_) observer_(event);
}

void Collection::emit_sync(SyncTicket* ticket) {
  MutationEvent event{MutationEvent::Kind::kSync, name_, {}, {}, ticket};
  emit(event);
}

Status Collection::await_sync(const SyncTicket& ticket) {
  Status flushed = ticket.wait();
  if (!flushed.ok()) {
    util::Log::error("journal sync failed: " + flushed.error().message);
    flushed = Status(ErrorCode::kDataLoss,
                     "journal sync failed: " + flushed.error().message);
  }
  return flushed;
}

std::shared_lock<std::shared_mutex> Collection::gate_lock() const {
  return write_gate_ == nullptr ? std::shared_lock<std::shared_mutex>()
                                : std::shared_lock(*write_gate_);
}

void Collection::set_write_gate(std::shared_mutex* gate) {
  write_gate_ = gate;
}

void Collection::index_add_locked(OrderedIndex& index, const Document& doc,
                                  std::size_t position) {
  const std::size_t before = index.entry_count();
  index.add(doc, position);
  QueryMetrics::get().index_entries.add(
      static_cast<std::int64_t>(index.entry_count()) -
      static_cast<std::int64_t>(before));
}

void Collection::index_remove_locked(OrderedIndex& index, const Document& doc,
                                     std::size_t position) {
  const std::size_t before = index.entry_count();
  index.remove(doc, position);
  QueryMetrics::get().index_entries.add(
      static_cast<std::int64_t>(index.entry_count()) -
      static_cast<std::int64_t>(before));
}

Result<std::string> Collection::prepare_document(Document& doc) {
  if (!doc.is_object()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "document must be a JSON object"};
  }
  const Value* id_value = doc.get(kIdField);
  std::string id;
  if (id_value == nullptr) {
    id = "doc_" + std::to_string(
                      next_auto_id_.fetch_add(1, std::memory_order_relaxed));
    doc[kIdField] = Value(id);
  } else if (id_value->is_string()) {
    id = id_value->as_string();
  } else {
    return util::Error{ErrorCode::kInvalidArgument, "_id must be a string"};
  }
  return id;
}

void Collection::insert_locked(Document doc, const std::string& id) {
  const std::size_t position = slots_.size();
  slots_.push_back(Slot{std::move(doc), true});
  id_to_slot_.emplace(id, position);
  for (const auto& index : indexes_) {
    index_add_locked(*index, slots_[position].doc, position);
  }
}

Result<std::string> Collection::insert_one(Document doc) {
  Result<std::string> id = prepare_document(doc);
  if (!id.ok()) return id;
  // Encode the journal payload once, before the lock (§4.2.2: the write
  // path must not serialize the survey on storage encoding).
  std::string payload;
  if (journaled()) payload = Journal::encode_insert(name_, id.value(), doc);

  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    if (id_to_slot_.contains(id.value())) {
      return util::Error{ErrorCode::kConflict,
                         "duplicate _id: " + id.value()};
    }
    MutationEvent event{MutationEvent::Kind::kInsert, name_, id.value(),
                        std::move(payload), nullptr};
    insert_locked(std::move(doc), id.value());
    emit(event);
    emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) return Result<std::string>(durable.error());
  return id;
}

Result<std::vector<std::string>> Collection::insert_many(
    std::vector<Document> docs) {
  // Validate the whole batch first (atomicity): ids must be well-formed
  // and unique within the batch — a transient hash set keeps paper-scale
  // batches O(n) instead of the old O(n²) scan.
  std::vector<std::string> ids;
  ids.reserve(docs.size());
  std::unordered_set<std::string_view> batch_ids;
  batch_ids.reserve(docs.size());
  for (Document& doc : docs) {
    Result<std::string> id = prepare_document(doc);
    if (!id.ok()) return Result<std::vector<std::string>>(id.error());
    ids.push_back(std::move(id).value());
    // Views into `ids` stay valid: the vector was reserved to full size.
    if (!batch_ids.insert(ids.back()).second) {
      return util::Error{ErrorCode::kConflict,
                         "duplicate _id within batch: " + ids.back()};
    }
  }

  // One journal encode per document, outside the collection lock.
  std::vector<std::string> payloads;
  if (journaled()) {
    payloads.reserve(docs.size());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      payloads.push_back(Journal::encode_insert(name_, ids[i], docs[i]));
    }
  }

  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    for (const std::string& id : ids) {
      if (id_to_slot_.contains(id)) {
        return util::Error{ErrorCode::kConflict, "duplicate _id: " + id};
      }
    }
    for (std::size_t i = 0; i < docs.size(); ++i) {
      MutationEvent event{
          MutationEvent::Kind::kInsert, name_, ids[i],
          payloads.empty() ? std::string() : std::move(payloads[i]), nullptr};
      emit(event);
      insert_locked(std::move(docs[i]), ids[i]);
    }
    // One durability point for the whole batch (§4.2.2 trade-off).
    if (!docs.empty()) emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) {
    return Result<std::vector<std::string>>(durable.error());
  }
  return ids;
}

Result<Document> Collection::find_by_id(std::string_view id) const {
  const std::shared_lock lock(mutex_);
  const auto it = id_to_slot_.find(std::string(id));
  if (it == id_to_slot_.end()) {
    return util::Error{ErrorCode::kNotFound,
                       "no document with _id " + std::string(id)};
  }
  return slots_[it->second].doc;
}

QueryPlan Collection::plan_locked(const Filter& filter,
                                  const FindOptions* options) const {
  const auto start = std::chrono::steady_clock::now();
  QueryMetrics& metrics = QueryMetrics::get();

  QueryPlan plan;  // collection scan until an index beats it
  plan.total_clauses = filter.clause_count();
  plan.residual = plan.total_clauses > 0;
  plan.estimated_candidates = static_cast<double>(id_to_slot_.size());

  const bool force_scan = options != nullptr && options->force_scan;
  if (!force_scan && !indexes_.empty() && plan.total_clauses > 0) {
    const auto bounds = filter.extractable_bounds();
    if (!bounds.empty()) {
      double best_cost = plan.estimated_candidates;
      for (const auto& index : indexes_) {
        CandidatePlan candidate =
            build_index_plan(*index, bounds, plan.total_clauses);
        if (!candidate.usable) continue;
        if (candidate.plan.estimated_candidates < best_cost ||
            (candidate.plan.estimated_candidates == best_cost &&
             candidate.plan.consumed_clauses > plan.consumed_clauses)) {
          best_cost = candidate.plan.estimated_candidates;
          plan = std::move(candidate.plan);
        }
      }
    }
  }

  // Sort covering: a single-field, non-multikey index on the sort key can
  // stream results in index order (ranges ascend and are disjoint),
  // skipping the sort entirely.
  if (options != nullptr && !options->sort_by.empty()) {
    const auto sorts = [&](const OrderedIndex& index) {
      return index.single_field() && !index.multikey() &&
             index.fields().front() == options->sort_by;
    };
    if (plan.kind != QueryPlan::Kind::kScan && sorts(*plan.index)) {
      plan.covers_sort = true;
    } else if (plan.kind == QueryPlan::Kind::kScan && !force_scan &&
               options->limit.has_value()) {
      // No index consumed the filter, but a bounded sort can still
      // stream off a full index sweep and stop after skip+limit matches.
      for (const auto& index : indexes_) {
        if (!sorts(*index)) continue;
        plan.kind = QueryPlan::Kind::kIndexRange;
        plan.index = index.get();
        plan.ranges.assign(1, OrderedIndex::Range{});
        plan.covers_sort = true;
        break;
      }
    }
  }

  switch (plan.kind) {
    case QueryPlan::Kind::kScan: metrics.plans_scan.add(); break;
    case QueryPlan::Kind::kIndexPoint: metrics.plans_index_point.add(); break;
    case QueryPlan::Kind::kIndexRange: metrics.plans_index_range.add(); break;
  }
  metrics.planner_latency_us.observe(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count());
  return plan;
}

std::vector<std::size_t> Collection::plan_candidates_locked(
    const QueryPlan& plan) const {
  std::vector<std::size_t> out;
  if (plan.kind == QueryPlan::Kind::kScan || plan.index == nullptr) {
    out.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) out.push_back(i);
    return out;
  }
  for (const OrderedIndex::Range& range : plan.ranges) {
    plan.index->collect(range, out);
  }
  // Ascending slot order = insertion order, the same order a scan visits.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Document> Collection::find(const Filter& filter,
                                       const FindOptions& options) const {
  const std::shared_lock lock(mutex_);
  const QueryPlan plan = plan_locked(filter, &options);

  std::vector<Document> out;
  std::size_t to_skip = options.skip;
  const auto emit_doc = [&](const Document& doc) {
    if (options.limit.has_value() && out.size() >= *options.limit) return false;
    if (to_skip > 0) {
      --to_skip;
      return true;
    }
    out.push_back(doc);
    return !options.limit.has_value() || out.size() < *options.limit;
  };

  if (plan.covers_sort) {
    // Stream straight off index order.  Positions within one key ascend
    // (insertion order) — exactly what the scan path's stable sort
    // produces for ties — and the residual filter runs per candidate.
    bool more = true;
    const auto visit = [&](const IndexKey&,
                           const std::vector<std::size_t>& positions) {
      for (const std::size_t position : positions) {
        const Slot& slot = slots_[position];
        if (!slot.alive || !filter.matches(slot.doc)) continue;
        if (!emit_doc(slot.doc)) {
          more = false;
          return false;
        }
      }
      return true;
    };
    if (options.descending) {
      for (auto it = plan.ranges.rbegin(); more && it != plan.ranges.rend();
           ++it) {
        plan.index->scan(*it, true, visit);
      }
    } else {
      for (auto it = plan.ranges.begin(); more && it != plan.ranges.end();
           ++it) {
        plan.index->scan(*it, false, visit);
      }
    }
    return out;
  }

  const std::vector<std::size_t> candidates = plan_candidates_locked(plan);

  if (options.sort_by.empty()) {
    // Insertion order: stream with skip/limit, stopping at the cap.
    for (const std::size_t position : candidates) {
      const Slot& slot = slots_[position];
      if (!slot.alive || !filter.matches(slot.doc)) continue;
      if (!emit_doc(slot.doc)) break;
    }
    return out;
  }

  // Sorted without index cover: order (sort key, position) pairs.  The
  // position tie-break reproduces the stable sort's insertion order
  // exactly, which lets a limited query use bounded top-k selection
  // instead of sorting every match.
  static const Value kNullValue;
  std::vector<std::pair<const Value*, std::size_t>> keyed;
  for (const std::size_t position : candidates) {
    const Slot& slot = slots_[position];
    if (!slot.alive || !filter.matches(slot.doc)) continue;
    const Value* key = slot.doc.get_path(options.sort_by);
    keyed.emplace_back(key != nullptr ? key : &kNullValue, position);
  }
  const auto before = [&](const std::pair<const Value*, std::size_t>& a,
                          const std::pair<const Value*, std::size_t>& b) {
    const int c = compare_values(*a.first, *b.first);
    if (c != 0) return options.descending ? c > 0 : c < 0;
    return a.second < b.second;
  };
  std::size_t keep = keyed.size();
  if (options.limit.has_value()) {
    keep = options.skip + *options.limit;
    if (keep < options.skip || keep > keyed.size()) keep = keyed.size();
  }
  if (keep < keyed.size()) {
    std::partial_sort(keyed.begin(),
                      keyed.begin() + static_cast<std::ptrdiff_t>(keep),
                      keyed.end(), before);
    keyed.resize(keep);
  } else {
    std::sort(keyed.begin(), keyed.end(), before);
  }
  const std::size_t begin = std::min(options.skip, keyed.size());
  out.reserve(keyed.size() - begin);
  for (std::size_t i = begin; i < keyed.size(); ++i) {
    out.push_back(slots_[keyed[i].second].doc);
  }
  return out;
}

Result<Document> Collection::find_one(const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  const QueryPlan plan = plan_locked(filter, nullptr);
  for (const std::size_t position : plan_candidates_locked(plan)) {
    const Slot& slot = slots_[position];
    if (slot.alive && filter.matches(slot.doc)) return slot.doc;
  }
  return util::Error{ErrorCode::kNotFound, "no matching document"};
}

std::size_t Collection::count(const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  const QueryPlan plan = plan_locked(filter, nullptr);
  if (!plan.residual) {
    // Covered: every candidate provably matches — answer from posting
    // sizes without touching a document.
    if (plan.kind == QueryPlan::Kind::kScan) return id_to_slot_.size();
    if (plan.ranges.size() == 1 || !plan.index->multikey()) {
      std::size_t total = 0;
      for (const OrderedIndex::Range& range : plan.ranges) {
        total += plan.index->count_in_range(range);
      }
      return total;
    }
    // Multikey with several ranges: one document can land in more than
    // one — dedup positions across the whole set.
    std::vector<std::size_t> positions;
    for (const OrderedIndex::Range& range : plan.ranges) {
      plan.index->collect(range, positions);
    }
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    return positions.size();
  }
  std::size_t total = 0;
  for (const std::size_t position : plan_candidates_locked(plan)) {
    const Slot& slot = slots_[position];
    if (slot.alive && filter.matches(slot.doc)) ++total;
  }
  return total;
}

util::Value Collection::explain(const Filter& filter,
                                const FindOptions& options) const {
  const std::shared_lock lock(mutex_);
  const QueryPlan plan = plan_locked(filter, &options);
  const char* kind = plan.kind == QueryPlan::Kind::kScan ? "scan"
                     : plan.kind == QueryPlan::Kind::kIndexPoint
                         ? "index_point"
                         : "index_range";
  util::JsonObject clauses;
  clauses.set("total", Value(static_cast<std::int64_t>(plan.total_clauses)));
  clauses.set("consumed",
              Value(static_cast<std::int64_t>(plan.consumed_clauses)));
  util::JsonObject doc;
  doc.set("plan", Value(std::string(kind)));
  doc.set("index", plan.index == nullptr ? Value() : Value(plan.index->spec()));
  doc.set("ranges", Value(static_cast<std::int64_t>(plan.ranges.size())));
  doc.set("residual", Value(plan.residual));
  doc.set("covers_sort", Value(plan.covers_sort));
  doc.set("clauses", Value(std::move(clauses)));
  doc.set("estimated_candidates", Value(plan.estimated_candidates));
  doc.set("collection_size",
          Value(static_cast<std::int64_t>(id_to_slot_.size())));
  return Value(std::move(doc));
}

Result<std::size_t> Collection::update_many(const Filter& filter,
                                            const Value& update) {
  SyncTicket ticket;
  std::size_t modified = 0;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    const QueryPlan plan = plan_locked(filter, nullptr);
    for (const std::size_t position : plan_candidates_locked(plan)) {
      Slot& slot = slots_[position];
      if (!slot.alive || !filter.matches(slot.doc)) continue;

      Document updated = slot.doc;
      const Status status = apply_update(updated, update);
      if (!status.ok()) return Result<std::size_t>(status.error());
      if (updated == slot.doc) continue;

      for (const auto& index : indexes_) {
        index_remove_locked(*index, slot.doc, position);
      }
      slot.doc = std::move(updated);
      for (const auto& index : indexes_) {
        index_add_locked(*index, slot.doc, position);
      }
      ++modified;

      const std::string id(document_id(slot.doc).value_or(""));
      std::string payload;
      if (journaled()) payload = Journal::encode_update(name_, id, slot.doc);
      MutationEvent event{MutationEvent::Kind::kUpdate, name_, id,
                          std::move(payload), nullptr};
      emit(event);
    }
    if (modified > 0) emit_sync(&ticket);
  }
  const Status durable = await_sync(ticket);
  if (!durable.ok()) return Result<std::size_t>(durable.error());
  return modified;
}

std::size_t Collection::delete_many(const Filter& filter) {
  SyncTicket ticket;
  std::size_t removed = 0;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    const QueryPlan plan = plan_locked(filter, nullptr);
    for (const std::size_t position : plan_candidates_locked(plan)) {
      Slot& slot = slots_[position];
      if (!slot.alive || !filter.matches(slot.doc)) continue;
      // Copy the id before clearing the slot: document_id() views into doc.
      const std::string id(document_id(slot.doc).value_or(""));
      for (const auto& index : indexes_) {
        index_remove_locked(*index, slot.doc, position);
      }
      id_to_slot_.erase(id);
      slot.alive = false;
      slot.doc = Document();
      ++removed;
      std::string payload;
      if (journaled()) payload = Journal::encode_delete(name_, id);
      MutationEvent event{MutationEvent::Kind::kDelete, name_, id,
                          std::move(payload), nullptr};
      emit(event);
    }
    if (removed > 0) emit_sync(&ticket);
  }
  // Count-returning API: a sync failure is logged by await_sync but not
  // reported — the deletions are applied in memory either way.
  (void)await_sync(ticket);
  return removed;
}

bool Collection::delete_by_id(std::string_view id) {
  SyncTicket ticket;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    const auto it = id_to_slot_.find(std::string(id));
    if (it == id_to_slot_.end()) return false;
    Slot& slot = slots_[it->second];
    for (const auto& index : indexes_) {
      index_remove_locked(*index, slot.doc, it->second);
    }
    slot.alive = false;
    slot.doc = Document();
    id_to_slot_.erase(it);
    std::string payload;
    if (journaled()) payload = Journal::encode_delete(name_, std::string(id));
    MutationEvent event{MutationEvent::Kind::kDelete, name_, std::string(id),
                        std::move(payload), nullptr};
    emit(event);
    emit_sync(&ticket);
  }
  // Bool-returning API: sync failures are logged by await_sync only.
  (void)await_sync(ticket);
  return true;
}

void Collection::create_index(std::string spec) {
  create_index(split_index_spec(spec));
}

void Collection::create_index(std::vector<std::string> fields) {
  if (fields.empty()) return;
  auto index = std::make_unique<OrderedIndex>(std::move(fields));
  // Persist the declaration as a journal meta-record so it survives
  // reopen even before the first compact() snapshot.  Encoded outside
  // the lock like every other payload (wasted only when idempotent).
  std::string payload;
  if (journaled()) payload = Journal::encode_create_index(name_, index->spec());

  SyncTicket ticket;
  bool created = false;
  {
    const std::shared_lock gate = gate_lock();
    const std::unique_lock lock(mutex_);
    for (const auto& existing : indexes_) {
      if (existing->spec() == index->spec()) return;
    }
    for (std::size_t position = 0; position < slots_.size(); ++position) {
      if (slots_[position].alive) {
        index_add_locked(*index, slots_[position].doc, position);
      }
    }
    MutationEvent event{MutationEvent::Kind::kCreateIndex, name_, {},
                        std::move(payload), nullptr};
    indexes_.push_back(std::move(index));
    emit(event);
    emit_sync(&ticket);
    created = true;
  }
  // Void-returning API: a sync failure is logged by await_sync only.
  if (created) (void)await_sync(ticket);
}

std::vector<std::string> Collection::indexed_fields() const {
  const std::shared_lock lock(mutex_);
  std::vector<std::string> specs;
  specs.reserve(indexes_.size());
  for (const auto& index : indexes_) specs.push_back(index->spec());
  return specs;
}

std::vector<Value> Collection::distinct(std::string_view field,
                                        const Filter& filter) const {
  const std::shared_lock lock(mutex_);
  const OrderedIndex* field_index = nullptr;
  for (const auto& index : indexes_) {
    if (index->single_field() && index->fields().front() == field) {
      field_index = index.get();
      break;
    }
  }
  // Fully covered: no filter at all — the index's key set IS the answer
  // (multikey included: the full range holds every element).
  if (field_index != nullptr && filter.is_match_all()) {
    return field_index->distinct_values(OrderedIndex::Range{});
  }
  const QueryPlan plan = plan_locked(filter, nullptr);
  if (field_index != nullptr && plan.index == field_index && !plan.residual &&
      !field_index->multikey()) {
    // Residual-free plan over the same single-field index: the in-range
    // keys are exactly the matched documents' values.  Ranges ascend and
    // are disjoint, so concatenation stays sorted and unique.
    std::vector<Value> values;
    for (const OrderedIndex::Range& range : plan.ranges) {
      std::vector<Value> part = field_index->distinct_values(range);
      values.insert(values.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    return values;
  }
  // Scan path (planner candidates still prune), then sort and dedup
  // under compare_values so both paths return the same ascending order.
  std::vector<Value> values;
  for (const std::size_t position : plan_candidates_locked(plan)) {
    const Slot& slot = slots_[position];
    if (!slot.alive || !filter.matches(slot.doc)) continue;
    const Value* field_value = slot.doc.get_path(field);
    if (field_value == nullptr) continue;
    if (field_value->is_array()) {
      for (const Value& element : field_value->as_array()) {
        values.push_back(element);
      }
    } else {
      values.push_back(*field_value);
    }
  }
  std::sort(values.begin(), values.end(), [](const Value& a, const Value& b) {
    return compare_values(a, b) < 0;
  });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const Value& a, const Value& b) {
                             return compare_values(a, b) == 0;
                           }),
               values.end());
  return values;
}

void Collection::for_each(
    const std::function<void(const Document&)>& fn) const {
  const std::shared_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.alive) fn(slot.doc);
  }
}

void Collection::set_observer(
    std::function<void(MutationEvent&)> observer) {
  const std::unique_lock lock(mutex_);
  observer_ = std::move(observer);
  has_observer_.store(static_cast<bool>(observer_),
                      std::memory_order_release);
}

}  // namespace upin::docdb
