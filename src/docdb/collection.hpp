// collection.hpp — a named set of documents (Mongo "collection").
//
// Implements the store behind the paper's three collections
// (availableServers, paths, paths_stats — Fig 3).  Batched insertion
// (`insert_many`) is atomic: the paper's fault-tolerance design (§4.2.2)
// batches one destination's statistics per write so a crash loses at most
// one balanced sample per path.
//
// Durability rides on mutation events: each mutation hands the observer a
// journal payload that was encoded exactly once — for inserts, *before*
// the collection lock is taken — and every mutating call ends with a
// kSync event whose durability ticket is awaited *after* the lock is
// released, so concurrent writers overlap their in-memory work with the
// journal writer's group commit.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "docdb/document.hpp"
#include "docdb/filter.hpp"
#include "docdb/index.hpp"
#include "docdb/journal.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// Options for find().
struct FindOptions {
  std::string sort_by;               ///< dotted path; empty = insertion order
  bool descending = false;           ///< sort direction
  std::size_t skip = 0;              ///< drop this many leading results
  std::optional<std::size_t> limit;  ///< cap on returned documents
  /// Debug knob: bypass the planner and scan the collection.  Used by the
  /// property tests to prove planned and scanned execution agree.
  bool force_scan = false;
};

/// The execution strategy the planner chose for one query.  Surfaced as
/// JSON by Collection::explain(); internal pointers reference the
/// collection's indexes and the filter's operands, so a plan is only
/// valid for the duration of the query that built it.
struct QueryPlan {
  enum class Kind { kScan, kIndexPoint, kIndexRange };
  Kind kind = Kind::kScan;
  const OrderedIndex* index = nullptr;       ///< null for kScan
  std::vector<OrderedIndex::Range> ranges;   ///< one per $in element
  bool residual = true;     ///< re-check the full filter per candidate
  bool covers_sort = false; ///< index order answers sort_by directly
  std::size_t consumed_clauses = 0;
  std::size_t total_clauses = 0;
  double estimated_candidates = 0.0;
};

/// A mutation event, surfaced to the owning Database for journaling.
/// kSync marks a durability point: it follows every single mutation and
/// every *batch* (so a batched insert costs one flush, not N — the I/O
/// trade-off of paper §4.2.2, measured in bench/ablation_storage).
struct MutationEvent {
  enum class Kind { kInsert, kUpdate, kDelete, kCreateIndex, kSync };
  Kind kind;
  std::string collection;
  std::string id;     ///< document id (insert/update/delete); empty for sync
  /// Pre-encoded journal record payload (insert/update/delete) — encoded
  /// exactly once by the mutating thread; the observer may move it out.
  /// Empty when no observer is installed, and for kSync.
  std::string payload;
  /// kSync only: the observer stamps a durability ticket here; the
  /// mutating call waits on it after releasing the collection lock.
  SyncTicket* ticket = nullptr;
};

/// Thread-safe document collection with optional secondary indexes.
class Collection {
 public:
  explicit Collection(std::string name);
  ~Collection();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Number of live documents.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Insert one document.  A missing `_id` is assigned ("doc_<n>");
  /// a duplicate `_id` is a kConflict.  Returns the document's id.
  /// On a journaled collection a failed durability sync is reported as
  /// kDataLoss: the document is in memory but may not be on disk.
  util::Result<std::string> insert_one(Document doc);

  /// Atomic batch insert: either every document is inserted or none
  /// (first conflicting/invalid id reported).  Returns the ids in order.
  /// Durability-sync failures surface as kDataLoss, as for insert_one.
  util::Result<std::vector<std::string>> insert_many(std::vector<Document> docs);

  /// Fetch by id.
  [[nodiscard]] util::Result<Document> find_by_id(std::string_view id) const;

  /// All documents matching `filter`, honoring `options`.  The planner
  /// turns extractable `$eq`/`$in`/range bounds into an ordered-index
  /// range scan (residual predicate applied per candidate); results come
  /// back in insertion order — identical to a scan — unless sorted, and
  /// `sort_by` on a single-field index streams straight off index order.
  [[nodiscard]] std::vector<Document> find(const Filter& filter,
                                           const FindOptions& options = {}) const;

  /// First match in insertion order, or kNotFound.
  [[nodiscard]] util::Result<Document> find_one(const Filter& filter) const;

  /// Matching-document count.  Residual-free index plans are *covered*:
  /// answered from posting sizes without touching documents.
  [[nodiscard]] std::size_t count(const Filter& filter) const;
  [[nodiscard]] std::size_t count_all() const { return size(); }

  /// The plan the planner would choose for this query, as a JSON debug
  /// document: {"plan", "index", "ranges", "residual", "covers_sort",
  /// "clauses": {"total", "consumed"}, "estimated_candidates",
  /// "collection_size"}.
  [[nodiscard]] util::Value explain(const Filter& filter,
                                    const FindOptions& options = {}) const;

  /// Apply a Mongo-style update document to every match; returns the
  /// number of documents modified.
  util::Result<std::size_t> update_many(const Filter& filter,
                                        const util::Value& update);

  /// Delete every match; returns how many were removed.
  std::size_t delete_many(const Filter& filter);
  /// Delete one document by id.
  bool delete_by_id(std::string_view id);

  /// Create (and backfill) an ordered index on a dotted field, or a
  /// compound one via a comma-separated spec ("path_id,timestamp_ms").
  /// Idempotent.  On a journaled collection the declaration is persisted
  /// as a meta-record so it survives reopen.
  void create_index(std::string spec);
  void create_index(std::vector<std::string> fields);
  /// Declarations of every index, in creation order (compound specs are
  /// comma-joined) — the form journal snapshots persist.
  [[nodiscard]] std::vector<std::string> indexed_fields() const;

  /// Distinct values of `field` among documents matching `filter`, in
  /// ascending `compare_values` order.  Covered by a single-field index
  /// on `field` when one exists and the plan is residual-free.
  [[nodiscard]] std::vector<util::Value> distinct(std::string_view field,
                                                  const Filter& filter) const;

  /// Visit every live document (read lock held during the walk).
  void for_each(const std::function<void(const Document&)>& fn) const;

  /// Observer invoked after each committed mutation (Database journaling).
  /// The observer may consume (move from) the event's payload and is
  /// expected to stamp kSync tickets.  Install it before concurrent use.
  void set_observer(std::function<void(MutationEvent&)> observer);

  /// Install the owning database's write gate.  Every mutating call
  /// holds it shared for the mutate+emit window; Database::compact()
  /// holds it exclusive, so a snapshot is always a superset of every
  /// frame the journal writer could still commit to the pre-compact
  /// file.  Install it before concurrent use.
  void set_write_gate(std::shared_mutex* gate);

 private:
  struct Slot {
    Document doc;
    bool alive = false;
  };

  /// Validate shape and settle the `_id` (auto-assigned off an atomic
  /// counter, so no lock is needed).  Store-conflict checks happen later,
  /// under the lock.
  util::Result<std::string> prepare_document(Document& doc);

  // All methods below require mutex_ held by the caller.
  void insert_locked(Document doc, const std::string& id);
  /// Choose the cheapest execution plan for `filter` (and, when given,
  /// `options`' sort/force_scan).  Instruments the planner metrics.
  [[nodiscard]] QueryPlan plan_locked(const Filter& filter,
                                      const FindOptions* options) const;
  /// Candidate slot positions for a plan, ascending (= insertion order),
  /// deduplicated.  kScan yields every slot.
  [[nodiscard]] std::vector<std::size_t> plan_candidates_locked(
      const QueryPlan& plan) const;
  /// Index add/remove wrappers that keep the upin_index_entries gauge
  /// in step with the index's entry count.
  void index_add_locked(OrderedIndex& index, const Document& doc,
                        std::size_t position);
  void index_remove_locked(OrderedIndex& index, const Document& doc,
                           std::size_t position);
  void emit(MutationEvent& event);
  /// Emit the kSync durability point, stamping `ticket`.
  void emit_sync(SyncTicket* ticket);
  /// Await a stamped ticket (call *without* mutex_ or the write gate
  /// held).  A failure means the mutation is in memory but its journal
  /// frame may not be durable.
  [[nodiscard]] static util::Status await_sync(const SyncTicket& ticket);
  /// Shared hold on the database write gate (no-op when none installed).
  /// Acquire *before* mutex_ — same order as Database::compact().
  [[nodiscard]] std::shared_lock<std::shared_mutex> gate_lock() const;

  [[nodiscard]] bool journaled() const {
    return has_observer_.load(std::memory_order_acquire);
  }

  std::string name_;
  mutable std::shared_mutex mutex_;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, std::size_t> id_to_slot_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  std::atomic<std::uint64_t> next_auto_id_{1};
  std::atomic<bool> has_observer_{false};
  std::function<void(MutationEvent&)> observer_;
  std::shared_mutex* write_gate_ = nullptr;  ///< owned by the Database
};

}  // namespace upin::docdb
