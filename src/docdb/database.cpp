#include "docdb/database.hpp"

#include "util/log.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<Database>> Database::open(const std::string& path) {
  return open(path, DatabaseOptions{});
}

Result<std::unique_ptr<Database>> Database::open(const std::string& path,
                                                 const DatabaseOptions& options) {
  auto db = std::make_unique<Database>();
  db->journal_ = std::make_unique<Journal>();
  Vfs& fs = options.vfs == nullptr ? Vfs::real() : *options.vfs;

  // Replay first (journal not yet open for append, observers suppressed).
  db->replaying_ = true;
  ReplayReport report;
  ReplayOptions replay_options;
  replay_options.salvage = options.salvage_mode;
  if (options.salvage_mode) replay_options.quarantine_path = path + ".quarantine";
  const Status replayed = Journal::replay(path, [&](const JournalRecord& record) -> Status {
    Collection& coll = db->collection(record.collection);
    if (record.op == "create_collection") {
      return Status::success();
    }
    if (record.op == "create_index") {
      coll.create_index(record.field);
      return Status::success();
    }
    if (record.op == "insert") {
      Result<std::string> inserted = coll.insert_one(record.document);
      if (!inserted.ok()) return Status(inserted.error());
      return Status::success();
    }
    if (record.op == "update") {
      // Post-image replay: delete + reinsert.
      coll.delete_by_id(record.id);
      Result<std::string> inserted = coll.insert_one(record.document);
      if (!inserted.ok()) return Status(inserted.error());
      return Status::success();
    }
    if (record.op == "delete") {
      coll.delete_by_id(record.id);
      return Status::success();
    }
    return Status(ErrorCode::kParseError, "unknown journal op: " + record.op);
  }, &report, replay_options);
  db->replaying_ = false;
  if (!replayed.ok()) return Result<std::unique_ptr<Database>>(replayed.error());
  if (report.torn_tail) {
    util::Log::warn("journal " + path + " line " +
                    std::to_string(report.torn_tail_line) + ": " +
                    report.detail + "; " +
                    std::to_string(report.records_applied) +
                    " records recovered");
    // Cut the garbage tail off before appending, or the next record would
    // concatenate onto it and corrupt the journal for good.
    const Status cut = fs.truncate(path, report.valid_prefix_bytes);
    if (!cut.ok()) {
      return Result<std::unique_ptr<Database>>(util::Error{
          ErrorCode::kDataLoss,
          "cannot truncate torn journal tail: " + cut.error().message});
    }
  }

  const Status opened = db->journal_->open(path, options.vfs);
  if (!opened.ok()) return Result<std::unique_ptr<Database>>(opened.error());
  db->journal_->start_writer(options.journal_queue_depth);
  if (report.quarantined_records > 0) {
    util::Log::warn("journal " + path + ": quarantined " +
                    std::to_string(report.quarantined_records) +
                    " corrupt record(s) to " + report.quarantine_path +
                    "; compacting");
    // Scrub: rewrite the journal from the salvaged state so the corrupt
    // lines are gone and a later *strict* open succeeds.
    const Status scrubbed = db->compact();
    if (!scrubbed.ok()) {
      return Result<std::unique_ptr<Database>>(scrubbed.error());
    }
  }
  return db;
}

void Database::attach_observer(Collection& coll) {
  coll.set_write_gate(&write_gate_);
  coll.set_observer([this](MutationEvent& event) {
    if (replaying_ || journal_ == nullptr || !journal_->is_open()) return;
    if (event.kind == MutationEvent::Kind::kSync) {
      // Durability ticket: the group containing every frame enqueued so
      // far.  The mutating call awaits it after dropping its lock.
      if (event.ticket != nullptr) {
        event.ticket->journal = journal_.get();
        event.ticket->seq = journal_->enqueued_seq();
      } else {
        const Status flushed = journal_->flush();
        if (!flushed.ok()) {
          util::Log::error("journal flush failed: " + flushed.error().message);
        }
      }
      return;
    }
    // The payload was encoded exactly once by the mutating thread; hand
    // it to the group-commit writer (blocks only on queue backpressure).
    if (journal_->enqueue(std::move(event.payload)) == 0) {
      util::Log::error("journal rejected record for collection " +
                       event.collection + " (pipeline stopped)");
    }
  });
}

Collection& Database::collection(const std::string& name) {
  // Creating a collection enqueues a journal frame, so it must not race
  // a compact() snapshot — same shared hold (and same gate-before-lock
  // order) as every Collection mutator.
  const std::shared_lock gate(write_gate_);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    auto coll = std::make_unique<Collection>(name);
    // In-memory databases skip the observer entirely: no journal payload
    // is ever encoded for them.
    if (journal_ != nullptr) attach_observer(*coll);
    it = collections_.emplace(name, std::move(coll)).first;
    if (!replaying_ && journal_ != nullptr && journal_->is_open()) {
      if (journal_->enqueue(Journal::encode_create_collection(name)) == 0) {
        const Status appended = journal_->append(
            JournalRecord{"create_collection", name, {}, {}, {}});
        if (!appended.ok()) {
          util::Log::error("journal append failed: " +
                           appended.error().message);
        }
      }
    }
  }
  return *it->second;
}

Collection* Database::find_collection(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::find_collection(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::collection_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, unused] : collections_) names.push_back(name);
  return names;
}

bool Database::drop_collection(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return collections_.erase(name) > 0;
}

void Database::set_write_guard(WriteGuard guard) {
  const std::lock_guard<std::mutex> lock(guard_mutex_);
  write_guard_ = std::move(guard);
}

bool Database::has_write_guard() const {
  const std::lock_guard<std::mutex> lock(guard_mutex_);
  return static_cast<bool>(write_guard_);
}

namespace {

const util::Error kDenied{ErrorCode::kPermissionDenied,
                          "write credential rejected"};

}  // namespace

Result<std::string> Database::guarded_insert(const std::string& collection_name,
                                             Document doc,
                                             const Value& credential) {
  {
    const std::lock_guard<std::mutex> lock(guard_mutex_);
    if (write_guard_ && !write_guard_(credential)) {
      return Result<std::string>(kDenied);
    }
  }
  return collection(collection_name).insert_one(std::move(doc));
}

Result<std::vector<std::string>> Database::guarded_insert_many(
    const std::string& collection_name, std::vector<Document> docs,
    const Value& credential) {
  {
    const std::lock_guard<std::mutex> lock(guard_mutex_);
    if (write_guard_ && !write_guard_(credential)) {
      return Result<std::vector<std::string>>(kDenied);
    }
  }
  return collection(collection_name).insert_many(std::move(docs));
}

std::vector<JournalRecord> Database::snapshot_records() const {
  std::vector<JournalRecord> records;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, coll] : collections_) {
    JournalRecord create;
    create.op = "create_collection";
    create.collection = name;
    records.push_back(create);
    for (const std::string& field : coll->indexed_fields()) {
      JournalRecord index;
      index.op = "create_index";
      index.collection = name;
      index.field = field;
      records.push_back(index);
    }
    coll->for_each([&](const Document& doc) {
      JournalRecord insert;
      insert.op = "insert";
      insert.collection = name;
      insert.id = std::string(document_id(doc).value_or(""));
      insert.document = doc;
      records.push_back(insert);
    });
  }
  return records;
}

Status Database::compact() {
  if (journal_ == nullptr) return Status::success();
  // Exclusive gate: no mutator is inside its mutate+emit window, so once
  // rewrite() drains the writer queue the snapshot covers every frame
  // that could ever reach the pre-compact file — nothing is lost and
  // nothing is double-applied on replay.
  const std::unique_lock gate(write_gate_);
  return journal_->rewrite(snapshot_records());
}

}  // namespace upin::docdb
