// database.hpp — a named set of collections with optional durability and
// write-access control.
//
// Mirrors the paper's MongoDB deployment: three collections (Fig 3),
// batched writes (§4.2.2), and the designed-but-unimplemented PKC write
// gate (§4.2.2 "Database Access Management") which we do implement via a
// pluggable WriteGuard (the SCION trust layer provides one).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "docdb/collection.hpp"
#include "docdb/journal.hpp"
#include "docdb/vfs.hpp"

namespace upin::docdb {

/// Verifies a write credential.  Returning false rejects the mutation
/// with kPermissionDenied.  Implementations must be thread-safe.
using WriteGuard = std::function<bool(const util::Value& credential)>;

/// Tuning for a durable database.
struct DatabaseOptions {
  /// Bound on the journal writer queue (frames awaiting group commit).
  /// Mutating threads block — backpressure — when it fills; deeper
  /// queues absorb burstier parallel surveys at the cost of a larger
  /// at-crash unflushed tail for calls that have not yet returned.
  std::size_t journal_queue_depth = Journal::kDefaultQueueDepth;
  /// Strict (false, default): a corrupt newline-terminated journal line
  /// fails open() with kParseError.  Salvage (true): corrupt mid-file
  /// records are quarantined to `<path>.quarantine` (header naming line
  /// and reason, then the raw line), the rest replays, and the journal
  /// is immediately compacted so later strict opens succeed.
  bool salvage_mode = false;
  /// Storage backend (nullptr = the real filesystem).  Must outlive the
  /// database.  Tests plug a FaultVfs in here.
  Vfs* vfs = nullptr;
};

/// An embedded multi-collection document database.
class Database {
 public:
  Database() = default;

  /// Open a durable database backed by the JSONL journal at `path`,
  /// replaying any existing contents and starting the group-commit
  /// writer thread.
  [[nodiscard]] static util::Result<std::unique_ptr<Database>> open(
      const std::string& path);
  [[nodiscard]] static util::Result<std::unique_ptr<Database>> open(
      const std::string& path, const DatabaseOptions& options);

  /// Get or create a collection.  The returned pointer is stable for the
  /// lifetime of the Database.
  Collection& collection(const std::string& name);

  /// Existing collection or nullptr.
  [[nodiscard]] Collection* find_collection(const std::string& name);
  [[nodiscard]] const Collection* find_collection(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> collection_names() const;

  /// Drop a collection (documents and indexes).  Returns whether it existed.
  bool drop_collection(const std::string& name);

  // ---- write-access control ------------------------------------------

  /// Install a write guard.  Once set, guarded_insert* calls verify their
  /// credential before inserting; direct Collection mutation remains
  /// available to in-process trusted code (the guard models the paper's
  /// *remote writer* authentication).
  void set_write_guard(WriteGuard guard);
  [[nodiscard]] bool has_write_guard() const;

  /// Insert with credential check (single document).
  util::Result<std::string> guarded_insert(const std::string& collection_name,
                                           Document doc,
                                           const util::Value& credential);
  /// Insert with credential check (atomic batch).
  util::Result<std::vector<std::string>> guarded_insert_many(
      const std::string& collection_name, std::vector<Document> docs,
      const util::Value& credential);

  // ---- durability ------------------------------------------------------

  /// Rewrite the journal from live state (drops deleted/overwritten
  /// history).  Safe against concurrent mutators: the write gate is held
  /// exclusively, so the snapshot is a superset of every frame the
  /// group-commit writer could still put in the old file.  No-op for
  /// in-memory databases.
  [[nodiscard]] util::Status compact();

  [[nodiscard]] bool is_durable() const noexcept { return journal_ != nullptr; }

 private:
  void attach_observer(Collection& coll);
  [[nodiscard]] std::vector<JournalRecord> snapshot_records() const;

  mutable std::mutex mutex_;
  // std::map keeps pointers stable and names sorted for listings.
  std::map<std::string, std::unique_ptr<Collection>> collections_;
  std::unique_ptr<Journal> journal_;
  /// Mutators hold this shared (before any collection lock); compact()
  /// holds it exclusive while snapshotting + rewriting the journal.
  std::shared_mutex write_gate_;
  WriteGuard write_guard_;
  mutable std::mutex guard_mutex_;
  bool replaying_ = false;
};

}  // namespace upin::docdb
