// document.hpp — document conventions for the store.
//
// A document is a JSON object with a unique string `_id` within its
// collection, matching the paper's MongoDB schema (Fig 3): ids like "2_15"
// (paths) or "2_15_000000012000" (paths_stats).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace upin::docdb {

using Document = util::Value;

/// Field that uniquely identifies a document within a collection.
inline constexpr std::string_view kIdField = "_id";

/// The document's _id, if present and a string.
[[nodiscard]] inline std::optional<std::string_view> document_id(
    const Document& doc) noexcept {
  const util::Value* id = doc.get(kIdField);
  if (id == nullptr) return std::nullopt;
  return id->try_string();
}

}  // namespace upin::docdb
