#include "docdb/filter.hpp"

#include <functional>
#include <regex>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Value;

int compare_values(const Value& a, const Value& b) {
  const auto rank = [](const Value& v) -> int {
    switch (v.type()) {
      case Value::Type::kNull: return 0;
      case Value::Type::kBool: return 1;
      case Value::Type::kInt:
      case Value::Type::kDouble: return 2;
      case Value::Type::kString: return 3;
      case Value::Type::kArray: return 4;
      case Value::Type::kObject: return 5;
    }
    return 6;
  };
  const int ra = rank(a);
  const int rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;

  switch (a.type()) {
    case Value::Type::kNull: return 0;
    case Value::Type::kBool:
      return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
    case Value::Type::kInt:
    case Value::Type::kDouble: {
      if (a.is_int() && b.is_int()) {
        const auto x = a.as_int();
        const auto y = b.as_int();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const double x = a.as_double();
      const double y = b.as_double();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Value::Type::kString:
      return a.as_string().compare(b.as_string()) < 0
                 ? -1
                 : (a.as_string() == b.as_string() ? 0 : 1);
    case Value::Type::kArray: {
      const auto& xs = a.as_array();
      const auto& ys = b.as_array();
      const std::size_t n = std::min(xs.size(), ys.size());
      for (std::size_t i = 0; i < n; ++i) {
        const int c = compare_values(xs[i], ys[i]);
        if (c != 0) return c;
      }
      return xs.size() < ys.size() ? -1 : (xs.size() > ys.size() ? 1 : 0);
    }
    case Value::Type::kObject: {
      // Deterministic but arbitrary: compare canonical serializations.
      const std::string sa = a.dump();
      const std::string sb = b.dump();
      return sa < sb ? -1 : (sa == sb ? 0 : 1);
    }
  }
  return 0;
}

// ---------------------------------------------------------------- Node tree

class Filter::Node {
 public:
  enum class Kind {
    kTrue,
    kAnd,
    kOr,
    kNor,
    kNot,
    kEq,
    kNe,
    kGt,
    kGte,
    kLt,
    kLte,
    kIn,
    kNin,
    kExists,
    kSize,
    kAll,
    kElemMatch,
    kRegex,
    kLike,
  };

  Kind kind = Kind::kTrue;
  std::string field;                                // dotted path, if any
  Value operand;                                    // comparison operand
  std::vector<Value> operands;                      // $in / $nin / $all
  std::vector<std::shared_ptr<const Node>> children;  // logical operators
  std::shared_ptr<const Node> inner;                // $not / $elemMatch
  std::shared_ptr<const std::regex> regex;          // $regex

  [[nodiscard]] bool matches(const Document& doc) const;

 private:
  [[nodiscard]] bool matches_field(const Value* field_value) const;
  [[nodiscard]] bool scalar_predicate(const Value& candidate) const;
};

namespace {

/// True when a field value satisfies an equality with `operand`, with
/// Mongo's array-contains extension.
bool equality_match(const Value& field_value, const Value& operand) {
  if (field_value == operand) return true;
  if (field_value.is_array() && !operand.is_array()) {
    for (const Value& element : field_value.as_array()) {
      if (element == operand) return true;
    }
  }
  return false;
}

}  // namespace

bool Filter::Node::scalar_predicate(const Value& candidate) const {
  switch (kind) {
    case Kind::kGt: return compare_values(candidate, operand) > 0;
    case Kind::kGte: return compare_values(candidate, operand) >= 0;
    case Kind::kLt: return compare_values(candidate, operand) < 0;
    case Kind::kLte: return compare_values(candidate, operand) <= 0;
    case Kind::kRegex:
      return candidate.is_string() &&
             std::regex_search(candidate.as_string(), *regex);
    case Kind::kLike:
      return candidate.is_string() &&
             util::wildcard_match(operand.as_string(), candidate.as_string());
    default: return false;
  }
}

bool Filter::Node::matches_field(const Value* field_value) const {
  switch (kind) {
    case Kind::kEq:
      return field_value != nullptr && equality_match(*field_value, operand);
    case Kind::kNe:
      return field_value == nullptr || !equality_match(*field_value, operand);
    case Kind::kGt:
    case Kind::kGte:
    case Kind::kLt:
    case Kind::kLte:
    case Kind::kRegex:
    case Kind::kLike: {
      if (field_value == nullptr) return false;
      if (field_value->is_array()) {
        // Any-element semantics, as in Mongo.
        for (const Value& element : field_value->as_array()) {
          if (scalar_predicate(element)) return true;
        }
        return false;
      }
      return scalar_predicate(*field_value);
    }
    case Kind::kIn: {
      if (field_value == nullptr) return false;
      for (const Value& candidate : operands) {
        if (equality_match(*field_value, candidate)) return true;
      }
      return false;
    }
    case Kind::kNin: {
      if (field_value == nullptr) return true;
      for (const Value& candidate : operands) {
        if (equality_match(*field_value, candidate)) return false;
      }
      return true;
    }
    case Kind::kExists:
      return (field_value != nullptr) == operand.as_bool();
    case Kind::kSize:
      return field_value != nullptr && field_value->is_array() &&
             static_cast<std::int64_t>(field_value->as_array().size()) ==
                 operand.as_int();
    case Kind::kAll: {
      if (field_value == nullptr || !field_value->is_array()) return false;
      for (const Value& required : operands) {
        bool found = false;
        for (const Value& element : field_value->as_array()) {
          if (element == required) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
    case Kind::kElemMatch: {
      if (field_value == nullptr || !field_value->is_array()) return false;
      for (const Value& element : field_value->as_array()) {
        if (inner->matches(element)) return true;
      }
      return false;
    }
    default: return false;
  }
}

bool Filter::Node::matches(const Document& doc) const {
  switch (kind) {
    case Kind::kTrue: return true;
    case Kind::kAnd:
      for (const auto& child : children) {
        if (!child->matches(doc)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& child : children) {
        if (child->matches(doc)) return true;
      }
      return false;
    case Kind::kNor:
      for (const auto& child : children) {
        if (child->matches(doc)) return false;
      }
      return true;
    case Kind::kNot: return !inner->matches(doc);
    default: {
      const Value* field_value = doc.get_path(field);
      return matches_field(field_value);
    }
  }
}

// ------------------------------------------------------------------ compile

namespace {

using Node = Filter::Node;
using NodePtr = std::shared_ptr<const Node>;

Result<NodePtr> compile_query(const Value& query);

Result<NodePtr> compile_operator(const std::string& field,
                                 const std::string& op, const Value& operand) {
  auto node = std::make_shared<Node>();
  node->field = field;
  node->operand = operand;

  const auto simple = [&](Node::Kind kind) -> Result<NodePtr> {
    node->kind = kind;
    return NodePtr(node);
  };
  const auto list_valued = [&](Node::Kind kind) -> Result<NodePtr> {
    if (!operand.is_array()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         op + " requires an array operand"};
    }
    node->kind = kind;
    node->operands = operand.as_array();
    return NodePtr(node);
  };

  if (op == "$eq") return simple(Node::Kind::kEq);
  if (op == "$ne") return simple(Node::Kind::kNe);
  if (op == "$gt") return simple(Node::Kind::kGt);
  if (op == "$gte") return simple(Node::Kind::kGte);
  if (op == "$lt") return simple(Node::Kind::kLt);
  if (op == "$lte") return simple(Node::Kind::kLte);
  if (op == "$in") return list_valued(Node::Kind::kIn);
  if (op == "$nin") return list_valued(Node::Kind::kNin);
  if (op == "$all") return list_valued(Node::Kind::kAll);
  if (op == "$exists") {
    if (!operand.is_bool()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "$exists requires a boolean"};
    }
    return simple(Node::Kind::kExists);
  }
  if (op == "$size") {
    if (!operand.is_int()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "$size requires an integer"};
    }
    return simple(Node::Kind::kSize);
  }
  if (op == "$regex") {
    if (!operand.is_string()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "$regex requires a string"};
    }
    try {
      node->regex = std::make_shared<const std::regex>(operand.as_string());
    } catch (const std::regex_error& e) {
      return util::Error{ErrorCode::kInvalidArgument,
                         std::string("bad $regex: ") + e.what()};
    }
    node->kind = Node::Kind::kRegex;
    return NodePtr(node);
  }
  if (op == "$like") {
    if (!operand.is_string()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "$like requires a string"};
    }
    return simple(Node::Kind::kLike);
  }
  if (op == "$not") {
    Result<NodePtr> inner = [&]() -> Result<NodePtr> {
      if (!operand.is_object()) {
        return util::Error{ErrorCode::kInvalidArgument,
                           "$not requires an operator object"};
      }
      // Wrap the operators back under the field.
      util::JsonObject wrapper;
      wrapper.set(field, operand);
      return compile_query(Value(std::move(wrapper)));
    }();
    if (!inner.ok()) return inner;
    node->kind = Node::Kind::kNot;
    node->inner = inner.value();
    node->field.clear();
    return NodePtr(node);
  }
  if (op == "$elemMatch") {
    if (!operand.is_object()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "$elemMatch requires a query object"};
    }
    Result<NodePtr> inner = compile_query(operand);
    if (!inner.ok()) return inner;
    node->kind = Node::Kind::kElemMatch;
    node->inner = inner.value();
    return NodePtr(node);
  }
  return util::Error{ErrorCode::kInvalidArgument, "unknown operator " + op};
}

/// True when an object consists solely of `$op` keys (an operator block).
bool is_operator_block(const Value& value) {
  if (!value.is_object() || value.as_object().empty()) return false;
  for (const auto& [key, unused] : value.as_object()) {
    if (key.empty() || key[0] != '$') return false;
  }
  return true;
}

Result<NodePtr> compile_logical(Node::Kind kind, const Value& operand) {
  if (!operand.is_array() || operand.as_array().empty()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "logical operator requires a non-empty array"};
  }
  auto node = std::make_shared<Node>();
  node->kind = kind;
  for (const Value& clause : operand.as_array()) {
    Result<NodePtr> child = compile_query(clause);
    if (!child.ok()) return child;
    node->children.push_back(child.value());
  }
  return NodePtr(node);
}

Result<NodePtr> compile_query(const Value& query) {
  if (!query.is_object()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "filter must be a JSON object"};
  }
  auto root = std::make_shared<Node>();
  root->kind = Node::Kind::kAnd;

  for (const auto& [key, operand] : query.as_object()) {
    if (key == "$and" || key == "$or" || key == "$nor") {
      const Node::Kind kind = key == "$and"  ? Node::Kind::kAnd
                              : key == "$or" ? Node::Kind::kOr
                                             : Node::Kind::kNor;
      Result<NodePtr> child = compile_logical(kind, operand);
      if (!child.ok()) return child;
      root->children.push_back(child.value());
      continue;
    }
    if (!key.empty() && key[0] == '$') {
      return util::Error{ErrorCode::kInvalidArgument,
                         "unknown top-level operator " + key};
    }
    if (is_operator_block(operand)) {
      for (const auto& [op, op_operand] : operand.as_object()) {
        Result<NodePtr> child = compile_operator(key, op, op_operand);
        if (!child.ok()) return child;
        root->children.push_back(child.value());
      }
    } else {
      auto eq = std::make_shared<Node>();
      eq->kind = Node::Kind::kEq;
      eq->field = key;
      eq->operand = operand;
      root->children.push_back(NodePtr(eq));
    }
  }

  if (root->children.empty()) {
    root->kind = Node::Kind::kTrue;
  } else if (root->children.size() == 1) {
    return Result<NodePtr>(root->children.front());
  }
  return NodePtr(root);
}

}  // namespace

Filter::Filter(std::shared_ptr<const Node> root) : root_(std::move(root)) {}

Result<Filter> Filter::compile(const Value& query) {
  Result<NodePtr> root = compile_query(query);
  if (!root.ok()) return Result<Filter>(root.error());
  return Filter(root.value());
}

Filter Filter::match_all() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kTrue;
  return Filter(NodePtr(node));
}

bool Filter::matches(const Document& doc) const { return root_->matches(doc); }

namespace {

/// Visit every leaf clause of the top-level conjunction, flattening
/// nested $and nodes.  Non-conjunctive subtrees ($or, $nor, $not, ...)
/// are visited as single opaque leaves.
void for_each_conjunct(const Filter::Node& node,
                       const std::function<void(const Filter::Node&)>& visit) {
  if (node.kind == Filter::Node::Kind::kAnd) {
    for (const auto& child : node.children) for_each_conjunct(*child, visit);
    return;
  }
  visit(node);
}

}  // namespace

std::vector<std::pair<std::string, std::vector<Filter::Bound>>>
Filter::extractable_bounds() const {
  std::vector<std::pair<std::string, std::vector<Bound>>> by_field;
  const auto bounds_for = [&](const std::string& field) -> std::vector<Bound>& {
    for (auto& [name, bounds] : by_field) {
      if (name == field) return bounds;
    }
    return by_field.emplace_back(field, std::vector<Bound>{}).second;
  };
  for_each_conjunct(*root_, [&](const Node& leaf) {
    Bound bound;
    switch (leaf.kind) {
      case Node::Kind::kEq:
        bound.op = Bound::Op::kEq;
        bound.operand = &leaf.operand;
        break;
      case Node::Kind::kGt:
        bound.op = Bound::Op::kGt;
        bound.operand = &leaf.operand;
        break;
      case Node::Kind::kGte:
        bound.op = Bound::Op::kGte;
        bound.operand = &leaf.operand;
        break;
      case Node::Kind::kLt:
        bound.op = Bound::Op::kLt;
        bound.operand = &leaf.operand;
        break;
      case Node::Kind::kLte:
        bound.op = Bound::Op::kLte;
        bound.operand = &leaf.operand;
        break;
      case Node::Kind::kIn:
        bound.op = Bound::Op::kIn;
        bound.list = &leaf.operands;
        break;
      default:
        return;  // opaque to the planner; stays in the residual
    }
    bounds_for(leaf.field).push_back(bound);
  });
  return by_field;
}

std::size_t Filter::clause_count() const {
  std::size_t count = 0;
  for_each_conjunct(*root_, [&](const Node& leaf) {
    if (leaf.kind != Node::Kind::kTrue) ++count;
  });
  return count;
}

bool Filter::is_match_all() const { return clause_count() == 0; }

const Value* Filter::equality_on(std::string_view field) const {
  const Node* node = root_.get();
  const auto check = [&](const Node& candidate) -> const Value* {
    if (candidate.kind == Node::Kind::kEq && candidate.field == field) {
      return &candidate.operand;
    }
    return nullptr;
  };
  if (const Value* hit = check(*node)) return hit;
  if (node->kind == Node::Kind::kAnd) {
    for (const auto& child : node->children) {
      if (const Value* hit = check(*child)) return hit;
    }
  }
  return nullptr;
}

}  // namespace upin::docdb
