// filter.hpp — MongoDB-style query filters.
//
// The path-selection layer (paper §6) works by querying the stats store:
// "all paths_stats for destination 2 with loss < 10 not traversing ISD 16".
// A Filter is built from a JSON query document with the familiar operator
// vocabulary and evaluated against candidate documents.
//
// Supported:
//   implicit equality         {"server_id": 2}
//   comparison                $eq $ne $gt $gte $lt $lte
//   membership                $in $nin
//   logical                   $and $or $nor $not
//   field presence            $exists
//   arrays                    $size $all $elemMatch
//   strings                   $regex (ECMAScript), $like (wildcard * ?)
//   dotted paths              {"stats.latency_ms": {"$lt": 50}}
//
// Equality against an array field also matches when the array *contains*
// the operand (Mongo semantics), which is how "paths traversing ISD 17"
// queries the `isds` array.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "docdb/document.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// Compiled query filter.  Immutable and shareable across threads.
class Filter {
 public:
  /// Compile a filter from a query document.  Unknown `$operators` and
  /// operand type mismatches are reported as kInvalidArgument.
  [[nodiscard]] static util::Result<Filter> compile(const util::Value& query);

  /// A filter that matches every document.
  [[nodiscard]] static Filter match_all();

  /// Evaluate against one document.
  [[nodiscard]] bool matches(const Document& doc) const;

  /// The equality constant this filter pins `field` to, if the filter is
  /// (a conjunction containing) a simple equality on it — used by the
  /// query planner to consult an index.
  [[nodiscard]] const util::Value* equality_on(std::string_view field) const;

  /// One index-usable predicate extracted from the top-level conjunction.
  /// Pointers view into the filter's compiled nodes and stay valid while
  /// the Filter (or any copy sharing its root) is alive.
  struct Bound {
    enum class Op { kEq, kIn, kGt, kGte, kLt, kLte };
    Op op = Op::kEq;
    const util::Value* operand = nullptr;        ///< kEq and range ops
    const std::vector<util::Value>* list = nullptr;  ///< kIn
  };

  /// Per-field extractable predicates of the top-level conjunction
  /// (nested `$and` flattened; anything under `$or`/`$nor`/`$not` is
  /// opaque to the planner).  Fields appear in first-mention order.
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<Bound>>>
  extractable_bounds() const;

  /// Leaf clauses in the top-level conjunction — an `$or` subtree counts
  /// as one (unextractable) clause; match_all() counts zero.  The planner
  /// compares this against the clauses a plan consumes to decide whether
  /// the residual predicate still needs to run.
  [[nodiscard]] std::size_t clause_count() const;

  /// True when this filter matches every document (match_all()).
  [[nodiscard]] bool is_match_all() const;

  class Node;  // implementation detail, exposed for the planner

 private:
  explicit Filter(std::shared_ptr<const Node> root);
  std::shared_ptr<const Node> root_;
};

/// Total ordering across JSON values used by sorts and range operators:
/// null < bool < number < string < array < object; numbers compare
/// numerically regardless of int/double representation.
[[nodiscard]] int compare_values(const util::Value& a, const util::Value& b);

}  // namespace upin::docdb
