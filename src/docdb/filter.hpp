// filter.hpp — MongoDB-style query filters.
//
// The path-selection layer (paper §6) works by querying the stats store:
// "all paths_stats for destination 2 with loss < 10 not traversing ISD 16".
// A Filter is built from a JSON query document with the familiar operator
// vocabulary and evaluated against candidate documents.
//
// Supported:
//   implicit equality         {"server_id": 2}
//   comparison                $eq $ne $gt $gte $lt $lte
//   membership                $in $nin
//   logical                   $and $or $nor $not
//   field presence            $exists
//   arrays                    $size $all $elemMatch
//   strings                   $regex (ECMAScript), $like (wildcard * ?)
//   dotted paths              {"stats.latency_ms": {"$lt": 50}}
//
// Equality against an array field also matches when the array *contains*
// the operand (Mongo semantics), which is how "paths traversing ISD 17"
// queries the `isds` array.
#pragma once

#include <memory>

#include "docdb/document.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// Compiled query filter.  Immutable and shareable across threads.
class Filter {
 public:
  /// Compile a filter from a query document.  Unknown `$operators` and
  /// operand type mismatches are reported as kInvalidArgument.
  [[nodiscard]] static util::Result<Filter> compile(const util::Value& query);

  /// A filter that matches every document.
  [[nodiscard]] static Filter match_all();

  /// Evaluate against one document.
  [[nodiscard]] bool matches(const Document& doc) const;

  /// The equality constant this filter pins `field` to, if the filter is
  /// (a conjunction containing) a simple equality on it — used by the
  /// query planner to consult an index.
  [[nodiscard]] const util::Value* equality_on(std::string_view field) const;

  class Node;  // implementation detail, exposed for the planner

 private:
  explicit Filter(std::shared_ptr<const Node> root);
  std::shared_ptr<const Node> root_;
};

/// Total ordering across JSON values used by sorts and range operators:
/// null < bool < number < string < array < object; numbers compare
/// numerically regardless of int/double representation.
[[nodiscard]] int compare_values(const util::Value& a, const util::Value& b);

}  // namespace upin::docdb
