#include "docdb/index.hpp"

#include <algorithm>
#include <functional>

namespace upin::docdb {

using util::Value;

FieldIndex::FieldIndex(std::string field) : field_(std::move(field)) {}

std::string FieldIndex::encode_key(const Value& value) {
  switch (value.type()) {
    case Value::Type::kNull: return "z";
    case Value::Type::kBool: return value.as_bool() ? "b1" : "b0";
    case Value::Type::kInt:
    case Value::Type::kDouble: {
      // Numeric values collide across representations: encode as double
      // unless the int is not exactly representable.
      const double d = value.as_double();
      if (value.is_int() &&
          static_cast<double>(value.as_int()) != d) {
        return "i" + std::to_string(value.as_int());
      }
      return "n" + std::to_string(d);
    }
    case Value::Type::kString: return "s" + value.as_string();
    case Value::Type::kArray:
    case Value::Type::kObject: return "j" + value.dump();
  }
  return "?";
}

void FieldIndex::for_each_key(
    const Document& doc,
    const std::function<void(const std::string&)>& fn) const {
  const Value* field_value = doc.get_path(field_);
  if (field_value == nullptr) return;
  if (field_value->is_array()) {
    for (const Value& element : field_value->as_array()) {
      fn(encode_key(element));
    }
    // The whole array is also addressable (exact-array equality).
    fn(encode_key(*field_value));
    return;
  }
  fn(encode_key(*field_value));
}

void FieldIndex::add(const Document& doc, std::size_t position) {
  for_each_key(doc, [&](const std::string& key) {
    buckets_[key].push_back(position);
  });
}

void FieldIndex::remove(const Document& doc, std::size_t position) {
  for_each_key(doc, [&](const std::string& key) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    auto& positions = it->second;
    positions.erase(std::remove(positions.begin(), positions.end(), position),
                    positions.end());
    if (positions.empty()) buckets_.erase(it);
  });
}

void FieldIndex::clear() noexcept { buckets_.clear(); }

std::vector<std::size_t> FieldIndex::lookup(const Value& value) const {
  const auto it = buckets_.find(encode_key(value));
  if (it == buckets_.end()) return {};
  return it->second;
}

}  // namespace upin::docdb
