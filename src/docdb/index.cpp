#include "docdb/index.hpp"

#include <algorithm>

#include "docdb/filter.hpp"

namespace upin::docdb {

using util::Value;

std::vector<std::string> split_index_spec(const std::string& spec) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) fields.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return fields;
}

std::string join_index_spec(const std::vector<std::string>& fields) {
  std::string spec;
  for (const std::string& field : fields) {
    if (!spec.empty()) spec += ',';
    spec += field;
  }
  return spec;
}

OrderedIndex::OrderedIndex(const std::string& spec)
    : OrderedIndex(split_index_spec(spec)) {}

OrderedIndex::OrderedIndex(std::vector<std::string> fields)
    : fields_(std::move(fields)), spec_(join_index_spec(fields_)) {}

bool OrderedIndex::KeyLess::operator()(const IndexKey& a,
                                       const IndexKey& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int c = compare_values(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

namespace {

/// True while `key` has not yet passed `range`'s prefix/upper edge — the
/// partition RangeEnd seeks binary-search on.  Keys equal to an inclusive
/// upper bound (and their compound extensions) are still inside.
bool before_range_end(const IndexKey& key, const OrderedIndex::Range& range) {
  const std::size_t prefix_len = range.prefix.size();
  for (std::size_t i = 0; i < prefix_len && i < key.size(); ++i) {
    const int c = compare_values(key[i], range.prefix[i]);
    if (c != 0) return c < 0;
  }
  if (key.size() <= prefix_len || range.upper == nullptr) return true;
  const int c = compare_values(key[prefix_len], *range.upper);
  if (c != 0) return c < 0;
  return range.upper_inclusive;
}

}  // namespace

bool OrderedIndex::KeyLess::operator()(const IndexKey& key,
                                       const RangeEnd& end) const {
  return before_range_end(key, *end.range);
}

bool OrderedIndex::KeyLess::operator()(const RangeEnd& end,
                                       const IndexKey& key) const {
  return !before_range_end(key, *end.range);
}

void OrderedIndex::expand_keys(const Document& doc, Expansion& out) const {
  out.element_keys.clear();
  out.self_keys.clear();
  out.missing_first = false;
  out.saw_array = false;
  out.element_keys.emplace_back();  // one empty partial key to extend
  for (std::size_t column = 0; column < fields_.size(); ++column) {
    const Value* value = doc.get_path(fields_[column]);
    const bool empty_array =
        value != nullptr && value->is_array() && value->as_array().empty();
    if ((value == nullptr || empty_array) && column == 0) {
      out.missing_first = true;
    }
    if (value != nullptr && value->is_array()) {
      out.saw_array = true;
      // Multikey: one key per distinct element.  Single-field indexes
      // also key the whole array, so exact-array equality still hits.
      if (single_field()) {
        out.self_keys.push_back(IndexKey{*value});
      }
    }
    if (value != nullptr && value->is_array() && !empty_array) {
      std::vector<IndexKey> expanded;
      for (const IndexKey& partial : out.element_keys) {
        for (const Value& element : value->as_array()) {
          IndexKey key = partial;
          key.push_back(element);
          // Skip duplicate elements ([16, 16]) — one posting per doc/key.
          if (std::find_if(expanded.begin(), expanded.end(),
                           [&](const IndexKey& seen) {
                             return !KeyLess()(seen, key) &&
                                    !KeyLess()(key, seen);
                           }) == expanded.end()) {
            expanded.push_back(std::move(key));
          }
        }
      }
      out.element_keys = std::move(expanded);
    } else {
      // Missing fields and *empty arrays* fold to null — every live doc
      // stays present in every index (the planner's no-false-negative
      // invariant), and `missing_docs_` keeps the fold out of covered
      // point/distinct plans.
      const Value folded =
          (value == nullptr || empty_array) ? Value() : *value;
      for (IndexKey& partial : out.element_keys) partial.push_back(folded);
    }
  }
}

void OrderedIndex::posting_insert(PostingMap& map, const IndexKey& key,
                                  std::size_t position) {
  std::vector<std::size_t>& positions = map[key];
  const auto at = std::lower_bound(positions.begin(), positions.end(), position);
  if (at == positions.end() || *at != position) positions.insert(at, position);
}

bool OrderedIndex::posting_erase(PostingMap& map, const IndexKey& key,
                                 std::size_t position) {
  const auto it = map.find(key);
  if (it == map.end()) return false;
  std::vector<std::size_t>& positions = it->second;
  const auto at = std::lower_bound(positions.begin(), positions.end(), position);
  if (at == positions.end() || *at != position) return false;
  positions.erase(at);
  if (positions.empty()) map.erase(it);
  return true;
}

void OrderedIndex::add(const Document& doc, std::size_t position) {
  Expansion keys;
  expand_keys(doc, keys);
  if (keys.missing_first) ++missing_docs_;
  if (keys.saw_array) multikey_ = true;
  for (const IndexKey& key : keys.element_keys) {
    posting_insert(entries_, key, position);
    ++entry_count_;
  }
  for (const IndexKey& key : keys.self_keys) {
    posting_insert(array_self_, key, position);
    ++entry_count_;
  }
}

void OrderedIndex::remove(const Document& doc, std::size_t position) {
  Expansion keys;
  expand_keys(doc, keys);
  if (keys.missing_first && missing_docs_ > 0) --missing_docs_;
  // multikey_ stays sticky: a once-multikey index keeps planning
  // conservatively, matching Mongo.
  for (const IndexKey& key : keys.element_keys) {
    if (posting_erase(entries_, key, position)) --entry_count_;
  }
  for (const IndexKey& key : keys.self_keys) {
    if (posting_erase(array_self_, key, position)) --entry_count_;
  }
}

void OrderedIndex::clear() noexcept {
  entries_.clear();
  array_self_.clear();
  entry_count_ = 0;
  missing_docs_ = 0;
  multikey_ = false;
}

namespace {

/// Where `key`'s bounded column stands relative to a range window:
/// -1 below the lower bound, +1 above the upper bound, 0 inside.
int window_position(const Value& candidate, const OrderedIndex::Range& range) {
  if (range.lower != nullptr) {
    const int c = compare_values(candidate, *range.lower);
    if (c < 0 || (c == 0 && !range.lower_inclusive)) return -1;
  }
  if (range.upper != nullptr) {
    const int c = compare_values(candidate, *range.upper);
    if (c > 0 || (c == 0 && !range.upper_inclusive)) return 1;
  }
  return 0;
}

}  // namespace

void OrderedIndex::scan_map(
    const PostingMap& map, const Range& range, std::size_t columns,
    const std::function<bool(const IndexKey&, const std::vector<std::size_t>&)>&
        visit) {
  // Seek to the first key >= the prefix (+ lower bound, when given):
  // shorter keys sort before their extensions, so the partial key is a
  // valid lower bound for every key it prefixes.
  IndexKey seek = range.prefix;
  if (seek.size() < columns && range.lower != nullptr) {
    seek.push_back(*range.lower);
  }
  const std::size_t prefix_len = range.prefix.size();
  for (auto it = map.lower_bound(seek); it != map.end(); ++it) {
    const IndexKey& key = it->first;
    // Past the equality prefix? — done.
    bool beyond = false;
    for (std::size_t i = 0; i < prefix_len && i < key.size(); ++i) {
      if (compare_values(key[i], range.prefix[i]) != 0) {
        beyond = true;
        break;
      }
    }
    if (beyond) break;
    if (prefix_len < key.size()) {
      const int window = window_position(key[prefix_len], range);
      if (window < 0) continue;  // exclusive lower bound edge
      if (window > 0) break;     // keys only grow from here
    }
    if (!visit(key, it->second)) return;
  }
}

void OrderedIndex::collect(const Range& range,
                           std::vector<std::size_t>& out) const {
  const auto take = [&out](const IndexKey&,
                           const std::vector<std::size_t>& positions) {
    out.insert(out.end(), positions.begin(), positions.end());
    return true;
  };
  scan_map(entries_, range, fields_.size(), take);
  if (!array_self_.empty()) {
    scan_map(array_self_, range, fields_.size(), take);
  }
}

void OrderedIndex::scan(
    const Range& range, bool descending,
    const std::function<bool(const IndexKey&, const std::vector<std::size_t>&)>&
        visit) const {
  if (!descending) {
    scan_map(entries_, range, fields_.size(), visit);
    return;
  }
  // Descending: seek one past the last in-range key, then walk the map
  // backwards until the lower edge.  Positions inside one key stay
  // ascending: the scan path's stable sort keeps insertion order among
  // ties too.
  const std::size_t prefix_len = range.prefix.size();
  const auto stop = entries_.upper_bound(RangeEnd{&range});
  for (auto it = std::make_reverse_iterator(stop); it != entries_.rend();
       ++it) {
    const IndexKey& key = it->first;
    bool beyond = false;
    for (std::size_t i = 0; i < prefix_len && i < key.size(); ++i) {
      if (compare_values(key[i], range.prefix[i]) != 0) {
        beyond = true;
        break;
      }
    }
    if (beyond) break;  // walked below the equality prefix — done
    if (prefix_len < key.size()) {
      const int window = window_position(key[prefix_len], range);
      if (window > 0) continue;  // inclusive-edge seek slack
      if (window < 0) break;     // keys only shrink from here
    }
    if (!visit(key, it->second)) return;
  }
}

std::vector<Value> OrderedIndex::distinct_values(const Range& range) const {
  std::vector<Value> values;
  scan_map(entries_, range, fields_.size(),
           [&](const IndexKey& key, const std::vector<std::size_t>& positions) {
             if (key.empty()) return true;
             // The null key mixes stored nulls with missing-field folds;
             // distinct() skips absent fields, so it only counts when
             // some posting must be a stored null.
             if (key.front().is_null() && positions.size() <= missing_docs_) {
               return true;
             }
             values.push_back(key.front());
             return true;
           });
  return values;
}

std::size_t OrderedIndex::count_in_range(const Range& range) const {
  if (!multikey_) {
    std::size_t total = 0;
    scan_map(entries_, range, fields_.size(),
             [&](const IndexKey&, const std::vector<std::size_t>& positions) {
               total += positions.size();
               return true;
             });
    return total;
  }
  // Multikey: one document can appear under several keys — dedup.
  std::vector<std::size_t> positions;
  collect(range, positions);
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions.size();
}

}  // namespace upin::docdb
