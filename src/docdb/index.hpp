// index.hpp — ordered secondary indexes.
//
// The selection layer's queries (paper §6: "all paths_stats for
// destination 2 with loss < 10 not traversing ISD 16") are equality and
// range predicates over a million-document stats store.  An OrderedIndex
// keeps one sorted posting map per user-declared key — single or compound
// dotted fields — under the same `compare_values` total order the filter
// language uses, so the planner (collection.cpp) can turn `$eq`/`$in`/
// `$gt`/`$lt` conjunctions into O(log n) range scans instead of O(n)
// collection scans (ablation: bench/ablation_query).
//
// Semantics, chosen to mirror the scan path exactly:
//  * A document missing an indexed field is keyed as null — the same
//    value the scan-side sort comparator substitutes — so every live
//    document appears in every index and index-order traversal matches
//    `sort_by` order (ties broken by insertion position in both paths).
//  * Array fields are multikey (one entry per element, Mongo-style), and
//    single-field indexes additionally key the whole array so exact-array
//    equality stays answerable.  Once an array value has been seen the
//    index reports multikey() and the planner stops intersecting range
//    bounds (any-element semantics make intersections unsound).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "docdb/document.hpp"

namespace upin::docdb {

/// One index key: the document's value in each declared column, in
/// declaration order.  Missing fields are folded to null.
using IndexKey = std::vector<util::Value>;

/// Ordered secondary index over one or more dotted fields.  Postings map
/// keys (lexicographic `compare_values` order) to the slot positions of
/// the documents holding them, kept sorted ascending = insertion order.
class OrderedIndex {
 public:
  /// Single-field index ("path_id") or compound via a comma-separated
  /// spec ("path_id,timestamp_ms").
  explicit OrderedIndex(const std::string& spec);
  explicit OrderedIndex(std::vector<std::string> fields);

  /// Declared columns, in order.
  [[nodiscard]] const std::vector<std::string>& fields() const noexcept {
    return fields_;
  }
  /// Canonical comma-joined declaration ("path_id,timestamp_ms").
  [[nodiscard]] const std::string& spec() const noexcept { return spec_; }
  [[nodiscard]] bool single_field() const noexcept {
    return fields_.size() == 1;
  }
  /// Sticky: true once any indexed value was an array.  Multikey indexes
  /// cannot stream sorts or intersect range bounds soundly.
  [[nodiscard]] bool multikey() const noexcept { return multikey_; }
  /// True when some indexed document lacks the first column entirely
  /// (its null key entry is a fold, not a stored null).
  [[nodiscard]] bool has_missing() const noexcept { return missing_docs_ > 0; }

  /// Index `doc` stored at `position`.
  void add(const Document& doc, std::size_t position);
  /// Remove `doc` previously stored at `position`.
  void remove(const Document& doc, std::size_t position);
  /// Clear the index entirely (keeps the declaration).
  void clear() noexcept;

  /// Distinct keys currently present (element entries only).
  [[nodiscard]] std::size_t distinct_keys() const noexcept {
    return entries_.size();
  }
  /// Total posting entries across all keys — the `upin_index_entries`
  /// figure; >= live documents for multikey indexes.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entry_count_;
  }

  /// One contiguous key range: equality on the leading `prefix` columns,
  /// then an optional [lower, upper] window on the next column.  Null
  /// pointers mean unbounded on that side.
  struct Range {
    std::vector<util::Value> prefix;
    const util::Value* lower = nullptr;
    bool lower_inclusive = true;
    const util::Value* upper = nullptr;
    bool upper_inclusive = true;

    /// Point range: every column pinned (prefix covers all fields, or a
    /// degenerate lower==upper inclusive window).
    [[nodiscard]] bool is_point(std::size_t columns) const noexcept {
      return prefix.size() >= columns;
    }
  };

  /// Append every position whose key falls in `range` to `out`
  /// (duplicates across keys possible for multikey — callers dedup).
  /// Whole-array synthetic entries are included, so equality against an
  /// exact array value still hits.
  void collect(const Range& range, std::vector<std::size_t>& out) const;

  /// Walk keys in `range` in key order (descending reverses key order;
  /// positions within one key stay ascending = insertion order, matching
  /// the scan path's stable sort).  Return false from `visit` to stop.
  /// Only meaningful for planning when !multikey(): multikey documents
  /// appear under several keys.
  void scan(const Range& range, bool descending,
            const std::function<bool(const IndexKey& key,
                                     const std::vector<std::size_t>& positions)>&
                visit) const;

  /// Distinct first-column values in `range`, ascending.  The null key
  /// is included only when some posting is a stored null rather than a
  /// missing-field fold (distinct() skips absent fields).
  [[nodiscard]] std::vector<util::Value> distinct_values(
      const Range& range) const;

  /// Number of positions (deduplicated) in `range` — covered count.
  [[nodiscard]] std::size_t count_in_range(const Range& range) const;

 private:
  /// Heterogeneous-lookup sentinel: sorts just after the last key inside
  /// `range`'s prefix/upper region, letting the descending scan seek its
  /// end point in O(log n) instead of materializing the whole range.
  struct RangeEnd {
    const Range* range;
  };
  struct KeyLess {
    using is_transparent = void;
    bool operator()(const IndexKey& a, const IndexKey& b) const;
    bool operator()(const IndexKey& key, const RangeEnd& end) const;
    bool operator()(const RangeEnd& end, const IndexKey& key) const;
  };
  using PostingMap = std::map<IndexKey, std::vector<std::size_t>, KeyLess>;

  /// Keys this document contributes: element-expanded keys for
  /// `entries_` (cartesian over array elements; missing -> null) and,
  /// for single-field arrays, whole-array keys for `array_self_`.
  struct Expansion {
    std::vector<IndexKey> element_keys;
    std::vector<IndexKey> self_keys;
    bool missing_first = false;  ///< first column absent from the doc
    bool saw_array = false;      ///< any column held an array value
  };
  void expand_keys(const Document& doc, Expansion& out) const;
  static void posting_insert(PostingMap& map, const IndexKey& key,
                             std::size_t position);
  static bool posting_erase(PostingMap& map, const IndexKey& key,
                            std::size_t position);
  /// Iterate one map's entries inside `range`; false from visit stops.
  static void scan_map(const PostingMap& map, const Range& range,
                       std::size_t columns,
                       const std::function<bool(const IndexKey&,
                                                const std::vector<std::size_t>&)>&
                           visit);

  std::vector<std::string> fields_;
  std::string spec_;
  PostingMap entries_;     ///< element-expanded keys
  PostingMap array_self_;  ///< whole-array keys (single-field multikey)
  std::size_t entry_count_ = 0;
  std::size_t missing_docs_ = 0;  ///< docs missing the first column
  bool multikey_ = false;
};

/// Split a comma-separated index declaration into its columns.
[[nodiscard]] std::vector<std::string> split_index_spec(
    const std::string& spec);
/// Canonical comma-joined form.
[[nodiscard]] std::string join_index_spec(
    const std::vector<std::string>& fields);

}  // namespace upin::docdb
