// index.hpp — secondary indexes for equality lookups.
//
// The selection layer repeatedly queries paths_stats by `path_id` and
// `server_id`; a hash index turns those from collection scans into direct
// bucket hits (ablation: bench/ablation_query).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "docdb/document.hpp"

namespace upin::docdb {

/// Hash index over one dotted field.  Maps the canonical encoding of the
/// field value to the positions of documents holding it.  Array fields are
/// multi-indexed (one entry per element), matching Mongo multikey indexes.
class FieldIndex {
 public:
  explicit FieldIndex(std::string field);

  [[nodiscard]] const std::string& field() const noexcept { return field_; }

  /// Index `doc` stored at `position`.
  void add(const Document& doc, std::size_t position);
  /// Remove `doc` previously stored at `position`.
  void remove(const Document& doc, std::size_t position);
  /// Clear the index entirely.
  void clear() noexcept;

  /// Positions of documents whose field equals `value` (or whose array
  /// field contains it).  Order is unspecified.
  [[nodiscard]] std::vector<std::size_t> lookup(const util::Value& value) const;

  [[nodiscard]] std::size_t distinct_keys() const noexcept { return buckets_.size(); }

  /// Canonical key encoding: type tag + compact serialization, so 1 and
  /// 1.0 collide (numeric equality) but "1" does not.
  [[nodiscard]] static std::string encode_key(const util::Value& value);

 private:
  void for_each_key(const Document& doc,
                    const std::function<void(const std::string&)>& fn) const;

  std::string field_;
  std::unordered_map<std::string, std::vector<std::size_t>> buckets_;
};

}  // namespace upin::docdb
