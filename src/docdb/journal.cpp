#include "docdb/journal.hpp"

#include <cstdio>
#include <vector>

namespace upin::docdb {

using util::ErrorCode;
using util::Status;
using util::Value;

Journal::~Journal() { close(); }

Status Journal::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
  path_ = path;
  out_.open(path, std::ios::app);
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "cannot open journal: " + path);
  }
  return Status::success();
}

bool Journal::is_open() const noexcept { return out_.is_open(); }

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
}

std::string Journal::encode(const JournalRecord& record) {
  util::JsonObject line;
  line.set("op", Value(record.op));
  line.set("coll", Value(record.collection));
  if (!record.id.empty()) line.set("id", Value(record.id));
  if (!record.field.empty()) line.set("field", Value(record.field));
  if (record.document.is_object()) line.set("doc", record.document);
  return Value(std::move(line)).dump();
}

Status Journal::append(const JournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  out_ << encode(record) << '\n';
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "journal write failed: " + path_);
  }
  return Status::success();
}

Status Journal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  out_.flush();
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "journal flush failed: " + path_);
  }
  return Status::success();
}

Status Journal::replay(
    const std::string& path,
    const std::function<Status(const JournalRecord&)>& replay) {
  std::ifstream in(path);
  if (!in) return Status::success();  // nothing to replay

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    util::Result<Value> parsed = Value::parse(line);
    if (!parsed.ok()) {
      return Status(ErrorCode::kParseError,
                    "journal line " + std::to_string(line_number) +
                        " corrupt: " + parsed.error().message);
    }
    const Value& value = parsed.value();
    JournalRecord record;
    if (const Value* op = value.get("op"); op && op->is_string()) {
      record.op = op->as_string();
    }
    if (const Value* coll = value.get("coll"); coll && coll->is_string()) {
      record.collection = coll->as_string();
    }
    if (const Value* id = value.get("id"); id && id->is_string()) {
      record.id = id->as_string();
    }
    if (const Value* field = value.get("field"); field && field->is_string()) {
      record.field = field->as_string();
    }
    if (const Value* doc = value.get("doc")) record.document = *doc;
    if (record.op.empty() || record.collection.empty()) {
      return Status(ErrorCode::kParseError,
                    "journal line " + std::to_string(line_number) +
                        " missing op/coll");
    }
    const Status status = replay(record);
    if (!status.ok()) return status;
  }
  return Status::success();
}

Status Journal::rewrite(const std::vector<JournalRecord>& records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) {
    return Status(ErrorCode::kDataLoss, "journal has no path");
  }
  const std::string temp_path = path_ + ".tmp";
  {
    std::ofstream temp(temp_path, std::ios::trunc);
    if (!temp) {
      return Status(ErrorCode::kDataLoss, "cannot open " + temp_path);
    }
    for (const JournalRecord& record : records) {
      temp << encode(record) << '\n';
    }
    temp.flush();
    if (!temp) {
      return Status(ErrorCode::kDataLoss, "write failed: " + temp_path);
    }
  }
  if (out_.is_open()) out_.close();
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    return Status(ErrorCode::kDataLoss, "rename failed: " + path_);
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "cannot reopen journal: " + path_);
  }
  return Status::success();
}

}  // namespace upin::docdb
