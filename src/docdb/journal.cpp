#include "docdb/journal.hpp"

#include <cstdio>
#include <iterator>
#include <string_view>
#include <vector>

#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Status;
using util::Value;

namespace {

constexpr std::string_view kCrcPrefix = "crc32=";
constexpr std::size_t kCrcHexDigits = 8;

/// "crc32=XXXXXXXX <json>" — the checksummed line format.
std::string frame(const std::string& json) {
  return std::string(kCrcPrefix) + util::format("%08x", util::crc32(json)) +
         " " + json;
}

/// Strip and verify a line's checksum header.  Returns the JSON payload,
/// or an error describing the corruption.  Checksum-less lines (legacy
/// journals, which start straight with '{') pass through unverified.
util::Result<std::string> unframe(const std::string& line) {
  if (!line.starts_with(kCrcPrefix)) {
    if (!line.empty() && line.front() == '{') return line;  // legacy record
    return util::Error{ErrorCode::kParseError, "unrecognized line format"};
  }
  const std::size_t header = kCrcPrefix.size() + kCrcHexDigits;
  if (line.size() < header + 2 || line[header] != ' ') {
    return util::Error{ErrorCode::kParseError, "malformed checksum header"};
  }
  std::uint32_t expected = 0;
  for (std::size_t i = kCrcPrefix.size(); i < header; ++i) {
    const char ch = line[i];
    std::uint32_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint32_t>(ch - 'a') + 10;
    } else {
      return util::Error{ErrorCode::kParseError, "malformed checksum header"};
    }
    expected = (expected << 4) | digit;
  }
  std::string payload = line.substr(header + 1);
  if (util::crc32(payload) != expected) {
    return util::Error{ErrorCode::kParseError, "checksum mismatch"};
  }
  return payload;
}

/// Decode one verified payload into a JournalRecord.
util::Result<JournalRecord> decode(const std::string& payload) {
  util::Result<Value> parsed = Value::parse(payload);
  if (!parsed.ok()) return util::Error{parsed.error()};
  const Value& value = parsed.value();
  JournalRecord record;
  if (const Value* op = value.get("op"); op && op->is_string()) {
    record.op = op->as_string();
  }
  if (const Value* coll = value.get("coll"); coll && coll->is_string()) {
    record.collection = coll->as_string();
  }
  if (const Value* id = value.get("id"); id && id->is_string()) {
    record.id = id->as_string();
  }
  if (const Value* field = value.get("field"); field && field->is_string()) {
    record.field = field->as_string();
  }
  if (const Value* doc = value.get("doc")) record.document = *doc;
  if (record.op.empty() || record.collection.empty()) {
    return util::Error{ErrorCode::kParseError, "missing op/coll"};
  }
  return record;
}

}  // namespace

Journal::~Journal() { close(); }

Status Journal::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
  path_ = path;
  out_.open(path, std::ios::app);
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "cannot open journal: " + path);
  }
  return Status::success();
}

bool Journal::is_open() const noexcept { return out_.is_open(); }

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
}

std::string Journal::encode(const JournalRecord& record) {
  util::JsonObject line;
  line.set("op", Value(record.op));
  line.set("coll", Value(record.collection));
  if (!record.id.empty()) line.set("id", Value(record.id));
  if (!record.field.empty()) line.set("field", Value(record.field));
  if (record.document.is_object()) line.set("doc", record.document);
  return Value(std::move(line)).dump();
}

Status Journal::append(const JournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  out_ << frame(encode(record)) << '\n';
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "journal write failed: " + path_);
  }
  return Status::success();
}

Status Journal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  out_.flush();
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "journal flush failed: " + path_);
  }
  return Status::success();
}

Status Journal::replay(
    const std::string& path,
    const std::function<Status(const JournalRecord&)>& replay,
    ReplayReport* report) {
  ReplayReport local_report;
  if (report == nullptr) report = &local_report;
  *report = ReplayReport{};

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::success();  // nothing to replay
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const bool ends_with_newline = !content.empty() && content.back() == '\n';

  std::vector<std::string> lines;
  std::vector<std::size_t> line_offsets;
  std::size_t start = 0;
  while (start < content.size()) {
    line_offsets.push_back(start);
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, newline - start));
    start = newline + 1;
  }
  report->valid_prefix_bytes = content.size();

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_number = i + 1;
    const std::string& line = lines[i];
    if (line.empty()) continue;

    std::string why;
    util::Result<std::string> payload = unframe(line);
    util::Result<JournalRecord> record{JournalRecord{}};
    if (!payload.ok()) {
      why = payload.error().message;
    } else {
      record = decode(payload.value());
      if (!record.ok()) why = record.error().message;
    }

    if (!why.empty()) {
      // A bad *final* line with no trailing newline is the signature of a
      // crash mid-append: recover the prefix, drop the tail.  Anywhere
      // else the file is genuinely corrupt — refuse to guess.
      const bool is_final_line = i + 1 == lines.size();
      if (is_final_line && !ends_with_newline) {
        report->torn_tail = true;
        report->torn_tail_line = line_number;
        report->valid_prefix_bytes = line_offsets[i];
        report->detail = "crash-truncated final record dropped (" + why + ")";
        return Status::success();
      }
      return Status(ErrorCode::kParseError,
                    "journal line " + std::to_string(line_number) +
                        " corrupt: " + why);
    }

    const Status status = replay(record.value());
    if (!status.ok()) return status;
    ++report->records_applied;
  }
  return Status::success();
}

Status Journal::rewrite(const std::vector<JournalRecord>& records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) {
    return Status(ErrorCode::kDataLoss, "journal has no path");
  }
  const std::string temp_path = path_ + ".tmp";
  {
    std::ofstream temp(temp_path, std::ios::trunc);
    if (!temp) {
      return Status(ErrorCode::kDataLoss, "cannot open " + temp_path);
    }
    for (const JournalRecord& record : records) {
      temp << frame(encode(record)) << '\n';
    }
    temp.flush();
    if (!temp) {
      return Status(ErrorCode::kDataLoss, "write failed: " + temp_path);
    }
  }
  if (out_.is_open()) out_.close();
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    return Status(ErrorCode::kDataLoss, "rename failed: " + path_);
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    return Status(ErrorCode::kDataLoss, "cannot reopen journal: " + path_);
  }
  return Status::success();
}

}  // namespace upin::docdb
