#include "docdb/journal.hpp"

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Status;
using util::Value;

namespace {

/// Write-path metrics, resolved once per process: the hot paths touch
/// pre-registered references, never the registry lock.  Latencies here
/// are *wall-clock* (the disk is real even when the network is virtual),
/// so they are deliberately absent from the determinism contract.
struct JournalMetrics {
  obs::Counter& events_enqueued;
  obs::Counter& backpressure_stalls;
  obs::Counter& groups_committed;
  obs::Counter& bytes_written;
  obs::Counter& io_errors;
  obs::Counter& quarantined_records;
  obs::Counter& compact_runs;
  obs::Counter& compact_failures;
  obs::Counter& compact_records;
  obs::LatencyHistogram& group_size;
  obs::LatencyHistogram& flush_latency_us;
  obs::LatencyHistogram& sync_wait_us;

  static JournalMetrics& get() {
    static JournalMetrics metrics{
        obs::Registry::global().counter("upin_journal_events_enqueued_total"),
        obs::Registry::global().counter(
            "upin_journal_backpressure_stalls_total"),
        obs::Registry::global().counter("upin_journal_groups_committed_total"),
        obs::Registry::global().counter("upin_journal_bytes_written_total"),
        obs::Registry::global().counter("upin_journal_io_errors_total"),
        obs::Registry::global().counter(
            "upin_journal_quarantined_records_total"),
        obs::Registry::global().counter("upin_compact_runs_total"),
        obs::Registry::global().counter("upin_compact_failures_total"),
        obs::Registry::global().counter("upin_compact_records_total"),
        obs::Registry::global().histogram("upin_journal_group_size", 0.0,
                                          256.0, 32),
        obs::Registry::global().histogram("upin_journal_flush_latency_us", 0.0,
                                          5000.0, 50),
        obs::Registry::global().histogram("upin_journal_sync_wait_us", 0.0,
                                          5000.0, 50),
    };
    return metrics;
  }
};

using WallClock = std::chrono::steady_clock;

double elapsed_us(WallClock::time_point since) {
  return std::chrono::duration<double, std::micro>(WallClock::now() - since)
      .count();
}

constexpr std::string_view kCrcPrefix = "crc32=";
constexpr std::size_t kCrcHexDigits = 8;

/// "crc32=XXXXXXXX <json>" — the checksummed line format.
std::string frame(const std::string& json) {
  return std::string(kCrcPrefix) + util::format("%08x", util::crc32(json)) +
         " " + json;
}

/// Assemble one record payload directly (same field order as a dumped
/// JsonObject: op, coll, id, field, doc) so the document body is
/// serialized exactly once, with no intermediate deep copy.
std::string encode_parts(std::string_view op, const std::string& collection,
                         const std::string& id, const std::string& field,
                         const Document* document) {
  std::string out;
  out.reserve(32 + collection.size() + id.size() + field.size());
  out += "{\"op\":";
  out += Value(std::string(op)).dump();
  out += ",\"coll\":";
  out += Value(collection).dump();
  if (!id.empty()) {
    out += ",\"id\":";
    out += Value(id).dump();
  }
  if (!field.empty()) {
    out += ",\"field\":";
    out += Value(field).dump();
  }
  if (document != nullptr && document->is_object()) {
    out += ",\"doc\":";
    out += document->dump();
  }
  out += '}';
  return out;
}

/// Strip and verify a line's checksum header.  Returns the JSON payload,
/// or an error describing the corruption.  Checksum-less lines (legacy
/// journals, which start straight with '{') pass through unverified.
util::Result<std::string> unframe(const std::string& line) {
  if (!line.starts_with(kCrcPrefix)) {
    if (!line.empty() && line.front() == '{') return line;  // legacy record
    return util::Error{ErrorCode::kParseError, "unrecognized line format"};
  }
  const std::size_t header = kCrcPrefix.size() + kCrcHexDigits;
  if (line.size() < header + 2 || line[header] != ' ') {
    return util::Error{ErrorCode::kParseError, "malformed checksum header"};
  }
  std::uint32_t expected = 0;
  for (std::size_t i = kCrcPrefix.size(); i < header; ++i) {
    const char ch = line[i];
    std::uint32_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint32_t>(ch - 'a') + 10;
    } else {
      return util::Error{ErrorCode::kParseError, "malformed checksum header"};
    }
    expected = (expected << 4) | digit;
  }
  std::string payload = line.substr(header + 1);
  if (util::crc32(payload) != expected) {
    return util::Error{ErrorCode::kParseError, "checksum mismatch"};
  }
  return payload;
}

/// Decode one verified payload into a JournalRecord.
util::Result<JournalRecord> decode(const std::string& payload) {
  util::Result<Value> parsed = Value::parse(payload);
  if (!parsed.ok()) return util::Error{parsed.error()};
  const Value& value = parsed.value();
  JournalRecord record;
  if (const Value* op = value.get("op"); op && op->is_string()) {
    record.op = op->as_string();
  }
  if (const Value* coll = value.get("coll"); coll && coll->is_string()) {
    record.collection = coll->as_string();
  }
  if (const Value* id = value.get("id"); id && id->is_string()) {
    record.id = id->as_string();
  }
  if (const Value* field = value.get("field"); field && field->is_string()) {
    record.field = field->as_string();
  }
  if (const Value* doc = value.get("doc")) record.document = *doc;
  if (record.op.empty() || record.collection.empty()) {
    return util::Error{ErrorCode::kParseError, "missing op/coll"};
  }
  return record;
}

}  // namespace

Status SyncTicket::wait() const {
  if (journal == nullptr) return Status::success();
  return journal->sync(seq);
}

Journal::~Journal() { close(); }

Status Journal::open(const std::string& path, Vfs* vfs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) out_->close();
  path_ = path;
  if (vfs != nullptr) vfs_ = vfs;
  util::Result<std::unique_ptr<File>> opened = this->vfs().open_append(path);
  if (!opened.ok()) {
    out_.reset();
    open_flag_.store(false, std::memory_order_release);
    return Status(ErrorCode::kDataLoss,
                  "cannot open journal: " + opened.error().message);
  }
  out_ = std::move(opened).value();
  open_flag_.store(true, std::memory_order_release);
  return Status::success();
}

bool Journal::is_open() const noexcept {
  return open_flag_.load(std::memory_order_acquire);
}

void Journal::close() {
  stop_writer();
  const std::lock_guard<std::mutex> lock(mutex_);
  open_flag_.store(false, std::memory_order_release);
  if (out_ != nullptr) {
    out_->close();
    out_.reset();
  }
}

std::string Journal::encode(const JournalRecord& record) {
  return encode_parts(record.op, record.collection, record.id, record.field,
                      &record.document);
}

std::string Journal::encode_insert(const std::string& collection,
                                   const std::string& id,
                                   const Document& document) {
  return encode_parts("insert", collection, id, {}, &document);
}

std::string Journal::encode_update(const std::string& collection,
                                   const std::string& id,
                                   const Document& document) {
  return encode_parts("update", collection, id, {}, &document);
}

std::string Journal::encode_delete(const std::string& collection,
                                   const std::string& id) {
  return encode_parts("delete", collection, id, {}, nullptr);
}

std::string Journal::encode_create_collection(const std::string& collection) {
  return encode_parts("create_collection", collection, {}, {}, nullptr);
}

std::string Journal::encode_create_index(const std::string& collection,
                                         const std::string& field_spec) {
  return encode_parts("create_index", collection, {}, field_spec, nullptr);
}

Status Journal::append(const JournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr || !out_->is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  const Status wrote = out_->append(frame(encode(record)) + "\n");
  if (!wrote.ok()) {
    JournalMetrics::get().io_errors.add();
    return Status(ErrorCode::kDataLoss,
                  "journal write failed: " + wrote.error().message);
  }
  return Status::success();
}

Status Journal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr || !out_->is_open()) {
    return Status(ErrorCode::kDataLoss, "journal is not open");
  }
  const Status synced = out_->sync();
  if (!synced.ok()) {
    JournalMetrics::get().io_errors.add();
    return Status(ErrorCode::kDataLoss,
                  "journal flush failed: " + synced.error().message);
  }
  return Status::success();
}

void Journal::start_writer(std::size_t queue_depth) {
  if (writer_.joinable()) return;
  queue_ = std::make_unique<util::BoundedQueue<std::string>>(queue_depth);
  writer_ = std::thread([this] { writer_loop(); });
}

bool Journal::writer_running() const noexcept { return writer_.joinable(); }

std::uint64_t Journal::enqueue(std::string payload) {
  if (queue_ == nullptr) return 0;
  JournalMetrics& metrics = JournalMetrics::get();
  bool stalled = false;
  const std::uint64_t seq = queue_->push(std::move(payload), &stalled);
  if (seq != 0) metrics.events_enqueued.add();
  if (stalled) metrics.backpressure_stalls.add();
  return seq;
}

std::uint64_t Journal::enqueued_seq() const {
  return queue_ == nullptr ? 0 : queue_->pushed();
}

Status Journal::sync(std::uint64_t seq) {
  if (queue_ == nullptr) return flush();  // no pipeline: direct durability
  const WallClock::time_point begin = WallClock::now();
  std::unique_lock<std::mutex> lock(sync_mutex_);
  sync_cv_.wait(lock, [&] { return flushed_seq_ >= seq; });
  JournalMetrics::get().sync_wait_us.observe(elapsed_us(begin));
  return writer_status_;
}

void Journal::writer_loop() {
  JournalMetrics& metrics = JournalMetrics::get();
  std::vector<std::string> group;
  std::string buffer;
  while (queue_->pop_all(group)) {
    // Coalesce the whole group into one buffer: framing + CRC happen
    // here, on the writer thread, never on a mutating thread.
    buffer.clear();
    for (const std::string& payload : group) {
      buffer += frame(payload);
      buffer += '\n';
    }
    const WallClock::time_point begin = WallClock::now();
    Status wrote = Status::success();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (out_ == nullptr || !out_->is_open()) {
        wrote = Status(ErrorCode::kDataLoss, "journal is not open");
      } else {
        wrote = out_->append(buffer);  // one write + one fsync per group
        if (wrote.ok()) wrote = out_->sync();
        if (!wrote.ok()) {
          wrote = Status(ErrorCode::kDataLoss, "journal group commit failed: " +
                                                   wrote.error().message);
        }
      }
    }
    if (!wrote.ok()) metrics.io_errors.add();
    const double flush_us = elapsed_us(begin);
    metrics.groups_committed.add();
    metrics.bytes_written.add(buffer.size());
    metrics.group_size.observe(static_cast<double>(group.size()));
    metrics.flush_latency_us.observe(flush_us);
    util::Log::debug([&] {
      return util::format("journal group_commit size=%zu bytes=%zu flush_us=%.0f",
                          group.size(), buffer.size(), flush_us);
    });
    {
      const std::lock_guard<std::mutex> lock(sync_mutex_);
      flushed_seq_ += group.size();
      if (!wrote.ok() && writer_status_.ok()) writer_status_ = wrote;
    }
    sync_cv_.notify_all();
  }
}

void Journal::stop_writer() {
  if (queue_ != nullptr) queue_->close();
  if (writer_.joinable()) writer_.join();
}

Status Journal::replay(
    const std::string& path,
    const std::function<Status(const JournalRecord&)>& replay,
    ReplayReport* report) {
  return Journal::replay(path, replay, report, ReplayOptions{});
}

Status Journal::replay(
    const std::string& path,
    const std::function<Status(const JournalRecord&)>& replay,
    ReplayReport* report, const ReplayOptions& options) {
  ReplayReport local_report;
  if (report == nullptr) report = &local_report;
  *report = ReplayReport{};

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::success();  // nothing to replay
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  report->valid_prefix_bytes = file_size;

  // Stream line by line: peak memory is one record, not the whole file.
  std::string line;
  std::size_t offset = 0;  // byte offset where `line` starts
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t line_start = offset;
    // getline consumed a '\n' unless this line runs to end-of-file, so a
    // line without one is necessarily the file's final line.
    const bool newline_terminated = line_start + line.size() < file_size;
    offset = line_start + line.size() + (newline_terminated ? 1 : 0);
    if (line.empty()) continue;

    std::string why;
    util::Result<std::string> payload = unframe(line);
    util::Result<JournalRecord> record{JournalRecord{}};
    if (!payload.ok()) {
      why = payload.error().message;
    } else {
      record = decode(payload.value());
      if (!record.ok()) why = record.error().message;
    }

    if (!why.empty()) {
      // A bad line with no trailing newline is the signature of a crash
      // mid-append: recover the prefix, drop the tail.  Anywhere else
      // the file is genuinely corrupt — refuse to guess (strict), or
      // quarantine the line and keep going (salvage).
      if (!newline_terminated) {
        report->torn_tail = true;
        report->torn_tail_line = line_number;
        report->valid_prefix_bytes = line_start;
        report->detail = "crash-truncated final record dropped (" + why + ")";
        return Status::success();
      }
      if (options.salvage) {
        std::ofstream quarantine(options.quarantine_path,
                                 std::ios::binary | std::ios::app);
        quarantine << "# " << path << " line " << line_number << ": " << why
                   << '\n'
                   << line << '\n';
        if (!quarantine) {
          util::Log::warn("cannot write quarantine sidecar " +
                          options.quarantine_path);
        }
        ++report->quarantined_records;
        if (report->first_quarantined_line == 0) {
          report->first_quarantined_line = line_number;
        }
        report->quarantine_path = options.quarantine_path;
        JournalMetrics::get().quarantined_records.add();
        util::Log::warn("journal " + path + " line " +
                        std::to_string(line_number) + " quarantined: " + why);
        continue;
      }
      return Status(ErrorCode::kParseError,
                    "journal line " + std::to_string(line_number) +
                        " corrupt: " + why);
    }

    const Status status = replay(record.value());
    if (!status.ok()) return status;
    ++report->records_applied;
  }
  return Status::success();
}

Status Journal::rewrite(const std::vector<JournalRecord>& records) {
  JournalMetrics& metrics = JournalMetrics::get();
  metrics.compact_runs.add();
  const Status result = rewrite_impl(records);
  if (result.ok()) {
    metrics.compact_records.add(records.size());
  } else {
    metrics.compact_failures.add();
    metrics.io_errors.add();
  }
  return result;
}

Status Journal::rewrite_impl(const std::vector<JournalRecord>& records) {
  // Quiesce: every frame enqueued before this call must be on disk,
  // or the writer would later append stale frames onto the fresh file.
  // (The owning Database additionally gates mutations for the duration,
  // so nothing new is enqueued; holding mutex_ below keeps the writer
  // thread parked even if something slips through.)
  if (queue_ != nullptr) {
    const Status drained = sync(queue_->pushed());
    if (!drained.ok()) return drained;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) {
    return Status(ErrorCode::kDataLoss, "journal has no path");
  }
  Vfs& fs = vfs();
  const std::string temp_path = path_ + ".tmp";
  {
    util::Result<std::unique_ptr<File>> opened = fs.open_trunc(temp_path);
    if (!opened.ok()) {
      return Status(ErrorCode::kDataLoss,
                    "cannot open " + temp_path + ": " + opened.error().message);
    }
    const std::unique_ptr<File> temp = std::move(opened).value();
    for (const JournalRecord& record : records) {
      const Status wrote = temp->append(frame(encode(record)) + "\n");
      if (!wrote.ok()) {
        return Status(ErrorCode::kDataLoss,
                      "write failed: " + wrote.error().message);
      }
    }
    // fsync the temp *before* the rename: otherwise the rename can become
    // durable while the contents are not, and a crash leaves a renamed
    // but empty/partial journal — losing every committed record.
    const Status synced = temp->sync();
    if (!synced.ok()) {
      return Status(ErrorCode::kDataLoss,
                    "fsync failed: " + synced.error().message);
    }
  }
  if (out_ != nullptr) {
    out_->close();
    out_.reset();
  }
  const Status renamed = fs.rename(temp_path, path_);
  if (!renamed.ok()) {
    open_flag_.store(false, std::memory_order_release);
    return Status(ErrorCode::kDataLoss,
                  "rename failed: " + renamed.error().message);
  }
  // fsync the parent directory: until the directory entry is durable a
  // crash can resurrect the old journal (with stale, already-compacted
  // history) in place of the new one.
  const Status dir_synced = fs.sync_parent_dir(path_);
  if (!dir_synced.ok()) {
    open_flag_.store(false, std::memory_order_release);
    return Status(ErrorCode::kDataLoss,
                  "directory fsync failed: " + dir_synced.error().message);
  }
  util::Result<std::unique_ptr<File>> reopened = fs.open_append(path_);
  if (!reopened.ok()) {
    open_flag_.store(false, std::memory_order_release);
    return Status(ErrorCode::kDataLoss,
                  "cannot reopen journal: " + reopened.error().message);
  }
  out_ = std::move(reopened).value();
  return Status::success();
}

}  // namespace upin::docdb
