// journal.hpp — append-only JSONL persistence with a group-commit writer.
//
// Every committed mutation is appended as one JSON line; reopening a
// database replays the journal.  `compact()` rewrites the file from the
// live state.  This is the durability story behind the paper's "continuous
// measurements require continuous functioning" requirement (§4.1.2):
// a crash during a batch loses only that (uncommitted) batch.
//
// Two write paths:
//  * append()/flush() — synchronous, caller-thread I/O (tools, tests).
//  * the group-commit pipeline — producers enqueue() pre-encoded record
//    payloads into a bounded MPSC queue and sync() on a durability
//    ticket; a dedicated writer thread drains the queue in groups and
//    commits each group with ONE write + ONE fsync.  This takes framing,
//    CRC and file I/O off the mutating threads (and off the collection
//    lock), which is what lets parallel surveys batch their storage the
//    way the paper batches MongoDB insertions (§4.2.2).
//
// Integrity: every appended record carries a CRC-32 prefix
// ("crc32=XXXXXXXX <json>"), verified on replay, so torn or bit-flipped
// lines are *detected* rather than silently parsed.  Checksum-less lines
// (journals written before this format) still replay unverified.  A
// corrupt *final* line that is not newline-terminated is a torn tail —
// the signature of a crash mid-append — and replay recovers the intact
// prefix; corruption anywhere else is a hard kParseError.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "docdb/document.hpp"
#include "docdb/vfs.hpp"
#include "util/bounded_queue.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// One replayed journal record.
struct JournalRecord {
  std::string op;          ///< "create_collection" | "create_index" | "insert" | "update" | "delete"
  std::string collection;
  std::string id;          ///< document id (insert/update/delete)
  std::string field;       ///< index field (create_index)
  Document document;       ///< post-image (insert/update)
};

/// What replay() found, beyond success/failure.
struct ReplayReport {
  std::size_t records_applied = 0;
  /// A crash-truncated final record was detected and dropped; everything
  /// before it was replayed.  Recoverable — replay still succeeds.
  bool torn_tail = false;
  std::size_t torn_tail_line = 0;  ///< 1-based line number of the torn record
  /// Byte length of the intact prefix (= where the torn record starts).
  /// Truncate the file to this length before appending again, or the next
  /// record would concatenate onto the garbage tail.
  std::size_t valid_prefix_bytes = 0;
  std::string detail;              ///< human-readable account of the tail
  // ---- salvage mode only ----
  std::size_t quarantined_records = 0;  ///< corrupt mid-file lines dropped
  std::size_t first_quarantined_line = 0;  ///< 1-based, 0 if none
  std::string quarantine_path;     ///< sidecar written to (empty if none)
};

/// Recovery policy for replay().
struct ReplayOptions {
  /// Strict (false, default): a corrupt newline-terminated line anywhere
  /// fails hard with kParseError.  Salvage (true): such lines are
  /// appended verbatim to the `quarantine_path` sidecar — with a header
  /// naming the source line and the reason — and replay continues with
  /// the rest.  The torn-tail contract is unchanged in both modes.
  bool salvage = false;
  std::string quarantine_path;  ///< required when salvage is on
};

class Journal;

/// A durability ticket handed out at a sync point.  `wait()` blocks
/// until the writer thread has committed every frame enqueued at or
/// before `seq` — i.e. the group containing the caller's records.  A
/// default-constructed ticket (no journal attached) waits on nothing.
struct SyncTicket {
  Journal* journal = nullptr;
  std::uint64_t seq = 0;

  [[nodiscard]] util::Status wait() const;
};

/// Append-only JSON-lines journal.
class Journal {
 public:
  /// Default bound on the writer queue; producers block (backpressure)
  /// when this many frames are waiting for the writer thread.
  static constexpr std::size_t kDefaultQueueDepth = 1024;

  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if needed) the journal at `path` for appending.
  /// `vfs` is the storage backend (nullptr = the real filesystem); it
  /// must outlive the journal.
  [[nodiscard]] util::Status open(const std::string& path,
                                  Vfs* vfs = nullptr);
  [[nodiscard]] bool is_open() const noexcept;
  /// Stop the writer thread (draining and committing every queued
  /// frame), then close the file.
  void close();

  // ---- synchronous path (tools, tests) -------------------------------

  /// Append one record to the OS (visible, not yet durable — call
  /// flush() at a durability point; batches share one fsync, see §4.2.2).
  [[nodiscard]] util::Status append(const JournalRecord& record);

  /// Make appended records durable (fsync through the VFS).
  [[nodiscard]] util::Status flush();

  // ---- group-commit pipeline -----------------------------------------

  /// Start the dedicated writer thread with a bounded queue of
  /// `queue_depth` frames.  Idempotent while running.
  void start_writer(std::size_t queue_depth = kDefaultQueueDepth);
  [[nodiscard]] bool writer_running() const noexcept;

  /// Hand a pre-encoded record payload (see the encode_* helpers) to the
  /// writer thread.  Blocks while the queue is full (backpressure).
  /// Returns the frame's 1-based sequence number, or 0 if the pipeline
  /// is not accepting frames (no writer, or closed).
  [[nodiscard]] std::uint64_t enqueue(std::string payload);

  /// Sequence number of the most recently enqueued frame (0 if none).
  [[nodiscard]] std::uint64_t enqueued_seq() const;

  /// Block until every frame with sequence <= `seq` has been committed
  /// (one group write + flush covers many frames).  Any writer-thread
  /// I/O error is sticky and is reported by the next — and every later —
  /// sync() call.
  [[nodiscard]] util::Status sync(std::uint64_t seq);

  // ---- record payload encoders ---------------------------------------
  // One JSON encode per mutation, done by the mutating thread *before*
  // framing; the writer thread adds the CRC frame.  The wrapper object
  // is assembled directly so the document is serialized exactly once
  // and never deep-copied into an intermediate record.

  [[nodiscard]] static std::string encode_insert(const std::string& collection,
                                                 const std::string& id,
                                                 const Document& document);
  [[nodiscard]] static std::string encode_update(const std::string& collection,
                                                 const std::string& id,
                                                 const Document& document);
  [[nodiscard]] static std::string encode_delete(const std::string& collection,
                                                 const std::string& id);
  [[nodiscard]] static std::string encode_create_collection(
      const std::string& collection);
  /// Index-declaration meta-record ("create_index"); `field_spec` is the
  /// canonical comma-joined declaration, replayed via create_index().
  [[nodiscard]] static std::string encode_create_index(
      const std::string& collection, const std::string& field_spec);

  /// Replay an existing journal file through `replay`, streaming one
  /// line at a time (peak memory is one record, not the file).
  /// Per-record CRCs are verified when present.  A corrupt final line
  /// without a trailing newline is a *torn tail* (crash mid-append): the
  /// intact prefix is replayed, the tail is dropped, and `report`
  /// (optional) says so.  Corruption anywhere else — including a
  /// newline-terminated corrupt last line — fails hard with kParseError,
  /// with everything before the bad line already replayed.  A missing
  /// file replays nothing.
  [[nodiscard]] static util::Status replay(
      const std::string& path,
      const std::function<util::Status(const JournalRecord&)>& replay,
      ReplayReport* report = nullptr);

  /// Replay with an explicit recovery policy (see ReplayOptions): salvage
  /// mode quarantines corrupt mid-file records instead of failing hard.
  [[nodiscard]] static util::Status replay(
      const std::string& path,
      const std::function<util::Status(const JournalRecord&)>& replay,
      ReplayReport* report, const ReplayOptions& options);

  /// Atomically replace the journal contents with `records`.  Quiesces
  /// the writer pipeline first (every frame enqueued before the call is
  /// committed before the swap — the file mutex then keeps the writer
  /// parked for the duration), writes the temp file, fsyncs it, renames
  /// it over the journal and fsyncs the parent directory, so no crash
  /// point can lose committed records or resurrect the old journal.
  [[nodiscard]] util::Status rewrite(const std::vector<JournalRecord>& records);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string encode(const JournalRecord& record);
  [[nodiscard]] util::Status rewrite_impl(
      const std::vector<JournalRecord>& records);
  void writer_loop();
  void stop_writer();

  /// Backend in use (never null after open()).
  [[nodiscard]] Vfs& vfs() const noexcept {
    return vfs_ == nullptr ? Vfs::real() : *vfs_;
  }

  std::string path_;
  Vfs* vfs_ = nullptr;                ///< storage seam; not owned
  std::unique_ptr<File> out_;
  std::mutex mutex_;                  ///< guards out_ (file I/O)
  std::atomic<bool> open_flag_{false};

  // Group-commit pipeline state.
  std::unique_ptr<util::BoundedQueue<std::string>> queue_;
  std::thread writer_;
  std::mutex sync_mutex_;             ///< guards flushed_seq_/writer_status_
  std::condition_variable sync_cv_;
  std::uint64_t flushed_seq_ = 0;
  util::Status writer_status_;        ///< sticky first writer error
};

}  // namespace upin::docdb
