// journal.hpp — append-only JSONL persistence.
//
// Every committed mutation is appended as one JSON line; reopening a
// database replays the journal.  `compact()` rewrites the file from the
// live state.  This is the durability story behind the paper's "continuous
// measurements require continuous functioning" requirement (§4.1.2):
// a crash during a batch loses only that (uncommitted) batch.
#pragma once

#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "docdb/document.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// One replayed journal record.
struct JournalRecord {
  std::string op;          ///< "create_collection" | "create_index" | "insert" | "update" | "delete"
  std::string collection;
  std::string id;          ///< document id (insert/update/delete)
  std::string field;       ///< index field (create_index)
  Document document;       ///< post-image (insert/update)
};

/// Append-only JSON-lines journal.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if needed) the journal at `path` for appending.
  [[nodiscard]] util::Status open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept;
  void close();

  /// Append one record to the OS buffer (no flush — call flush() at a
  /// durability point; batches share one flush, see §4.2.2).
  [[nodiscard]] util::Status append(const JournalRecord& record);

  /// Flush buffered records to the file.
  [[nodiscard]] util::Status flush();

  /// Replay an existing journal file through `replay`; stops with
  /// kParseError on the first corrupt line (everything before it stands,
  /// mirroring crash-truncated tails).  A missing file replays nothing.
  [[nodiscard]] static util::Status replay(
      const std::string& path,
      const std::function<util::Status(const JournalRecord&)>& replay);

  /// Atomically replace the journal contents with `records`
  /// (write temp + rename).
  [[nodiscard]] util::Status rewrite(const std::vector<JournalRecord>& records);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string encode(const JournalRecord& record);

  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace upin::docdb
