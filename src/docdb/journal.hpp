// journal.hpp — append-only JSONL persistence.
//
// Every committed mutation is appended as one JSON line; reopening a
// database replays the journal.  `compact()` rewrites the file from the
// live state.  This is the durability story behind the paper's "continuous
// measurements require continuous functioning" requirement (§4.1.2):
// a crash during a batch loses only that (uncommitted) batch.
//
// Integrity: every appended record carries a CRC-32 prefix
// ("crc32=XXXXXXXX <json>"), verified on replay, so torn or bit-flipped
// lines are *detected* rather than silently parsed.  Checksum-less lines
// (journals written before this format) still replay unverified.  A
// corrupt *final* line that is not newline-terminated is a torn tail —
// the signature of a crash mid-append — and replay recovers the intact
// prefix; corruption anywhere else is a hard kParseError.
#pragma once

#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "docdb/document.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// One replayed journal record.
struct JournalRecord {
  std::string op;          ///< "create_collection" | "create_index" | "insert" | "update" | "delete"
  std::string collection;
  std::string id;          ///< document id (insert/update/delete)
  std::string field;       ///< index field (create_index)
  Document document;       ///< post-image (insert/update)
};

/// What replay() found, beyond success/failure.
struct ReplayReport {
  std::size_t records_applied = 0;
  /// A crash-truncated final record was detected and dropped; everything
  /// before it was replayed.  Recoverable — replay still succeeds.
  bool torn_tail = false;
  std::size_t torn_tail_line = 0;  ///< 1-based line number of the torn record
  /// Byte length of the intact prefix (= where the torn record starts).
  /// Truncate the file to this length before appending again, or the next
  /// record would concatenate onto the garbage tail.
  std::size_t valid_prefix_bytes = 0;
  std::string detail;              ///< human-readable account of the tail
};

/// Append-only JSON-lines journal.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if needed) the journal at `path` for appending.
  [[nodiscard]] util::Status open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept;
  void close();

  /// Append one record to the OS buffer (no flush — call flush() at a
  /// durability point; batches share one flush, see §4.2.2).
  [[nodiscard]] util::Status append(const JournalRecord& record);

  /// Flush buffered records to the file.
  [[nodiscard]] util::Status flush();

  /// Replay an existing journal file through `replay`.  Per-record CRCs
  /// are verified when present.  A corrupt final line without a trailing
  /// newline is a *torn tail* (crash mid-append): the intact prefix is
  /// replayed, the tail is dropped, and `report` (optional) says so.
  /// Corruption anywhere else — including a newline-terminated corrupt
  /// last line — fails hard with kParseError, with everything before the
  /// bad line already replayed.  A missing file replays nothing.
  [[nodiscard]] static util::Status replay(
      const std::string& path,
      const std::function<util::Status(const JournalRecord&)>& replay,
      ReplayReport* report = nullptr);

  /// Atomically replace the journal contents with `records`
  /// (write temp + rename).
  [[nodiscard]] util::Status rewrite(const std::vector<JournalRecord>& records);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string encode(const JournalRecord& record);

  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace upin::docdb
