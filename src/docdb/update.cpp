#include "docdb/update.hpp"

#include <string>

#include "util/strings.hpp"

namespace upin::docdb {

using util::ErrorCode;
using util::Status;
using util::Value;

namespace {

/// Navigate to the parent object of a dotted path, creating intermediate
/// objects; returns nullptr when an intermediate is a non-object.
Value* parent_of(Document& doc, std::string_view dotted, std::string& leaf) {
  Value* current = &doc;
  std::string_view rest = dotted;
  for (;;) {
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) {
      leaf.assign(rest);
      return current;
    }
    const std::string_view head = rest.substr(0, dot);
    rest = rest.substr(dot + 1);
    if (!current->is_object() && !current->is_null()) return nullptr;
    current = &(*current)[head];
    if (current->is_null()) *current = Value(util::JsonObject{});
    if (!current->is_object()) return nullptr;
  }
}

bool touches_id(std::string_view path) noexcept {
  return path == kIdField;
}

Status apply_set(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, value] : fields) {
    if (touches_id(path)) {
      return Status(ErrorCode::kInvalidArgument, "_id is immutable");
    }
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "path traverses a non-object: " + path);
    }
    (*parent)[leaf] = value;
  }
  return Status::success();
}

Status apply_unset(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, unused] : fields) {
    if (touches_id(path)) {
      return Status(ErrorCode::kInvalidArgument, "_id is immutable");
    }
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent != nullptr && parent->is_object()) {
      parent->as_object().erase(leaf);
    }
  }
  return Status::success();
}

Status apply_inc(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, delta] : fields) {
    if (touches_id(path)) {
      return Status(ErrorCode::kInvalidArgument, "_id is immutable");
    }
    if (!delta.is_number()) {
      return Status(ErrorCode::kInvalidArgument, "$inc requires a number");
    }
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "path traverses a non-object: " + path);
    }
    Value& slot = (*parent)[leaf];
    if (slot.is_null()) {
      slot = delta;
    } else if (slot.is_int() && delta.is_int()) {
      slot = Value(slot.as_int() + delta.as_int());
    } else if (slot.is_number()) {
      slot = Value(slot.as_double() + delta.as_double());
    } else {
      return Status(ErrorCode::kInvalidArgument,
                    "$inc target is not numeric: " + path);
    }
  }
  return Status::success();
}

Status apply_push(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, value] : fields) {
    if (touches_id(path)) {
      return Status(ErrorCode::kInvalidArgument, "_id is immutable");
    }
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "path traverses a non-object: " + path);
    }
    Value& slot = (*parent)[leaf];
    if (slot.is_null()) slot = Value(Value::Array{});
    if (!slot.is_array()) {
      return Status(ErrorCode::kInvalidArgument,
                    "$push target is not an array: " + path);
    }
    slot.as_array().push_back(value);
  }
  return Status::success();
}

Status apply_pull(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, value] : fields) {
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent == nullptr || !parent->is_object()) continue;
    Value* slot = parent->as_object().find(leaf);
    if (slot == nullptr || !slot->is_array()) continue;
    auto& array = slot->as_array();
    std::erase_if(array, [&](const Value& element) { return element == value; });
  }
  return Status::success();
}

Status apply_rename(Document& doc, const util::JsonObject& fields) {
  for (const auto& [path, new_name] : fields) {
    if (touches_id(path) ||
        (new_name.is_string() && touches_id(new_name.as_string()))) {
      return Status(ErrorCode::kInvalidArgument, "_id is immutable");
    }
    if (!new_name.is_string()) {
      return Status(ErrorCode::kInvalidArgument, "$rename requires a string");
    }
    std::string leaf;
    Value* parent = parent_of(doc, path, leaf);
    if (parent == nullptr || !parent->is_object()) continue;
    Value* slot = parent->as_object().find(leaf);
    if (slot == nullptr) continue;
    Value moved = *slot;
    parent->as_object().erase(leaf);
    std::string new_leaf;
    Value* new_parent = parent_of(doc, new_name.as_string(), new_leaf);
    if (new_parent == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad $rename destination: " + new_name.as_string());
    }
    (*new_parent)[new_leaf] = std::move(moved);
  }
  return Status::success();
}

}  // namespace

Status apply_update(Document& doc, const Value& update) {
  if (!update.is_object()) {
    return Status(ErrorCode::kInvalidArgument, "update must be an object");
  }

  bool has_operators = false;
  for (const auto& [key, unused] : update.as_object()) {
    if (!key.empty() && key[0] == '$') {
      has_operators = true;
      break;
    }
  }

  if (!has_operators) {
    // Full replacement, preserving _id.
    if (const Value* new_id = update.get(kIdField)) {
      const Value* old_id = doc.get(kIdField);
      if (old_id == nullptr || !(*new_id == *old_id)) {
        return Status(ErrorCode::kInvalidArgument, "_id is immutable");
      }
    }
    const Value* old_id = doc.get(kIdField);
    Document replacement = update;
    if (old_id != nullptr && replacement.get(kIdField) == nullptr) {
      // Keep the identity even when the replacement omits it.
      util::JsonObject with_id;
      with_id.set(std::string(kIdField), *old_id);
      for (const auto& [key, value] : replacement.as_object()) {
        with_id.set(key, value);
      }
      replacement = Value(std::move(with_id));
    }
    doc = std::move(replacement);
    return Status::success();
  }

  // Operator-based update: validate-and-apply against a scratch copy so a
  // failing operator leaves the document untouched.
  Document scratch = doc;
  for (const auto& [op, fields] : update.as_object()) {
    if (!fields.is_object()) {
      return Status(ErrorCode::kInvalidArgument,
                    op + " requires an object of fields");
    }
    Status status = Status::success();
    if (op == "$set") {
      status = apply_set(scratch, fields.as_object());
    } else if (op == "$unset") {
      status = apply_unset(scratch, fields.as_object());
    } else if (op == "$inc") {
      status = apply_inc(scratch, fields.as_object());
    } else if (op == "$push") {
      status = apply_push(scratch, fields.as_object());
    } else if (op == "$pull") {
      status = apply_pull(scratch, fields.as_object());
    } else if (op == "$rename") {
      status = apply_rename(scratch, fields.as_object());
    } else {
      status = Status(ErrorCode::kInvalidArgument, "unknown operator " + op);
    }
    if (!status.ok()) return status;
  }
  doc = std::move(scratch);
  return Status::success();
}

}  // namespace upin::docdb
