// update.hpp — Mongo-style update documents.
//
// Supported operators: $set, $unset, $inc, $push, $pull, $rename.
// A bare object without $-operators replaces the document (keeping _id).
#pragma once

#include "docdb/document.hpp"
#include "util/result.hpp"

namespace upin::docdb {

/// Apply `update` to `doc` in place.  `_id` is immutable: attempts to
/// modify it fail with kInvalidArgument and leave `doc` untouched.
[[nodiscard]] util::Status apply_update(Document& doc,
                                        const util::Value& update);

}  // namespace upin::docdb
