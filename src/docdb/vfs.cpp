#include "docdb/vfs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace upin::docdb {

using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

/// write(2) until done, retrying EINTR and kernel short writes.
Status write_all(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(ErrorCode::kDataLoss,
                    "write failed: " + path + ": " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::success();
}

std::string parent_dir(const std::string& path) {
  const std::string parent = std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

/// POSIX file handle: unbuffered writes, real fsync.
class RealFile final : public File {
 public:
  RealFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealFile() override { close(); }

  Status append(std::string_view data) override {
    if (fd_ < 0) return Status(ErrorCode::kDataLoss, "file closed: " + path_);
    return write_all(fd_, data.data(), data.size(), path_);
  }

  Status flush() override { return Status::success(); }  // unbuffered

  Status sync() override {
    if (fd_ < 0) return Status(ErrorCode::kDataLoss, "file closed: " + path_);
    if (::fsync(fd_) != 0) {
      return Status(ErrorCode::kDataLoss,
                    "fsync failed: " + path_ + ": " + std::strerror(errno));
    }
    return Status::success();
  }

  void close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool is_open() const noexcept override { return fd_ >= 0; }

 private:
  int fd_;
  std::string path_;
};

Result<std::unique_ptr<File>> open_real(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return util::Error{ErrorCode::kDataLoss,
                       "cannot open " + path + ": " + std::strerror(errno)};
  }
  return std::unique_ptr<File>(new RealFile(fd, path));
}

}  // namespace

Vfs& Vfs::real() {
  static RealVfs instance;
  return instance;
}

Result<std::unique_ptr<File>> RealVfs::open_append(const std::string& path) {
  return open_real(path, O_WRONLY | O_CREAT | O_APPEND);
}

Result<std::unique_ptr<File>> RealVfs::open_trunc(const std::string& path) {
  return open_real(path, O_WRONLY | O_CREAT | O_TRUNC);
}

Status RealVfs::rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status(ErrorCode::kDataLoss,
                  "rename " + from + " -> " + to + ": " + std::strerror(errno));
  }
  return Status::success();
}

Status RealVfs::sync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status(ErrorCode::kDataLoss,
                  "cannot open directory " + dir + ": " + std::strerror(errno));
  }
  Status result = Status::success();
  if (::fsync(fd) != 0) {
    result = Status(ErrorCode::kDataLoss,
                    "fsync directory " + dir + ": " + std::strerror(errno));
  }
  ::close(fd);
  return result;
}

Status RealVfs::truncate(const std::string& path, std::uint64_t size) {
  std::error_code error;
  std::filesystem::resize_file(path, size, error);
  if (error) {
    return Status(ErrorCode::kDataLoss,
                  "truncate " + path + ": " + error.message());
  }
  return Status::success();
}

Status RealVfs::remove(const std::string& path) {
  std::error_code error;
  std::filesystem::remove(path, error);
  if (error) {
    return Status(ErrorCode::kDataLoss,
                  "remove " + path + ": " + error.message());
  }
  return Status::success();
}

// ------------------------------------------------------------- FaultVfs

/// A FaultFile writes through to a real fd so readers (replay, post-crash
/// reopen) see ordinary files, while the owner mirrors flushed/durable
/// images for crash accounting.
class FaultFile final : public File {
 public:
  FaultFile(FaultVfs* owner, std::string path, int fd)
      : owner_(owner), path_(std::move(path)), fd_(fd) {}
  ~FaultFile() override { close(); }

  Status append(std::string_view data) override {
    if (fd_ < 0) return Status(ErrorCode::kDataLoss, "file closed: " + path_);
    return owner_->file_append(path_, fd_, data);
  }

  Status flush() override { return Status::success(); }

  Status sync() override {
    if (fd_ < 0) return Status(ErrorCode::kDataLoss, "file closed: " + path_);
    return owner_->file_sync(path_);
  }

  void close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  [[nodiscard]] bool is_open() const noexcept override { return fd_ >= 0; }

 private:
  FaultVfs* owner_;
  std::string path_;
  int fd_;
};

namespace {

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_whole_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

}  // namespace

FaultVfs::FaultVfs(FaultVfsConfig config) : config_(config) {}

std::size_t FaultVfs::op_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

bool FaultVfs::crashed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultVfs::crash_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!crashed_) crash_locked();
}

Status FaultVfs::begin_op(const char* what) {
  if (crashed_) {
    return Status(ErrorCode::kDataLoss,
                  std::string("vfs crashed (") + what + " refused)");
  }
  ++ops_;
  if (config_.crash_at_op != 0 && ops_ == config_.crash_at_op) {
    crash_locked();
    return Status(ErrorCode::kDataLoss,
                  std::string("simulated crash at ") + what);
  }
  return Status::success();
}

FaultVfs::FileState& FaultVfs::track_locked(const std::string& path) {
  auto it = states_.find(path);
  if (it == states_.end()) {
    // Pre-existing contents (e.g. a journal from an earlier run segment)
    // are assumed durable: they survived however that run ended.
    FileState state;
    if (std::filesystem::exists(path)) {
      state.durable = read_whole_file(path);
      state.flushed = state.durable;
      state.durable_exists = true;
    }
    it = states_.emplace(path, std::move(state)).first;
  }
  return it->second;
}

void FaultVfs::crash_locked() {
  // 1. Renames whose directory was never synced roll back: the old
  //    directory entry resurfaces.  Newest first, so chains unwind.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    states_[it->from] = it->from_state;
    if (it->to_state.has_value()) {
      states_[it->to] = *it->to_state;
    } else {
      states_.erase(it->to);
      std::error_code ignored;
      std::filesystem::remove(it->to, ignored);
    }
  }
  pending_renames_.clear();

  // 2. Freeze every tracked file: durable image plus a deterministic
  //    fraction (quarters, varied by the crash point so a matrix sweeps
  //    whole-tail, partial-tail and no-tail survivals) of the unsynced
  //    tail — the torn-tail signature a kernel leaves.
  const std::size_t quarters = ops_ % 4;
  for (auto& [path, state] : states_) {
    std::string image = state.durable;
    if (state.flushed.size() > state.durable.size() &&
        state.flushed.compare(0, state.durable.size(), state.durable) == 0) {
      const std::size_t tail = state.flushed.size() - state.durable.size();
      image += state.flushed.substr(state.durable.size(), tail * quarters / 4);
    }
    if (image.empty() && !state.durable_exists) {
      std::error_code ignored;
      std::filesystem::remove(path, ignored);
    } else {
      write_whole_file(path, image);
    }
  }
  crashed_ = true;
}

Result<std::unique_ptr<File>> FaultVfs::open_append(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("open_append");
  if (!op.ok()) return util::Error{op.error()};
  track_locked(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return util::Error{ErrorCode::kDataLoss,
                       "cannot open " + path + ": " + std::strerror(errno)};
  }
  return std::unique_ptr<File>(new FaultFile(this, path, fd));
}

Result<std::unique_ptr<File>> FaultVfs::open_trunc(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("open_trunc");
  if (!op.ok()) return util::Error{op.error()};
  // Track *before* truncating, so a pre-existing durable image is
  // remembered: truncation is volatile until the next sync.
  FileState& state = track_locked(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Error{ErrorCode::kDataLoss,
                       "cannot open " + path + ": " + std::strerror(errno)};
  }
  state.flushed.clear();
  return std::unique_ptr<File>(new FaultFile(this, path, fd));
}

Status FaultVfs::file_append(const std::string& path, int fd,
                             std::string_view data) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("append");
  if (!op.ok()) return op;
  ++appends_;

  std::size_t allow = data.size();
  std::string fault;
  if (config_.short_write_at != 0 && appends_ == config_.short_write_at) {
    allow = data.size() / 2;
    fault = "short write (injected)";
  }
  if (config_.disk_budget_bytes != 0) {
    const std::uint64_t remaining =
        config_.disk_budget_bytes > bytes_appended_
            ? config_.disk_budget_bytes - bytes_appended_
            : 0;
    if (remaining < allow) {
      allow = static_cast<std::size_t>(remaining);
      fault = "no space left on device (injected)";
    }
  }

  FileState& state = track_locked(path);
  const Status wrote = write_all(fd, data.data(), allow, path);
  if (!wrote.ok()) return wrote;
  state.flushed.append(data.substr(0, allow));
  bytes_appended_ += allow;
  if (!fault.empty()) {
    return Status(ErrorCode::kDataLoss, fault + ": " + path);
  }
  return Status::success();
}

Status FaultVfs::file_sync(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("sync");
  if (!op.ok()) return op;
  ++syncs_;
  if (config_.fail_sync_at != 0 && syncs_ == config_.fail_sync_at) {
    return Status(ErrorCode::kDataLoss, "fsync failed (injected): " + path);
  }
  FileState& state = track_locked(path);
  state.durable = state.flushed;
  state.durable_exists = true;
  return Status::success();
}

Status FaultVfs::rename(const std::string& from, const std::string& to) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("rename");
  if (!op.ok()) return op;
  FileState& from_state = track_locked(from);
  PendingRename pending;
  pending.from = from;
  pending.to = to;
  pending.from_state = from_state;
  if (const auto it = states_.find(to); it != states_.end()) {
    pending.to_state = it->second;
  } else if (std::filesystem::exists(to)) {
    FileState prior;
    prior.durable = read_whole_file(to);
    prior.flushed = prior.durable;
    prior.durable_exists = true;
    pending.to_state = std::move(prior);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status(ErrorCode::kDataLoss,
                  "rename " + from + " -> " + to + ": " + std::strerror(errno));
  }
  states_[to] = std::move(from_state);
  states_.erase(from);
  pending_renames_.push_back(std::move(pending));
  return Status::success();
}

Status FaultVfs::sync_parent_dir(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("sync_parent_dir");
  if (!op.ok()) return op;
  // Directory entries are durable now: committed renames can no longer
  // roll back.  (Single-directory model — journals and their temps live
  // side by side.)
  (void)path;
  pending_renames_.clear();
  return Status::success();
}

Status FaultVfs::truncate(const std::string& path, std::uint64_t size) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("truncate");
  if (!op.ok()) return op;
  FileState& state = track_locked(path);
  std::error_code error;
  std::filesystem::resize_file(path, size, error);
  if (error) {
    return Status(ErrorCode::kDataLoss,
                  "truncate " + path + ": " + error.message());
  }
  if (state.flushed.size() > size) state.flushed.resize(size);
  return Status::success();
}

Status FaultVfs::remove(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Status op = begin_op("remove");
  if (!op.ok()) return op;
  states_.erase(path);
  std::error_code error;
  std::filesystem::remove(path, error);
  if (error) {
    return Status(ErrorCode::kDataLoss,
                  "remove " + path + ": " + error.message());
  }
  return Status::success();
}

}  // namespace upin::docdb
