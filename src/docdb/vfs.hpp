// vfs.hpp — pluggable filesystem seam under the docdb storage engine.
//
// The journal used to talk to std::ofstream directly, which made two
// things impossible: (1) honest durability — there is no fsync behind a
// stream flush, so "flushed" data could still die with the page cache —
// and (2) storage fault injection.  The paper's pipeline exists to keep
// *continuous* measurements flowing into storage (§4.1.2), and week-long
// SCIONLab campaigns cannot afford to lose a dataset to one disk hiccup,
// so the storage side gets the same treatment PR 1 gave the network side
// (`simnet::FaultPlan`): every file operation goes through a `Vfs`, and a
// deterministic `FaultVfs` can inject short writes, ENOSPC, fsync
// failures and scripted crash points.
//
// Durability model (shared by both implementations):
//   * append() — data handed to the OS (visible to readers immediately);
//   * flush()  — no-op for the unbuffered real backend, kept for
//     completeness;
//   * sync()   — data durable across a crash (fsync on the real backend).
//
// `FaultVfs` tracks, per file, the *flushed* image (what a reader sees
// now) and the *durable* image (what survives a crash).  A scripted
// crash point freezes every file to durable-prefix + a deterministic
// fraction of the unsynced tail — exactly the torn-tail signature a real
// kernel leaves — and rolls back renames whose parent directory was
// never synced.  After the crash every operation fails, so the test can
// reopen the frozen files with a fresh (real) VFS and assert recovery.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace upin::docdb {

/// A writable file handle.  Implementations are not thread-safe per se;
/// the journal serializes access under its own file mutex.
class File {
 public:
  virtual ~File() = default;

  /// Hand `data` to the OS.  On failure some prefix of `data` may have
  /// landed (short write / out of space) — the file is torn, not clean.
  [[nodiscard]] virtual util::Status append(std::string_view data) = 0;

  /// Push any user-space buffer to the OS (no-op for unbuffered backends).
  [[nodiscard]] virtual util::Status flush() = 0;

  /// Make everything appended so far durable across a crash (fsync).
  [[nodiscard]] virtual util::Status sync() = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool is_open() const noexcept = 0;
};

/// Filesystem operations the storage engine needs.  Implementations must
/// be thread-safe (the journal writer thread and mutating threads call
/// concurrently) and must outlive every Journal/Database opened on them.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Open (creating if needed) for appending.
  [[nodiscard]] virtual util::Result<std::unique_ptr<File>> open_append(
      const std::string& path) = 0;
  /// Open truncating any existing contents.
  [[nodiscard]] virtual util::Result<std::unique_ptr<File>> open_trunc(
      const std::string& path) = 0;
  /// Atomically replace `to` with `from`.  NOT durable until the parent
  /// directory is synced — a crash in between may resurrect the old file.
  [[nodiscard]] virtual util::Status rename(const std::string& from,
                                            const std::string& to) = 0;
  /// fsync the directory containing `path`, making renames/creations in
  /// it durable.
  [[nodiscard]] virtual util::Status sync_parent_dir(
      const std::string& path) = 0;
  /// Shrink `path` to `size` bytes (torn-tail truncation on recovery).
  [[nodiscard]] virtual util::Status truncate(const std::string& path,
                                              std::uint64_t size) = 0;
  [[nodiscard]] virtual util::Status remove(const std::string& path) = 0;

  /// The process-wide real (POSIX) filesystem.
  [[nodiscard]] static Vfs& real();
};

/// POSIX-backed implementation: unbuffered fd writes, real fsync.
class RealVfs final : public Vfs {
 public:
  [[nodiscard]] util::Result<std::unique_ptr<File>> open_append(
      const std::string& path) override;
  [[nodiscard]] util::Result<std::unique_ptr<File>> open_trunc(
      const std::string& path) override;
  [[nodiscard]] util::Status rename(const std::string& from,
                                    const std::string& to) override;
  [[nodiscard]] util::Status sync_parent_dir(const std::string& path) override;
  [[nodiscard]] util::Status truncate(const std::string& path,
                                      std::uint64_t size) override;
  [[nodiscard]] util::Status remove(const std::string& path) override;
};

/// Deterministic fault schedule for a FaultVfs.  All injection is off by
/// default; indices are 1-based and count operations of that kind across
/// the whole VFS (all files), so a script is reproducible regardless of
/// which file an operation lands on.
struct FaultVfsConfig {
  /// Total append budget in bytes; once exhausted further appends land a
  /// prefix and fail like ENOSPC.  0 = unlimited.
  std::uint64_t disk_budget_bytes = 0;
  /// The Nth append() lands only the first half of its data, then fails.
  std::size_t short_write_at = 0;
  /// The Nth sync() fails; the data stays volatile (lost at a crash).
  std::size_t fail_sync_at = 0;
  /// Crash *instead of* executing the Nth VFS operation: every file is
  /// frozen to its crash image and all later operations fail.
  std::size_t crash_at_op = 0;
};

/// Fault-injecting VFS.  Writes through to real files (so replay and
/// post-crash reopen read ordinary paths) while tracking durable/flushed
/// images in memory; a crash point rewrites the real files to the image a
/// kernel would have left.  Test-only: file contents are mirrored in
/// memory, so keep journals test-sized.
class FaultVfs final : public Vfs {
 public:
  explicit FaultVfs(FaultVfsConfig config = {});

  [[nodiscard]] util::Result<std::unique_ptr<File>> open_append(
      const std::string& path) override;
  [[nodiscard]] util::Result<std::unique_ptr<File>> open_trunc(
      const std::string& path) override;
  [[nodiscard]] util::Status rename(const std::string& from,
                                    const std::string& to) override;
  [[nodiscard]] util::Status sync_parent_dir(const std::string& path) override;
  [[nodiscard]] util::Status truncate(const std::string& path,
                                      std::uint64_t size) override;
  [[nodiscard]] util::Status remove(const std::string& path) override;

  /// Operations executed (or attempted) so far — run a fault-free probe
  /// first to size a crash matrix.
  [[nodiscard]] std::size_t op_count() const;
  [[nodiscard]] bool crashed() const;
  /// Trigger the crash immediately (outside the scripted schedule).
  void crash_now();

 private:
  friend class FaultFile;

  struct FileState {
    std::string durable;       ///< survives a crash
    std::string flushed;       ///< what a reader sees right now
    bool durable_exists = false;  ///< file existed at last sync (or pre-run)
  };
  struct PendingRename {
    std::string from;
    std::string to;
    FileState from_state;                  ///< rolled back to `from` at crash
    std::optional<FileState> to_state;     ///< prior `to`, if it existed
  };

  /// Count one operation; crash here if the script says so.  Caller must
  /// hold mutex_.
  [[nodiscard]] util::Status begin_op(const char* what);
  /// Freeze every file to its crash image and refuse all later work.
  /// Caller must hold mutex_.
  void crash_locked();
  /// Load (durable) on-disk contents of an untracked path.  Caller must
  /// hold mutex_.
  FileState& track_locked(const std::string& path);

  // File-handle callbacks (lock internally).
  [[nodiscard]] util::Status file_append(const std::string& path,
                                         int fd, std::string_view data);
  [[nodiscard]] util::Status file_sync(const std::string& path);

  FaultVfsConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, FileState> states_;
  std::vector<PendingRename> pending_renames_;
  std::size_t ops_ = 0;
  std::size_t appends_ = 0;
  std::size_t syncs_ = 0;
  std::uint64_t bytes_appended_ = 0;
  bool crashed_ = false;
};

}  // namespace upin::docdb
