#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "apps/host.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/bounded_queue.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace upin::fleet {

using measure::TestSuite;
using util::Result;
using util::Status;

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

[[nodiscard]] obs::Registry& fleet_registry(const FleetConfig& config) {
  return config.metrics != nullptr ? *config.metrics : obs::Registry::global();
}

[[nodiscard]] std::size_t degrade_threshold(const FleetConfig& config,
                                            const CampaignSpec& spec) {
  if (config.error_budget == 0) return SIZE_MAX;
  const std::size_t divisor = spec.priority <= 0 ? 4 : 2;
  return std::max<std::size_t>(1, config.error_budget / divisor);
}

/// One tenant's full machinery.  Everything below `lane` is owned by
/// whichever worker holds `in_flight` (the scheduler hands a tenant to
/// at most one worker at a time); `finished` is the cross-thread flag.
struct Tenant {
  explicit Tenant(std::size_t lane_depth) : lane(lane_depth) {}

  CampaignSpec spec;
  std::uint64_t seed = 0;
  std::string shard_path;
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<docdb::Database> db;
  std::unique_ptr<apps::ScionHost> host;
  std::unique_ptr<obs::SpanTracer> tracer;
  std::unique_ptr<TestSuite> suite;

  /// Unit credit lane: the feeder's only channel into the tenant.
  util::BoundedQueue<std::uint64_t> lane;
  std::atomic<bool> lane_closed{false};
  std::atomic<bool> in_flight{false};
  std::atomic<bool> finished{false};

  // Health ladder (worker-owned while in flight).
  TenantState state = TenantState::kHealthy;
  Status failure = Status::success();
  std::size_t error_score = 0;
  std::size_t watchdog_trips = 0;
  std::size_t units_run = 0;
  std::size_t last_errors = 0;
  std::size_t last_breaker_trips = 0;
  std::size_t last_probes_shed = 0;

  // Feeder-owned accounting.
  std::size_t planned = 0;
  std::size_t credits_granted = 0;
  std::size_t backpressure_rejections = 0;

  // Labeled fleet metrics (fleet registry, NOT the tenant registry — the
  // tenant registry must stay a pure function of the tenant alone).
  obs::Counter* m_units = nullptr;
  obs::Counter* m_resumed = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_watchdog = nullptr;
  obs::Counter* m_quarantines = nullptr;
  obs::Counter* m_backpressure = nullptr;
  obs::Gauge* m_state = nullptr;
};

void close_lane(Tenant& tenant) {
  if (!tenant.lane_closed.exchange(true)) tenant.lane.close();
}

void set_state(Tenant& tenant, TenantState state) {
  tenant.state = state;
  tenant.m_state->set(static_cast<std::int64_t>(state));
}

/// Build one tenant VM: split seed, private registry, own host/clock on
/// the (possibly overridden) network, own docdb shard, own suite.  A
/// failed shard open marks the tenant Failed — it never schedules, and
/// nobody else notices.
[[nodiscard]] std::unique_ptr<Tenant> build_tenant(
    const scion::ScionlabEnv& env, const FleetConfig& config,
    const CampaignSpec& spec, const std::string& shard_path) {
  auto tenant = std::make_unique<Tenant>(std::max<std::size_t>(
      1, config.lane_depth));
  tenant->spec = spec;
  tenant->seed = campaign_seed(config.seed, spec.campaign_id);
  tenant->shard_path = shard_path;
  tenant->registry = std::make_unique<obs::Registry>();

  const std::string label = std::to_string(spec.campaign_id);
  obs::Registry& fleet_reg = fleet_registry(config);
  tenant->m_units = &fleet_reg.counter("upin_fleet_units_total", label);
  tenant->m_resumed =
      &fleet_reg.counter("upin_fleet_units_resumed_total", label);
  tenant->m_shed = &fleet_reg.counter("upin_fleet_probes_shed_total", label);
  tenant->m_watchdog =
      &fleet_reg.counter("upin_fleet_watchdog_trips_total", label);
  tenant->m_quarantines =
      &fleet_reg.counter("upin_fleet_quarantines_total", label);
  tenant->m_backpressure =
      &fleet_reg.counter("upin_fleet_backpressure_total", label);
  tenant->m_state = &fleet_reg.gauge("upin_fleet_state", label);
  tenant->m_state->set(0);

  if (shard_path.empty()) {
    tenant->db = std::make_unique<docdb::Database>();
  } else {
    auto opened = docdb::Database::open(shard_path, spec.storage);
    if (!opened.ok()) {
      set_state(*tenant, TenantState::kFailed);
      tenant->failure = Status(opened.error());
      tenant->finished.store(true);
      return tenant;
    }
    tenant->db = std::move(opened).value();
  }

  tenant->host = std::make_unique<apps::ScionHost>(
      env, tenant->seed, env.user_as, "10.0.8.1",
      spec.net_config.value_or(config.net_config));

  measure::TestSuiteConfig suite = config.suite;
  if (!spec.server_ids.empty()) suite.server_ids = spec.server_ids;
  if (spec.iterations > 0) suite.iterations = spec.iterations;
  if (spec.crash_after_batches > 0) {
    suite.crash_after_batches = spec.crash_after_batches;
  }
  if (config.resume) {
    suite.resume = true;
    suite.skip_collection = true;  // paths live in the shard already
  }
  suite.registry = tenant->registry.get();
  suite.tracer = nullptr;
  if (config.tracer != nullptr) {
    tenant->tracer =
        std::make_unique<obs::SpanTracer>("campaign " + label);
    suite.tracer = tenant->tracer.get();
  }
  tenant->suite = std::make_unique<TestSuite>(*tenant->host, *tenant->db,
                                              std::move(suite));
  return tenant;
}

/// begin() the tenant's campaign (initialize + collect + plan).  Errors
/// are contained: the tenant fails, the fleet does not.
void begin_tenant(Tenant& tenant) {
  if (tenant.finished.load()) return;
  const Status begun = tenant.suite->begin();
  if (!begun.ok()) {
    set_state(tenant, TenantState::kFailed);
    tenant.failure = begun;
    tenant.finished.store(true);
    return;
  }
  tenant.planned = tenant.suite->planned_units();
}

/// Execute one scheduling step of the tenant and apply the health
/// ladder.  Returns true while the tenant should keep receiving
/// credits; false once it reached a terminal state (done, quarantined,
/// or failed).  Every input to the ladder — fault deltas, breaker
/// trips, the virtual-time watchdog — is a deterministic function of
/// the tenant's own virtual timeline, so the tenant's terminal state is
/// identical across runs, thread counts, and co-tenants.
[[nodiscard]] bool step_tenant(const FleetConfig& config, Tenant& tenant) {
  const bool shed =
      config.shed_enabled && tenant.state == TenantState::kDegraded;
  const util::SimTime before = tenant.host->clock().now();
  const Result<TestSuite::StepOutcome> outcome = tenant.suite->step(shed);
  if (!outcome.ok()) {
    // Hard campaign error (e.g. the kDataLoss crash harness): contain
    // it.  The tenant is Failed; its shard keeps whatever committed.
    set_state(tenant, TenantState::kFailed);
    tenant.failure = Status(outcome.error());
    return false;
  }
  if (outcome.value() == TestSuite::StepOutcome::kDone) {
    const Status finished = tenant.suite->finish();
    if (!finished.ok()) {
      set_state(tenant, TenantState::kFailed);
      tenant.failure = finished;
    }
    return false;
  }
  if (outcome.value() == TestSuite::StepOutcome::kSkippedResume) {
    tenant.m_resumed->add();
    return true;  // fast-forwarded checkpoints don't touch the ladder
  }

  ++tenant.units_run;
  tenant.m_units->add();

  // Stalled-tenant watchdog: a unit that burned more virtual time than
  // the deadline (retry backoff against dark servers is the classic
  // cause) counts against the error budget.
  if (config.watchdog_deadline_s > 0.0 &&
      util::to_seconds(tenant.host->clock().now() - before) >
          config.watchdog_deadline_s) {
    ++tenant.watchdog_trips;
    ++tenant.error_score;
    tenant.m_watchdog->add();
  }

  const measure::TestSuiteProgress& p = tenant.suite->progress();
  const std::size_t errors = p.errors.total();
  const std::size_t trips = p.breaker_trips;
  tenant.error_score += (errors - tenant.last_errors) +
                        (trips - tenant.last_breaker_trips);
  tenant.last_errors = errors;
  tenant.last_breaker_trips = trips;
  if (p.probes_shed > tenant.last_probes_shed) {
    tenant.m_shed->add(p.probes_shed - tenant.last_probes_shed);
    tenant.last_probes_shed = p.probes_shed;
  }

  if (config.error_budget > 0) {
    if (tenant.error_score >= config.error_budget) {
      set_state(tenant, TenantState::kQuarantined);
      tenant.m_quarantines->add();
      util::Log::warn(
          "fleet: campaign " + std::to_string(tenant.spec.campaign_id) +
          " quarantined (error score " + std::to_string(tenant.error_score) +
          " >= budget " + std::to_string(config.error_budget) + ")");
      return false;
    }
    if (tenant.state == TenantState::kHealthy &&
        tenant.error_score >= degrade_threshold(config, tenant.spec)) {
      set_state(tenant, TenantState::kDegraded);
      util::Log::info(
          "fleet: campaign " + std::to_string(tenant.spec.campaign_id) +
          " degraded to ping-only (error score " +
          std::to_string(tenant.error_score) + ")");
    }
  }
  return true;
}

[[nodiscard]] CampaignStatus make_status(const Tenant& tenant) {
  CampaignStatus status;
  status.campaign_id = tenant.spec.campaign_id;
  status.state = tenant.state;
  status.seed = tenant.seed;
  status.shard_path = tenant.shard_path;
  status.units_run = tenant.units_run;
  status.error_score = tenant.error_score;
  status.watchdog_trips = tenant.watchdog_trips;
  status.credits_granted = tenant.credits_granted;
  status.backpressure_rejections = tenant.backpressure_rejections;
  if (tenant.suite != nullptr) {
    status.progress = tenant.suite->progress();
    status.units_resumed = status.progress.units_skipped;
  }
  status.failure = tenant.failure;
  return status;
}

[[nodiscard]] std::size_t resolve_workers(std::size_t configured,
                                          std::size_t tenants) {
  std::size_t threads = configured;
  if (threads == 0) {
    threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, std::min(threads, tenants));
}

}  // namespace

std::string_view to_string(TenantState state) noexcept {
  switch (state) {
    case TenantState::kHealthy: return "healthy";
    case TenantState::kDegraded: return "degraded";
    case TenantState::kQuarantined: return "quarantined";
    case TenantState::kFailed: return "failed";
  }
  return "unknown";
}

std::uint64_t campaign_seed(std::uint64_t fleet_seed,
                            int campaign_id) noexcept {
  // Two splitmix64 rounds over (fleet_seed, id): adjacent campaign ids
  // land in decorrelated streams, and the pair is stable across runs —
  // a tenant's solo rerun draws the identical probe sequence.
  std::uint64_t state =
      fleet_seed + kGolden * (static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(campaign_id)) +
                             1);
  const std::uint64_t first = util::splitmix64(state);
  return first ^ util::splitmix64(state);
}

std::string shard_filename(int campaign_id) {
  return "campaign_" + std::to_string(campaign_id) + ".jsonl";
}

FleetScheduler::FleetScheduler(const scion::ScionlabEnv& env,
                               FleetConfig config)
    : env_(env), config_(std::move(config)) {}

Result<FleetResult> FleetScheduler::run(
    const std::vector<CampaignSpec>& specs) {
  if (specs.empty()) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "fleet: no campaigns"};
  }
  std::unordered_set<int> ids;
  for (const CampaignSpec& spec : specs) {
    if (!ids.insert(spec.campaign_id).second) {
      return util::Error{util::ErrorCode::kInvalidArgument,
                         "fleet: duplicate campaign_id " +
                             std::to_string(spec.campaign_id)};
    }
  }
  if (!config_.data_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.data_dir, ec);
    if (ec) {
      return util::Error{util::ErrorCode::kDataLoss,
                         "fleet: cannot create data_dir " + config_.data_dir +
                             ": " + ec.message()};
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Build + begin every tenant up front (cheap phases; the measurement
  // loops are what the workers multiplex).
  std::vector<std::unique_ptr<Tenant>> tenants;
  tenants.reserve(specs.size());
  for (const CampaignSpec& spec : specs) {
    const std::string shard =
        config_.data_dir.empty()
            ? std::string{}
            : (std::filesystem::path(config_.data_dir) /
               shard_filename(spec.campaign_id))
                  .string();
    tenants.push_back(build_tenant(env_, config_, spec, shard));
    begin_tenant(*tenants.back());
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t rr_cursor = 0;
    std::size_t finished = 0;
  };
  Shared shared;
  const std::size_t n = tenants.size();
  for (const auto& tenant : tenants) {
    if (tenant->finished.load()) {
      close_lane(*tenant);
      ++shared.finished;
    }
  }

  auto mark_finished = [&](Tenant& tenant) {
    close_lane(tenant);
    if (!tenant.finished.exchange(true)) {
      const std::lock_guard<std::mutex> lock(shared.mutex);
      ++shared.finished;
    }
    shared.cv.notify_all();
  };

  // Workers: claim the next round-robin tenant with queued credits (or a
  // drained, closed lane), run its credits sequentially on its own
  // virtual timeline, release.  A tenant is held by at most one worker
  // at a time, so campaigns stay sequential internally while the fleet
  // interleaves across tenants.
  const std::size_t worker_count = resolve_workers(config_.threads, n);
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        Tenant* claimed = nullptr;
        {
          std::unique_lock<std::mutex> lock(shared.mutex);
          // wait_for is a lost-wakeup safety net: the predicate reads
          // lane sizes that change outside this mutex.
          shared.cv.wait_for(lock, std::chrono::milliseconds(10), [&] {
            if (shared.finished >= n) return true;
            for (std::size_t k = 0; k < n; ++k) {
              const Tenant& t = *tenants[(shared.rr_cursor + k) % n];
              if (!t.finished.load() && !t.in_flight.load() &&
                  (t.lane.size() > 0 || t.lane_closed.load())) {
                return true;
              }
            }
            return false;
          });
          if (shared.finished >= n) return;
          for (std::size_t k = 0; k < n; ++k) {
            const std::size_t index = (shared.rr_cursor + k) % n;
            Tenant& t = *tenants[index];
            if (!t.finished.load() && !t.in_flight.load() &&
                (t.lane.size() > 0 || t.lane_closed.load())) {
              t.in_flight.store(true);
              shared.rr_cursor = index + 1;
              claimed = &t;
              break;
            }
          }
        }
        if (claimed == nullptr) continue;

        std::vector<std::uint64_t> credits;
        if (claimed->lane.pop_all(credits)) {
          bool alive = true;
          for (std::size_t i = 0; i < credits.size() && alive; ++i) {
            alive = step_tenant(config_, *claimed);
          }
          if (!alive) mark_finished(*claimed);
        } else {
          // Lane closed and drained: run the remainder to completion so
          // credit accounting can never strand a tenant.
          while (step_tenant(config_, *claimed)) {
          }
          mark_finished(*claimed);
        }
        claimed->in_flight.store(false);
        shared.cv.notify_all();
      }
    });
  }

  // Feeder (this thread): round-robin one unit credit per tenant per
  // pass.  try_push never blocks — a full lane is a backpressure count,
  // not a stall, so one slow tenant cannot delay anybody's grants.
  for (;;) {
    bool all_granted = true;
    bool any_granted = false;
    for (const auto& tenant : tenants) {
      Tenant& t = *tenant;
      // planned + 1: the final credit drives the kDone step that writes
      // the campaign's "final" metrics snapshot.
      if (t.finished.load() || t.credits_granted >= t.planned + 1) {
        close_lane(t);
        continue;
      }
      all_granted = false;
      bool was_full = false;
      if (t.lane.try_push(1, &was_full) != 0) {
        ++t.credits_granted;
        any_granted = true;
      } else if (was_full) {
        ++t.backpressure_rejections;
        t.m_backpressure->add();
      }
    }
    if (any_granted) shared.cv.notify_all();
    if (all_granted) break;
    if (!any_granted) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (const auto& tenant : tenants) close_lane(*tenant);
  for (std::thread& worker : workers) worker.join();

  // Deterministic tracer merge: campaign order, not completion order.
  if (config_.tracer != nullptr) {
    for (const auto& tenant : tenants) {
      if (tenant->tracer != nullptr) {
        config_.tracer->adopt(std::move(*tenant->tracer));
      }
    }
  }

  FleetResult result;
  result.campaigns.reserve(n);
  for (const auto& tenant : tenants) {
    result.campaigns.push_back(make_status(*tenant));
    switch (tenant->state) {
      case TenantState::kDegraded: ++result.degraded; break;
      case TenantState::kQuarantined: ++result.quarantined; break;
      case TenantState::kFailed: ++result.failed; break;
      case TenantState::kHealthy: break;
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

Result<CampaignStatus> run_campaign_solo(const scion::ScionlabEnv& env,
                                         const FleetConfig& config,
                                         const CampaignSpec& spec,
                                         const std::string& shard_path) {
  const std::unique_ptr<Tenant> tenant =
      build_tenant(env, config, spec, shard_path);
  if (!tenant->finished.load()) {
    begin_tenant(*tenant);
  }
  if (!tenant->finished.load()) {
    // The identical per-unit loop the fleet workers run — including the
    // degradation ladder — minus the scheduler.  Blast-radius-zero is
    // defined against exactly this execution.
    while (step_tenant(config, *tenant)) {
    }
  }
  return make_status(*tenant);
}

}  // namespace upin::fleet
