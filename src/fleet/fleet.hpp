// fleet.hpp — multi-tenant campaign scheduling with fault isolation.
//
// The paper runs ONE measurement campaign per deployment (§5: a single
// test_suite.sh against the author's destination set).  Operating the
// reproduction as a service means multiplexing N independent user
// campaigns — distinct destination sets, policies and iteration targets —
// over one process, and the interesting engineering problem is the blast
// radius: a tenant whose servers are dark, whose storage is failing, or
// whose faults burn the retry budget must not slow down, corrupt, or
// even *perturb* anybody else's results.
//
// Isolation is by construction, not by policing:
//   * every campaign gets its own ScionHost (own virtual clock, own
//     control plane, own fault plan), so virtual time never leaks;
//   * its own docdb shard (`campaign_<id>.jsonl`), so journal bytes are
//     a pure function of that campaign;
//   * its own obs::Registry, so `campaign_metrics` snapshots contain
//     only its counters;
//   * its own RNG stream, split from the fleet seed by campaign id.
// The invariant the chaos harness enforces: a campaign's shard bytes in
// a fleet run under somebody else's faults equal its solo-run bytes.
//
// Fairness and degradation are the scheduler's own machinery: per-tenant
// bounded credit lanes (backpressure accounted, never blocking the
// feeder), a virtual-time watchdog per unit, an error budget driving a
// Healthy -> Degraded (bandwidth probes shed) -> Quarantined ladder, and
// per-tenant failure containment (a kDataLoss crash marks the tenant
// Failed; the fleet completes).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "simnet/network.hpp"

namespace upin::fleet {

/// One tenant campaign: what the user asked to measure, and how loudly
/// their traffic may compete with other tenants.
struct CampaignSpec {
  int campaign_id = 0;
  /// Destination servers (empty = the fleet suite config's selection).
  std::vector<int> server_ids;
  /// Target samples per path (0 = the fleet suite config's iterations).
  int iterations = 0;
  /// Scheduling priority.  Priority 0 tenants are shed earliest (their
  /// degrade threshold is budget/4 instead of budget/2).
  int priority = 1;
  /// Per-tenant network override (fault plans, error probabilities).
  /// Unset = the fleet-wide network config.  Each campaign compiles its
  /// own simnet::Network either way — fault leakage between tenants is
  /// impossible by construction.
  std::optional<simnet::NetworkConfig> net_config;
  /// Per-tenant shard storage options (FaultVfs injection point for the
  /// chaos harness).  Only honored when the fleet has a data_dir.
  docdb::DatabaseOptions storage;
  /// Fault harness passthrough: abort this tenant (kDataLoss) after N
  /// committed batches.  0 = never.
  std::size_t crash_after_batches = 0;
};

/// Fleet-wide knobs.
struct FleetConfig {
  std::uint64_t seed = 42;  ///< fleet seed; tenants get split substreams
  /// Worker threads multiplexing the tenants (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Per-tenant credit lane depth.  The feeder round-robins one unit
  /// credit per tenant per pass and never blocks: a full lane counts a
  /// backpressure rejection instead of stalling other tenants.
  std::size_t lane_depth = 4;
  /// Error budget per tenant: quarantine when the accumulated error
  /// score (post-retry failures + breaker trips + watchdog trips)
  /// reaches this.  0 disables the ladder entirely.
  std::size_t error_budget = 8;
  /// Virtual-time deadline per (destination, iteration) unit.  A unit
  /// burning more than this trips the stalled-tenant watchdog (retry
  /// backoff on dark servers is the usual cause).  0 disables.
  double watchdog_deadline_s = 900.0;
  /// Degrade tenants that burn half their budget (quarter for priority
  /// 0) to ping-only units — shed the expensive bandwidth probes first.
  bool shed_enabled = true;
  /// Fleet-wide network model; tenants may override per spec.
  simnet::NetworkConfig net_config;
  /// Shard directory.  Empty = in-memory shards (no journal files, and
  /// CampaignSpec::storage is ignored).
  std::string data_dir;
  /// Resume every tenant from its shard's campaign checkpoints.
  bool resume = false;
  /// Base per-campaign suite config (iterations / server_ids / registry /
  /// tracer fields are overridden per tenant).
  measure::TestSuiteConfig suite;
  /// Fleet-level metrics sink for the labeled `upin_fleet_*` series
  /// (null = the process-wide registry).  Kept out of the per-tenant
  /// registries so tenant snapshots stay pure.
  obs::Registry* metrics = nullptr;
  /// Optional fleet tracer: tenant span trees are grafted under it in
  /// campaign order (deterministic regardless of worker scheduling).
  obs::SpanTracer* tracer = nullptr;
};

/// The degradation ladder.  Transitions are driven purely by the
/// tenant's own virtual-time-deterministic unit deltas, so a tenant's
/// terminal state is identical across runs and thread schedules.
enum class TenantState {
  kHealthy,      ///< full units (ping + both bandwidth probes)
  kDegraded,     ///< ping-only units (bandwidth probes shed)
  kQuarantined,  ///< error budget exhausted: stopped, lane closed
  kFailed,       ///< hard campaign error (e.g. kDataLoss) — contained
};

[[nodiscard]] std::string_view to_string(TenantState state) noexcept;

/// Per-tenant outcome.
struct CampaignStatus {
  int campaign_id = 0;
  TenantState state = TenantState::kHealthy;
  std::uint64_t seed = 0;        ///< split substream actually used
  std::string shard_path;        ///< empty for in-memory shards
  std::size_t units_run = 0;     ///< units executed (incl. shed units)
  std::size_t units_resumed = 0; ///< checkpoint fast-forwards
  std::size_t error_score = 0;   ///< failures + breaker trips + watchdog
  std::size_t watchdog_trips = 0;
  std::size_t credits_granted = 0;
  /// Feeder try_push rejections on a full lane — how often this tenant
  /// ran slower than the feeder.  Wall-schedule dependent: reported for
  /// operators, never part of the determinism contract.
  std::size_t backpressure_rejections = 0;
  measure::TestSuiteProgress progress;
  util::Status failure = util::Status::success();  ///< set when kFailed
};

struct FleetResult {
  std::vector<CampaignStatus> campaigns;  ///< in spec order
  std::size_t degraded = 0;
  std::size_t quarantined = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
};

/// Tenant RNG stream: splitmix64 expansion of (fleet_seed, campaign_id).
/// Distinct ids give decorrelated streams; the same pair always yields
/// the same seed, so a tenant's solo rerun matches its in-fleet run.
[[nodiscard]] std::uint64_t campaign_seed(std::uint64_t fleet_seed,
                                          int campaign_id) noexcept;

/// Shard file name for a campaign within the fleet data_dir.
[[nodiscard]] std::string shard_filename(int campaign_id);

/// The scheduler.  One instance runs one fleet of campaigns to
/// completion; tenants that quarantine or fail are contained and the
/// fleet still returns a full per-tenant report.
class FleetScheduler {
 public:
  FleetScheduler(const scion::ScionlabEnv& env, FleetConfig config);

  /// Run every campaign.  Returns kInvalidArgument for an empty or
  /// duplicate-id spec list; individual tenant errors are contained in
  /// the per-campaign statuses, never propagated as a fleet error.
  [[nodiscard]] util::Result<FleetResult> run(
      const std::vector<CampaignSpec>& specs);

 private:
  const scion::ScionlabEnv& env_;
  FleetConfig config_;
};

/// Run ONE campaign exactly as the fleet would — same split seed, same
/// private registry, same degradation ladder, same shard layout — but
/// alone in the process.  The chaos harness compares these bytes to the
/// fleet shard bytes: equality is the blast-radius-zero gate.
/// `shard_path` empty = in-memory.
[[nodiscard]] util::Result<CampaignStatus> run_campaign_solo(
    const scion::ScionlabEnv& env, const FleetConfig& config,
    const CampaignSpec& spec, const std::string& shard_path = {});

}  // namespace upin::fleet
