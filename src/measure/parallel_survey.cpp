#include "measure/parallel_survey.hpp"

#include <chrono>
#include <memory>
#include <mutex>

#include "apps/host.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace upin::measure {

using util::Result;

namespace {

struct SurveyMetrics {
  obs::Counter& destinations_completed;
  obs::Counter& destinations_failed;
  obs::Gauge& workers_active;
  /// Per-worker wall time is real elapsed time (scheduling, disk), so
  /// this histogram — like the journal latencies — is outside the
  /// fixed-seed determinism contract.
  obs::LatencyHistogram& worker_wall_ms;

  static SurveyMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static SurveyMetrics metrics{
        registry.counter("upin_survey_destinations_completed_total"),
        registry.counter("upin_survey_destinations_failed_total"),
        registry.gauge("upin_survey_workers_active"),
        registry.histogram("upin_survey_worker_wall_ms", 0.0, 10000.0, 50),
    };
    return metrics;
  }
};

}  // namespace

Result<ParallelSurveyResult> run_parallel_survey(
    const scion::ScionlabEnv& env, docdb::Database& db,
    const ParallelSurveyConfig& config) {
  // Which destinations run?
  std::vector<int> server_ids;
  if (config.suite.server_ids.has_value()) {
    server_ids = *config.suite.server_ids;
  } else {
    for (std::size_t i = 0; i < env.servers.size(); ++i) {
      server_ids.push_back(static_cast<int>(i) + 1);
    }
  }
  if (server_ids.empty()) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "no destinations selected"};
  }

  // Shared bootstrap (availableServers + indexes) through one suite.
  {
    apps::ScionHost bootstrap_host(env, config.seed, env.user_as, "10.0.8.1",
                                   config.net_config);
    TestSuite bootstrap(bootstrap_host, db, config.suite);
    const util::Status init = bootstrap.initialize();
    if (!init.ok()) return Result<ParallelSurveyResult>(init.error());
  }

  const auto wall_start = std::chrono::steady_clock::now();

  ParallelSurveyResult result;
  std::mutex merge_mutex;
  SurveyMetrics& metrics = SurveyMetrics::get();

  // Worker span trees, indexed by destination: built concurrently, each
  // on its own replica timeline, merged in index order afterwards.
  std::vector<std::unique_ptr<obs::SpanTracer>> worker_tracers(
      server_ids.size());

  util::ThreadPool pool(config.threads);
  util::parallel_for(pool, server_ids.size(), [&](std::size_t index) {
    metrics.workers_active.add(1);
    const auto worker_start = std::chrono::steady_clock::now();
    // One replica VM per destination: own host, own virtual timeline.
    apps::ScionHost host(env, config.seed, env.user_as, "10.0.8.1",
                         config.net_config);
    TestSuiteConfig worker_config = config.suite;
    worker_config.server_ids = {{server_ids[index]}};
    worker_config.some_only = false;
    if (config.tracer != nullptr) {
      worker_tracers[index] = std::make_unique<obs::SpanTracer>(
          "destination " + std::to_string(server_ids[index]));
      worker_config.tracer = worker_tracers[index].get();
    }
    TestSuite suite(host, db, worker_config);
    const util::Status run = suite.run();
    metrics.worker_wall_ms.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - worker_start)
            .count());
    metrics.workers_active.add(-1);

    const std::lock_guard<std::mutex> lock(merge_mutex);
    if (!run.ok()) {
      ++result.destinations_failed;
      metrics.destinations_failed.add();
      util::Log::warn("parallel survey: destination " +
                      std::to_string(server_ids[index]) +
                      " failed: " + run.error().message);
      return;
    }
    metrics.destinations_completed.add();
    const TestSuiteProgress& p = suite.progress();
    result.progress.destinations_visited += p.destinations_visited;
    result.progress.paths_collected += p.paths_collected;
    result.progress.paths_deleted += p.paths_deleted;
    result.progress.path_tests_run += p.path_tests_run;
    result.progress.ping_failures += p.ping_failures;
    result.progress.bwtest_failures += p.bwtest_failures;
    result.progress.stats_inserted += p.stats_inserted;
    result.progress.batches_inserted += p.batches_inserted;
    result.progress.batches_rejected += p.batches_rejected;
    result.progress.errors.timeouts += p.errors.timeouts;
    result.progress.errors.unreachable += p.errors.unreachable;
    result.progress.errors.garbled += p.errors.garbled;
    result.progress.errors.storage += p.errors.storage;
    result.progress.errors.other += p.errors.other;
    result.progress.retry.retries += p.retry.retries;
    result.progress.retry.budget_exhausted += p.retry.budget_exhausted;
    result.progress.breaker_trips += p.breaker_trips;
    result.progress.breaker_skips += p.breaker_skips;
    result.progress.units_skipped += p.units_skipped;
    result.progress.checkpoints_recorded += p.checkpoints_recorded;
  });

  // Deterministic merge: destination subtrees attach in index order, not
  // completion order.
  if (config.tracer != nullptr) {
    for (std::unique_ptr<obs::SpanTracer>& worker : worker_tracers) {
      if (worker != nullptr) config.tracer->adopt(std::move(*worker));
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace upin::measure
