// parallel_survey.hpp — scale-out measurement (paper §4.1.1).
//
// The paper lists scalability as the test-suite's first requirement:
// "the amount of data generated grows both with the number of tests
// performed per destination, as well as the number of destinations
// tested."  A single host measures destinations sequentially (that is
// what creates the shared timeline).  When timelines per destination are
// acceptable — the common case for bulk surveys — destinations can be
// measured concurrently, one ScionHost replica per destination, all
// writing into the same (thread-safe) database.
//
// Determinism: every replica is seeded identically and starts at virtual
// time zero, so each destination's samples are bit-identical to a
// sequential single-destination campaign with the same config.  Workers
// share no mutable state except the database (internally locked) and a
// few atomic counters.
#pragma once

#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "util/thread_pool.hpp"

namespace upin::measure {

struct ParallelSurveyConfig {
  TestSuiteConfig suite;       ///< per-destination campaign parameters
  std::size_t threads = 0;     ///< 0 = hardware concurrency
  std::uint64_t seed = 42;     ///< replica seed (shared: determinism)
  simnet::NetworkConfig net_config;
  /// Optional campaign tracer.  Each worker records its own
  /// `destination <id>` subtree on its replica timeline; the subtrees are
  /// grafted under this tracer's root in destination order, so the merged
  /// tree is identical no matter how the OS scheduled the workers.
  obs::SpanTracer* tracer = nullptr;
};

struct ParallelSurveyResult {
  TestSuiteProgress progress;        ///< merged counters
  std::size_t destinations_failed = 0;
  double wall_seconds = 0.0;
};

/// Run the survey across `server_ids` (or every registered server when
/// the config leaves them unset), one worker per destination.
[[nodiscard]] util::Result<ParallelSurveyResult> run_parallel_survey(
    const scion::ScionlabEnv& env, docdb::Database& db,
    const ParallelSurveyConfig& config);

}  // namespace upin::measure
