#include "measure/retry.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace upin::measure {

using util::ErrorCode;
using util::SimTime;

namespace {

/// Fault-recovery metrics.  All of these are driven by virtual-time logic
/// (backoff schedules, breaker cooldowns), so two fixed-seed runs produce
/// identical values — they are part of the determinism contract.
struct RecoveryMetrics {
  obs::Counter& retries;
  // Per-taxonomy-class retry counters ("retries by fault class").
  obs::Counter& retries_timeout;
  obs::Counter& retries_unreachable;
  obs::Counter& retries_garbled;
  obs::Counter& retries_storage;
  obs::Counter& retries_revoked;
  obs::Counter& retries_expired;
  obs::Counter& retries_other;
  obs::Counter& budget_exhausted;
  obs::Counter& breaker_opened;
  obs::Counter& breaker_half_open;
  obs::Counter& breaker_closed;
  obs::Counter& revocation_failovers;
  obs::LatencyHistogram& failover_latency_ms;

  static RecoveryMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static RecoveryMetrics metrics{
        registry.counter("upin_measure_retries_total"),
        registry.counter("upin_measure_retries_timeout_total"),
        registry.counter("upin_measure_retries_unreachable_total"),
        registry.counter("upin_measure_retries_garbled_total"),
        registry.counter("upin_measure_retries_storage_total"),
        registry.counter("upin_measure_retries_revoked_total"),
        registry.counter("upin_measure_retries_expired_total"),
        registry.counter("upin_measure_retries_other_total"),
        registry.counter("upin_measure_retry_budget_exhausted_total"),
        registry.counter("upin_measure_breaker_open_transitions_total"),
        registry.counter("upin_measure_breaker_half_open_probes_total"),
        registry.counter("upin_measure_breaker_close_transitions_total"),
        registry.counter("upin_measure_revocation_failover_total"),
        registry.histogram("upin_measure_failover_latency_ms", 0.0, 2000.0,
                           40),
    };
    return metrics;
  }

  [[nodiscard]] obs::Counter& retries_for(FaultKind kind) noexcept {
    switch (kind) {
      case FaultKind::kTimeout: return retries_timeout;
      case FaultKind::kUnreachable: return retries_unreachable;
      case FaultKind::kGarbled: return retries_garbled;
      case FaultKind::kStorage: return retries_storage;
      case FaultKind::kRevoked: return retries_revoked;
      case FaultKind::kExpired: return retries_expired;
      case FaultKind::kOther: return retries_other;
    }
    return retries_other;
  }
};

}  // namespace

void record_retry_attempt(ErrorCode code) noexcept {
  RecoveryMetrics& metrics = RecoveryMetrics::get();
  metrics.retries.add();
  metrics.retries_for(classify_fault(code)).add();
}

void record_retry_budget_exhausted() noexcept {
  RecoveryMetrics::get().budget_exhausted.add();
}

void record_revocation_failover(SimTime latency) noexcept {
  RecoveryMetrics& metrics = RecoveryMetrics::get();
  metrics.revocation_failovers.add();
  metrics.failover_latency_ms.observe(util::to_millis(latency));
}

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kUnreachable: return "unreachable";
    case FaultKind::kGarbled: return "garbled";
    case FaultKind::kStorage: return "storage";
    case FaultKind::kRevoked: return "revoked";
    case FaultKind::kExpired: return "expired";
    case FaultKind::kOther: return "other";
  }
  return "other";
}

FaultKind classify_fault(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kTimeout:
      return FaultKind::kTimeout;
    case ErrorCode::kUnreachable:
    case ErrorCode::kNotFound:
      return FaultKind::kUnreachable;
    case ErrorCode::kBadResponse:
      return FaultKind::kGarbled;
    case ErrorCode::kDataLoss:
    case ErrorCode::kConflict:
    case ErrorCode::kPermissionDenied:
      return FaultKind::kStorage;
    case ErrorCode::kRevoked:
      return FaultKind::kRevoked;
    case ErrorCode::kExpired:
      return FaultKind::kExpired;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kParseError:
    case ErrorCode::kInternal:
      return FaultKind::kOther;
  }
  return FaultKind::kOther;
}

void FaultTaxonomy::record(FaultKind kind) noexcept {
  obs::Registry::global()
      .counter(std::string("upin_measure_faults_") + to_string(kind) +
               "_total")
      .add();
  switch (kind) {
    case FaultKind::kTimeout: ++timeouts; break;
    case FaultKind::kUnreachable: ++unreachable; break;
    case FaultKind::kGarbled: ++garbled; break;
    case FaultKind::kStorage: ++storage; break;
    case FaultKind::kRevoked: ++revoked; break;
    case FaultKind::kExpired: ++expired; break;
    case FaultKind::kOther: ++other; break;
  }
}

double RetryPolicy::backoff_s(int attempt, util::Rng& rng) const {
  const double exponent = static_cast<double>(std::max(attempt, 1) - 1);
  double backoff = initial_backoff_s * std::pow(backoff_multiplier, exponent);
  backoff = std::min(backoff, max_backoff_s);
  if (jitter_mode == BackoffJitter::kFull) {
    // AWS-style full jitter: the whole delay is drawn uniformly, so two
    // destinations failing off the same fault window desynchronize.
    backoff = rng.uniform(0.0, backoff);
  } else if (jitter_frac > 0.0) {
    backoff *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  return std::max(backoff, 0.0);
}

bool RetryPolicy::retryable(ErrorCode code) noexcept {
  switch (classify_fault(code)) {
    case FaultKind::kTimeout:
    case FaultKind::kUnreachable:
    case FaultKind::kGarbled:
      return true;
    case FaultKind::kStorage:
    case FaultKind::kOther:
      return false;
    case FaultKind::kRevoked:
    case FaultKind::kExpired:
      // The control plane *knows* the path is dead; a backoff-scale wait
      // rarely outlives the revocation.  Fail over instead of retrying.
      return false;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state(SimTime now) const noexcept {
  if (!open_) return State::kClosed;
  const double waited = util::to_seconds(now - opened_at_);
  return waited >= policy_.cooldown_s ? State::kHalfOpen : State::kOpen;
}

bool CircuitBreaker::allow(SimTime now) noexcept {
  if (!policy_.enabled) return true;
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      RecoveryMetrics::get().breaker_half_open.add();
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() noexcept {
  if (open_) RecoveryMetrics::get().breaker_closed.add();
  consecutive_failures_ = 0;
  open_ = false;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(SimTime now) noexcept {
  if (!policy_.enabled) return;
  if (probe_in_flight_) {
    // The half-open probe failed: re-open for another cooldown.
    probe_in_flight_ = false;
    open_ = true;
    opened_at_ = now;
    ++trips_;
    RecoveryMetrics::get().breaker_opened.add();
    return;
  }
  ++consecutive_failures_;
  if (!open_ && consecutive_failures_ >= policy_.trip_threshold) {
    open_ = true;
    opened_at_ = now;
    ++trips_;
    RecoveryMetrics::get().breaker_opened.add();
  }
}

void CircuitBreaker::restore(int consecutive_failures, bool open,
                             SimTime opened_at) noexcept {
  consecutive_failures_ = consecutive_failures;
  open_ = open;
  opened_at_ = opened_at;
  probe_in_flight_ = false;
}

}  // namespace upin::measure
