// retry.hpp — the campaign's fault-recovery policy layer.
//
// The seed engine logged-and-skipped every failed operation (§4.1.2's
// minimum bar).  This layer upgrades that to a first-class fault story:
//
//   * classify_fault()  — maps every ErrorCode into the four-way taxonomy
//                         the paper's fault classes suggest (timeout /
//                         unreachable / garbled / storage);
//   * RetryPolicy       — bounded attempts with exponential backoff and
//                         deterministic jitter, all in *virtual* time so a
//                         retried campaign stays bit-reproducible;
//   * CircuitBreaker    — per-destination: after enough consecutive
//                         post-retry failures, stop hammering a dark
//                         server and degrade to partial results, probing
//                         again after a cooldown (half-open).
//
// Everything here is deterministic given the virtual clock: backoff jitter
// is keyed by (operation label, attempt, virtual time), never by wall
// time or hidden mutable state, which is what lets a crashed campaign
// resume mid-stream and still produce the identical document set.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace upin::measure {

/// The campaign-level fault taxonomy (paper §4.1.2 fault classes, plus
/// the control-plane lifetime classes introduced with path revocation).
enum class FaultKind {
  kTimeout,      ///< operation exhausted its time budget
  kUnreachable,  ///< destination down / no path
  kGarbled,      ///< server answered with garbage
  kStorage,      ///< database / journal write failed
  kRevoked,      ///< path revoked by the control plane before/ during use
  kExpired,      ///< path lifetime elapsed without re-beaconing
  kOther,        ///< anything else (argument errors, internal bugs)
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Coarse ErrorCode -> taxonomy mapping.
[[nodiscard]] FaultKind classify_fault(util::ErrorCode code) noexcept;

/// Per-category failure counters, reported in TestSuiteProgress.
struct FaultTaxonomy {
  std::size_t timeouts = 0;
  std::size_t unreachable = 0;
  std::size_t garbled = 0;
  std::size_t storage = 0;
  std::size_t revoked = 0;
  std::size_t expired = 0;
  std::size_t other = 0;

  void record(FaultKind kind) noexcept;
  [[nodiscard]] std::size_t total() const noexcept {
    return timeouts + unreachable + garbled + storage + revoked + expired +
           other;
  }
};

/// How backoff jitter is drawn.
enum class BackoffJitter {
  /// Backoff scaled by U[1-j, 1+j].  Narrow band: destinations that fail
  /// together inside a shared fault window retry nearly in lockstep.
  kScaled,
  /// Full jitter (U[0, backoff]): decorrelates retry storms after a
  /// shared fault window at the cost of a smaller expected backoff.
  kFull,
};

/// Bounded-retry policy with exponential backoff in virtual time.
struct RetryPolicy {
  bool enabled = true;
  int max_attempts = 3;            ///< total tries, including the first
  double initial_backoff_s = 0.5;  ///< sleep before the second attempt
  double backoff_multiplier = 2.0;
  double max_backoff_s = 8.0;
  double jitter_frac = 0.2;        ///< kScaled: backoff scaled by U[1-j, 1+j]
  BackoffJitter jitter_mode = BackoffJitter::kScaled;
  double timeout_budget_s = 90.0;  ///< virtual-time ceiling per operation

  /// Backoff before attempt `attempt + 1` (attempt >= 1), jittered by
  /// `rng` and clamped to max_backoff_s.
  [[nodiscard]] double backoff_s(int attempt, util::Rng& rng) const;

  /// Transient failures worth retrying.  Argument, permission and parse
  /// errors are deterministic: retrying cannot help.
  [[nodiscard]] static bool retryable(util::ErrorCode code) noexcept;
};

/// Counters a retried operation feeds back to the campaign.
struct RetryStats {
  std::size_t retries = 0;           ///< re-attempts performed
  std::size_t budget_exhausted = 0;  ///< operations cut off by the budget
};

// Global-registry hooks for the retry loop, out-of-line so the template
// below does not pull the metrics layer into every includer.
void record_retry_attempt(util::ErrorCode code) noexcept;
void record_retry_budget_exhausted() noexcept;

/// A controller moved traffic off a revoked path onto a live alternative
/// without burning retry/breaker budget.  `latency` is how long traffic
/// stayed on the dead path after its revocation was delivered.
void record_revocation_failover(util::SimTime latency) noexcept;

/// Run `op` under `policy` on the shared virtual clock.  Failed transient
/// attempts back off (advancing the clock) and retry; the final attempt's
/// error is returned unchanged.  Jitter is keyed by (label, attempt,
/// now), so the schedule is a pure function of virtual time.
template <typename T>
[[nodiscard]] util::Result<T> run_with_retry(
    const RetryPolicy& policy, util::VirtualClock& clock,
    std::string_view label, RetryStats& stats,
    const std::function<util::Result<T>()>& op) {
  const util::SimTime start = clock.now();
  for (int attempt = 1;; ++attempt) {
    util::Result<T> result = op();
    if (result.ok()) return result;
    if (!policy.enabled || attempt >= policy.max_attempts ||
        !RetryPolicy::retryable(result.error().code)) {
      return result;
    }
    util::Rng jitter_rng(util::fnv1a64(label) ^
                         (static_cast<std::uint64_t>(attempt) *
                          std::uint64_t{0x9E3779B9}) ^
                         static_cast<std::uint64_t>(clock.now().count()));
    const double backoff = policy.backoff_s(attempt, jitter_rng);
    const double spent = util::to_seconds(clock.now() - start);
    if (spent + backoff > policy.timeout_budget_s) {
      ++stats.budget_exhausted;
      record_retry_budget_exhausted();
      return result;
    }
    clock.advance(util::sim_seconds(backoff));
    ++stats.retries;
    record_retry_attempt(result.error().code);
  }
}

/// Per-destination circuit breaker tuning.
struct CircuitBreakerPolicy {
  bool enabled = true;
  int trip_threshold = 5;     ///< consecutive post-retry failures to open
  double cooldown_s = 600.0;  ///< open -> half-open after this much virtual time
};

/// Classic three-state breaker driven by the virtual clock.
///
///   closed    — operations flow; consecutive failures are counted.
///   open      — operations are skipped until the cooldown elapses.
///   half-open — one probe operation is let through; success closes the
///               breaker, failure re-opens it for another cooldown.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(CircuitBreakerPolicy policy) : policy_(policy) {}

  [[nodiscard]] State state(util::SimTime now) const noexcept;

  /// May an operation proceed at `now`?  In half-open state only the
  /// first caller gets through until its outcome is recorded.
  [[nodiscard]] bool allow(util::SimTime now) noexcept;

  void record_success() noexcept;
  void record_failure(util::SimTime now) noexcept;

  [[nodiscard]] std::size_t trips() const noexcept { return trips_; }
  [[nodiscard]] int consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

  /// Snapshot / restore for campaign checkpointing: the breaker's whole
  /// observable state as (consecutive_failures, open, opened_at).
  [[nodiscard]] bool is_open() const noexcept { return open_; }
  [[nodiscard]] util::SimTime opened_at() const noexcept { return opened_at_; }
  void restore(int consecutive_failures, bool open,
               util::SimTime opened_at) noexcept;

 private:
  CircuitBreakerPolicy policy_{};
  int consecutive_failures_ = 0;
  bool open_ = false;
  bool probe_in_flight_ = false;
  util::SimTime opened_at_{};
  std::size_t trips_ = 0;
};

}  // namespace upin::measure
