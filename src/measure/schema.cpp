#include "measure/schema.hpp"

#include "util/strings.hpp"

namespace upin::measure {

using docdb::Document;
using util::ErrorCode;
using util::JsonObject;
using util::Result;
using util::Value;

std::string path_doc_id(int server_id, int path_index) {
  return std::to_string(server_id) + "_" + std::to_string(path_index);
}

std::string stats_doc_id(const std::string& path_id, util::SimTime t) {
  return path_id + "_" + util::timestamp_token(t);
}

Document server_document(int server_id, const scion::SnetAddress& addr) {
  JsonObject doc;
  doc.set("_id", Value(std::to_string(server_id)));
  doc.set("server_id", Value(server_id));
  doc.set("address", Value(addr.to_string()));
  doc.set("isd_as", Value(addr.ia.to_string()));
  doc.set("host", Value(addr.host));
  return Value(std::move(doc));
}

namespace {

Value isd_array(const std::set<std::uint16_t>& isds) {
  Value::Array array;
  for (const std::uint16_t isd : isds) {
    array.emplace_back(static_cast<std::int64_t>(isd));
  }
  return Value(std::move(array));
}

}  // namespace

Document path_document(int server_id, int path_index,
                       const scion::Path& path) {
  JsonObject doc;
  doc.set("_id", Value(path_doc_id(server_id, path_index)));
  doc.set("server_id", Value(server_id));
  doc.set("path_index", Value(path_index));
  doc.set("sequence", Value(path.sequence()));
  Value::Array hops;
  for (const scion::PathHop& hop : path.hops()) {
    hops.emplace_back(hop.ia.to_string());
  }
  doc.set("hops", Value(std::move(hops)));
  doc.set("isds", isd_array(path.isd_set()));
  doc.set("hop_count", Value(path.hop_count()));
  doc.set("mtu", Value(path.mtu()));
  doc.set("status", Value(path.status()));
  doc.set("static_latency_ms", Value(util::to_millis(path.static_latency())));
  return Value(std::move(doc));
}

Document stats_document(const StatsSample& sample) {
  JsonObject doc;
  doc.set("_id", Value(stats_doc_id(sample.path_id, sample.timestamp)));
  doc.set("path_id", Value(sample.path_id));
  doc.set("server_id", Value(sample.server_id));
  doc.set("timestamp_ms",
          Value(static_cast<std::int64_t>(sample.timestamp.count() / 1'000'000)));
  doc.set("hop_count", Value(sample.hop_count));
  Value::Array isds;
  for (const std::int64_t isd : sample.isds) isds.emplace_back(isd);
  doc.set("isds", Value(std::move(isds)));
  if (sample.latency_ms.has_value()) {
    doc.set("latency_ms", Value(*sample.latency_ms));
  }
  doc.set("loss_pct", Value(sample.loss_pct));
  if (sample.jitter_ms.has_value()) {
    doc.set("jitter_ms", Value(*sample.jitter_ms));
  }
  JsonObject bw;
  if (sample.bw_up_64.has_value()) bw.set("up_64", Value(*sample.bw_up_64));
  if (sample.bw_down_64.has_value()) bw.set("down_64", Value(*sample.bw_down_64));
  if (sample.bw_up_mtu.has_value()) bw.set("up_mtu", Value(*sample.bw_up_mtu));
  if (sample.bw_down_mtu.has_value()) bw.set("down_mtu", Value(*sample.bw_down_mtu));
  doc.set("bw", Value(std::move(bw)));
  doc.set("target_mbps", Value(sample.target_mbps));
  return Value(std::move(doc));
}

namespace {

Result<std::vector<std::int64_t>> read_isds(const Document& doc) {
  const Value* isds = doc.get("isds");
  if (isds == nullptr || !isds->is_array()) {
    return util::Error{ErrorCode::kParseError, "document missing isds array"};
  }
  std::vector<std::int64_t> result;
  for (const Value& isd : isds->as_array()) {
    if (!isd.is_int()) {
      return util::Error{ErrorCode::kParseError, "non-integer isd entry"};
    }
    result.push_back(isd.as_int());
  }
  return result;
}

}  // namespace

Result<PathRecord> parse_path_document(const Document& doc) {
  PathRecord record;
  const auto id = docdb::document_id(doc);
  if (!id.has_value()) {
    return util::Error{ErrorCode::kParseError, "paths doc missing _id"};
  }
  record.id = std::string(*id);

  const Value* server_id = doc.get("server_id");
  const Value* path_index = doc.get("path_index");
  const Value* sequence = doc.get("sequence");
  const Value* hop_count = doc.get("hop_count");
  const Value* mtu = doc.get("mtu");
  const Value* status = doc.get("status");
  if (server_id == nullptr || !server_id->is_int() || path_index == nullptr ||
      !path_index->is_int() || sequence == nullptr || !sequence->is_string() ||
      hop_count == nullptr || !hop_count->is_int() || mtu == nullptr ||
      !mtu->is_number()) {
    return util::Error{ErrorCode::kParseError, "paths doc missing fields"};
  }
  record.server_id = static_cast<int>(server_id->as_int());
  record.path_index = static_cast<int>(path_index->as_int());
  record.sequence = sequence->as_string();
  record.hop_count = static_cast<std::size_t>(hop_count->as_int());
  record.mtu = mtu->as_double();
  record.status = status != nullptr && status->is_string()
                      ? status->as_string()
                      : std::string("unknown");
  Result<std::vector<std::int64_t>> isds = read_isds(doc);
  if (!isds.ok()) return Result<PathRecord>(isds.error());
  record.isds = std::move(isds).value();
  return record;
}

Result<StatsSample> parse_stats_document(const Document& doc) {
  StatsSample sample;
  const Value* path_id = doc.get("path_id");
  const Value* server_id = doc.get("server_id");
  const Value* timestamp = doc.get("timestamp_ms");
  const Value* hop_count = doc.get("hop_count");
  const Value* loss = doc.get("loss_pct");
  if (path_id == nullptr || !path_id->is_string() || server_id == nullptr ||
      !server_id->is_int() || timestamp == nullptr || !timestamp->is_int() ||
      hop_count == nullptr || !hop_count->is_int() || loss == nullptr ||
      !loss->is_number()) {
    return util::Error{ErrorCode::kParseError, "stats doc missing fields"};
  }
  sample.path_id = path_id->as_string();
  sample.server_id = static_cast<int>(server_id->as_int());
  sample.timestamp = util::SimTime(timestamp->as_int() * 1'000'000);
  sample.hop_count = static_cast<std::size_t>(hop_count->as_int());
  sample.loss_pct = loss->as_double();

  Result<std::vector<std::int64_t>> isds = read_isds(doc);
  if (!isds.ok()) return Result<StatsSample>(isds.error());
  sample.isds = std::move(isds).value();

  const auto optional_double =
      [&](std::string_view path) -> std::optional<double> {
    const Value* value = doc.get_path(path);
    if (value == nullptr || !value->is_number()) return std::nullopt;
    return value->as_double();
  };
  sample.latency_ms = optional_double("latency_ms");
  sample.jitter_ms = optional_double("jitter_ms");
  sample.bw_up_64 = optional_double("bw.up_64");
  sample.bw_down_64 = optional_double("bw.down_64");
  sample.bw_up_mtu = optional_double("bw.up_mtu");
  sample.bw_down_mtu = optional_double("bw.down_mtu");
  if (const Value* target = doc.get("target_mbps");
      target != nullptr && target->is_number()) {
    sample.target_mbps = target->as_double();
  }
  return sample;
}

std::string checkpoint_doc_id(int server_id, int iteration) {
  return "ckpt_" + std::to_string(server_id) + "_" + std::to_string(iteration);
}

Document checkpoint_document(const CampaignCheckpoint& checkpoint) {
  JsonObject doc;
  doc.set("_id",
          Value(checkpoint_doc_id(checkpoint.server_id, checkpoint.iteration)));
  doc.set("server_id", Value(checkpoint.server_id));
  doc.set("iteration", Value(checkpoint.iteration));
  // Nanoseconds, not milliseconds: the resumed clock must land on the
  // identical instant or every later timestamped document id diverges.
  doc.set("clock_end_ns", Value(checkpoint.clock_end.count()));
  doc.set("samples_stored", Value(checkpoint.samples_stored));
  doc.set("breaker_failures", Value(checkpoint.breaker_failures));
  doc.set("breaker_open", Value(checkpoint.breaker_open));
  doc.set("breaker_opened_at_ns", Value(checkpoint.breaker_opened_at.count()));
  if (!checkpoint.path_cache.is_null()) {
    doc.set("path_cache", checkpoint.path_cache);
  }
  return Value(std::move(doc));
}

Result<CampaignCheckpoint> parse_checkpoint_document(const Document& doc) {
  CampaignCheckpoint checkpoint;
  const Value* server_id = doc.get("server_id");
  const Value* iteration = doc.get("iteration");
  const Value* clock_end = doc.get("clock_end_ns");
  if (server_id == nullptr || !server_id->is_int() || iteration == nullptr ||
      !iteration->is_int() || clock_end == nullptr || !clock_end->is_int()) {
    return util::Error{ErrorCode::kParseError, "checkpoint doc missing fields"};
  }
  checkpoint.server_id = static_cast<int>(server_id->as_int());
  checkpoint.iteration = static_cast<int>(iteration->as_int());
  checkpoint.clock_end = util::SimTime(clock_end->as_int());
  if (const Value* samples = doc.get("samples_stored");
      samples != nullptr && samples->is_int()) {
    checkpoint.samples_stored = static_cast<std::size_t>(samples->as_int());
  }
  if (const Value* failures = doc.get("breaker_failures");
      failures != nullptr && failures->is_int()) {
    checkpoint.breaker_failures = static_cast<int>(failures->as_int());
  }
  if (const Value* open = doc.get("breaker_open");
      open != nullptr && open->is_bool()) {
    checkpoint.breaker_open = open->as_bool();
  }
  if (const Value* opened_at = doc.get("breaker_opened_at_ns");
      opened_at != nullptr && opened_at->is_int()) {
    checkpoint.breaker_opened_at = util::SimTime(opened_at->as_int());
  }
  if (const Value* path_cache = doc.get("path_cache");
      path_cache != nullptr && path_cache->is_object()) {
    checkpoint.path_cache = *path_cache;
  }
  return checkpoint;
}

Document metrics_document(const std::string& id, const std::string& stage,
                          util::SimTime clock, Value snapshot) {
  JsonObject doc;
  doc.set("_id", Value(id));
  doc.set("stage", Value(stage));
  doc.set("clock_ns", Value(clock.count()));
  doc.set("metrics", std::move(snapshot));
  return Value(std::move(doc));
}

}  // namespace upin::measure
