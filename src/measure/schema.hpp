// schema.hpp — the measurement database schema (paper Fig 3).
//
// Three collections:
//   availableServers  {_id: "<n>", server_id, address}
//   paths             {_id: "<server>_<path>", server_id, path_id,
//                      sequence, hops, isds, hop_count, mtu, status,
//                      static_latency_ms}
//   paths_stats       {_id: "<server>_<path>_<timestamp>", path_id,
//                      server_id, timestamp_ms, hop_count, isds,
//                      latency_ms, loss_pct, jitter_ms,
//                      bw: {up_64, down_64, up_mtu, down_mtu},
//                      target_mbps}
//
// Ids follow the paper exactly: "a path whose id is 2_15 identifies the
// path 15 of the destination 2", and a stats id appends the timestamp.
#pragma once

#include <optional>
#include <string>

#include "docdb/document.hpp"
#include "scion/path.hpp"
#include "scion/isd_asn.hpp"
#include "util/clock.hpp"

namespace upin::measure {

inline constexpr const char* kAvailableServers = "availableServers";
inline constexpr const char* kPaths = "paths";
inline constexpr const char* kPathsStats = "paths_stats";
/// Crash-safe resume ledger: one document per completed (destination,
/// iteration) measurement unit, written through the journal right after
/// the unit's batch commits, so a killed campaign restarts without
/// re-measuring finished work.
inline constexpr const char* kCampaignCheckpoints = "campaign_checkpoints";
/// Self-describing runs: JSON snapshots of the metrics registry, written
/// alongside the data they describe ("latest" refreshed at every
/// checkpoint, "final" at campaign end) so a database file alone answers
/// how its campaign behaved — no logs required.
inline constexpr const char* kCampaignMetrics = "campaign_metrics";

/// "2_15" for path 15 of destination 2.
[[nodiscard]] std::string path_doc_id(int server_id, int path_index);

/// "2_15_000000012000" — path id + virtual-time token.
[[nodiscard]] std::string stats_doc_id(const std::string& path_id,
                                       util::SimTime t);

/// availableServers document.
[[nodiscard]] docdb::Document server_document(int server_id,
                                              const scion::SnetAddress& addr);

/// paths document for a discovered path.
[[nodiscard]] docdb::Document path_document(int server_id, int path_index,
                                            const scion::Path& path);

/// Inputs for one paths_stats document.  Optional fields are omitted
/// (e.g. latency when every probe was lost).
struct StatsSample {
  std::string path_id;
  int server_id = 0;
  util::SimTime timestamp{};
  std::size_t hop_count = 0;
  std::vector<std::int64_t> isds;
  std::optional<double> latency_ms;
  double loss_pct = 0.0;
  std::optional<double> jitter_ms;
  std::optional<double> bw_up_64;    ///< client->server, 64-byte packets
  std::optional<double> bw_down_64;  ///< server->client, 64-byte packets
  std::optional<double> bw_up_mtu;
  std::optional<double> bw_down_mtu;
  double target_mbps = 0.0;
};

[[nodiscard]] docdb::Document stats_document(const StatsSample& sample);

/// Decoded paths document (for consumers of the collection).
struct PathRecord {
  std::string id;
  int server_id = 0;
  int path_index = 0;
  std::string sequence;
  std::size_t hop_count = 0;
  std::vector<std::int64_t> isds;
  double mtu = 0.0;
  std::string status;
};

[[nodiscard]] util::Result<PathRecord> parse_path_document(
    const docdb::Document& doc);

/// Decoded paths_stats document.
[[nodiscard]] util::Result<StatsSample> parse_stats_document(
    const docdb::Document& doc);

/// "ckpt_2_15" for iteration 15 of destination 2.
[[nodiscard]] std::string checkpoint_doc_id(int server_id, int iteration);

/// One completed (destination, iteration) unit.  Carries the *exact*
/// virtual-clock reading at the end of the unit (nanoseconds) plus the
/// destination's circuit-breaker state, so a resumed campaign replays the
/// skipped unit's timeline and recovery state bit-for-bit — the invariant
/// behind "kill-then-resume stores the same documents as an uninterrupted
/// run".
struct CampaignCheckpoint {
  int server_id = 0;
  int iteration = 0;
  util::SimTime clock_end{};
  std::size_t samples_stored = 0;
  int breaker_failures = 0;
  bool breaker_open = false;
  util::SimTime breaker_opened_at{};
  /// Path-cache snapshot (scion::PathCache::snapshot()) taken at
  /// clock_end; null for pre-control-plane checkpoints.  Restoring it
  /// keeps the resumed cache trajectory — and therefore hit/stale/miss
  /// behaviour — bit-identical to the uninterrupted run.
  util::Value path_cache{};
};

[[nodiscard]] docdb::Document checkpoint_document(
    const CampaignCheckpoint& checkpoint);

[[nodiscard]] util::Result<CampaignCheckpoint> parse_checkpoint_document(
    const docdb::Document& doc);

/// campaign_metrics document: a registry snapshot stamped with the stage
/// it was taken at ("checkpoint" or "final") and the virtual clock.
[[nodiscard]] docdb::Document metrics_document(const std::string& id,
                                               const std::string& stage,
                                               util::SimTime clock,
                                               util::Value snapshot);

}  // namespace upin::measure
