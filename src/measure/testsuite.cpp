#include "measure/testsuite.hpp"

#include <algorithm>
#include <climits>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/sha256.hpp"
#include "util/strings.hpp"

namespace upin::measure {

using docdb::Document;
using docdb::Filter;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

TestSuite::TestSuite(apps::ScionHost& host, docdb::Database& db,
                     TestSuiteConfig config)
    : host_(host), db_(db), config_(std::move(config)) {
  // Resolve the counter handles once (registration mutex), so every
  // update below is a lock-free sharded add.  All of these advance with
  // virtual-time logic only — fixed-seed runs reproduce the values
  // exactly, which is what makes per-campaign registries comparable
  // between a solo run and an in-fleet run.
  obs::Registry& reg = registry();
  metrics_.pings = &reg.counter("upin_measure_pings_total");
  metrics_.ping_failures = &reg.counter("upin_measure_ping_failures_total");
  metrics_.bwtests = &reg.counter("upin_measure_bwtests_total");
  metrics_.bwtest_failures = &reg.counter("upin_measure_bwtest_failures_total");
  metrics_.path_tests = &reg.counter("upin_measure_path_tests_total");
  metrics_.breaker_skips = &reg.counter("upin_measure_breaker_skips_total");
  metrics_.stats_inserted = &reg.counter("upin_measure_stats_inserted_total");
  metrics_.batches_inserted =
      &reg.counter("upin_measure_batches_inserted_total");
  metrics_.batches_rejected =
      &reg.counter("upin_measure_batches_rejected_total");
  metrics_.checkpoints = &reg.counter("upin_measure_checkpoints_total");
  metrics_.units_skipped = &reg.counter("upin_measure_units_skipped_total");
  metrics_.probes_shed = &reg.counter("upin_measure_probes_shed_total");
}

obs::Registry& TestSuite::registry() const {
  return config_.registry != nullptr ? *config_.registry
                                     : obs::Registry::global();
}

void TestSuite::enable_signed_writes(scion::TrustStore& trust) {
  trust_ = &trust;
}

Status TestSuite::initialize() {
  docdb::Collection& servers = db_.collection(kAvailableServers);
  const std::vector<scion::SnetAddress>& registry = host_.env().servers;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const int server_id = static_cast<int>(i) + 1;
    if (servers.find_by_id(std::to_string(server_id)).ok()) continue;
    Result<std::string> inserted =
        servers.insert_one(server_document(server_id, registry[i]));
    if (!inserted.ok()) return Status(inserted.error());
  }
  db_.collection(kPaths).create_index("server_id");
  db_.collection(kPathsStats).create_index("path_id");
  db_.collection(kPathsStats).create_index("server_id");
  // The selection layer's hottest query (§6: per-path stats since a
  // cutoff) pins path_id and ranges over timestamp_ms — one compound
  // range scan instead of a per-path bucket filter.
  db_.collection(kPathsStats).create_index("path_id,timestamp_ms");
  return Status::success();
}

std::vector<TestSuite::Destination> TestSuite::selected_destinations() const {
  std::vector<Destination> destinations;
  const std::vector<scion::SnetAddress>& registry = host_.env().servers;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const int server_id = static_cast<int>(i) + 1;
    if (config_.server_ids.has_value() &&
        std::find(config_.server_ids->begin(), config_.server_ids->end(),
                  server_id) == config_.server_ids->end()) {
      continue;
    }
    destinations.push_back(Destination{server_id, registry[i]});
    if (config_.some_only) break;  // --some_only: first destination only
  }
  return destinations;
}

Status TestSuite::collect_paths() {
  docdb::Collection& paths = db_.collection(kPaths);

  for (const Destination& destination : selected_destinations()) {
    apps::ShowpathsOptions options;
    options.max_paths = config_.showpaths_max;
    options.extended = true;
    Result<std::vector<apps::PathListing>> listings =
        host_.showpaths(destination.address.ia, options);
    if (!listings.ok()) {
      util::Log::warn("showpaths to server " +
                      std::to_string(destination.server_id) +
                      " failed: " + listings.error().message);
      continue;
    }
    if (listings.value().empty()) continue;

    // Retain only paths with hop count <= min + slack (paper §5.2: "paths
    // with a number of hops at most equal to the minimum required plus
    // one").
    const std::size_t min_hops = listings.value().front().path.hop_count();
    std::vector<Document> fresh;
    std::vector<std::string> fresh_ids;
    int path_index = 0;
    for (const apps::PathListing& listing : listings.value()) {
      if (listing.path.hop_count() > min_hops + config_.hop_slack) continue;
      const std::string id = path_doc_id(destination.server_id, path_index);
      fresh.push_back(
          path_document(destination.server_id, path_index, listing.path));
      fresh_ids.push_back(id);
      ++path_index;
    }

    // Delete documents for paths of this destination that vanished
    // (paper §5.2: "no longer available paths ... are deleted"), then
    // upsert the fresh set.
    util::JsonObject query;
    query.set("server_id", Value(destination.server_id));
    Result<Filter> by_server = Filter::compile(Value(std::move(query)));
    if (!by_server.ok()) return Status(by_server.error());
    const std::unordered_set<std::string_view> fresh_id_set(fresh_ids.begin(),
                                                            fresh_ids.end());
    for (const Document& existing : paths.find(by_server.value())) {
      const auto id = docdb::document_id(existing);
      if (!id.has_value()) continue;
      if (!fresh_id_set.contains(*id)) {
        paths.delete_by_id(*id);
        ++progress_.paths_deleted;
      }
    }
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      paths.delete_by_id(fresh_ids[i]);  // replace previous snapshot
      Result<std::string> inserted = paths.insert_one(std::move(fresh[i]));
      if (!inserted.ok()) return Status(inserted.error());
      ++progress_.paths_collected;
    }
    ++progress_.destinations_visited;
  }
  return Status::success();
}

Status TestSuite::store_batch(std::vector<Document> docs) {
  if (docs.empty()) return Status::success();
  const std::size_t batch_size = docs.size();

  if (trust_ == nullptr) {
    Result<std::vector<std::string>> inserted =
        db_.collection(kPathsStats).insert_many(std::move(docs));
    if (!inserted.ok()) {
      ++progress_.batches_rejected;
      metrics_.batches_rejected->add();
      return Status(inserted.error());
    }
    progress_.stats_inserted += batch_size;
    ++progress_.batches_inserted;
    metrics_.stats_inserted->add(batch_size);
    metrics_.batches_inserted->add();
    return Status::success();
  }

  // Signed write: fresh one-time key, certificate from our ISD core,
  // signature over the batch digest (paper §4.2.2's designed PKC gate).
  const std::string batch_label =
      "batch:" + std::to_string(batch_counter_++);
  const util::LamportKeyPair key = trust_->generate_client_key(batch_label);
  Result<scion::Certificate> cert = trust_->issue_certificate(
      host_.address().local.ia, key.public_key);
  if (!cert.ok()) {
    ++progress_.batches_rejected;
    metrics_.batches_rejected->add();
    return Status(cert.error());
  }
  std::string payload;
  for (const Document& doc : docs) payload += doc.dump();
  const std::string digest_hex = util::to_hex(util::Sha256::hash(payload));

  scion::WriteCredential credential;
  credential.certificate = std::move(cert).value();
  credential.subject_key = key.public_key;
  credential.batch_digest_hex = digest_hex;
  credential.batch_signature = util::lamport_sign(key.private_key, digest_hex);

  Result<std::vector<std::string>> inserted = db_.guarded_insert_many(
      kPathsStats, std::move(docs),
      scion::TrustStore::encode_credential(credential));
  if (!inserted.ok()) {
    ++progress_.batches_rejected;
    metrics_.batches_rejected->add();
    return Status(inserted.error());
  }
  progress_.stats_inserted += batch_size;
  ++progress_.batches_inserted;
  metrics_.stats_inserted->add(batch_size);
  metrics_.batches_inserted->add();
  return Status::success();
}

std::size_t TestSuite::completed_iterations(int server_id) const {
  // A destination's completed iteration count is the *minimum* number of
  // stored samples over its paths: batching per destination keeps these
  // balanced, and a crash can only leave the last iteration partial.
  const docdb::Collection* paths = db_.find_collection(kPaths);
  const docdb::Collection* stats = db_.find_collection(kPathsStats);
  if (paths == nullptr || stats == nullptr) return 0;

  util::JsonObject query;
  query.set("server_id", Value(server_id));
  Result<Filter> by_server = Filter::compile(Value(std::move(query)));
  if (!by_server.ok()) return 0;

  std::size_t minimum = SIZE_MAX;
  bool any = false;
  for (const Document& path_doc : paths->find(by_server.value())) {
    const auto id = docdb::document_id(path_doc);
    if (!id.has_value()) continue;
    util::JsonObject stats_query;
    stats_query.set("path_id", Value(std::string(*id)));
    Result<Filter> by_path = Filter::compile(Value(std::move(stats_query)));
    if (!by_path.ok()) return 0;
    minimum = std::min(minimum, stats->count(by_path.value()));
    any = true;
  }
  return any ? minimum : 0;
}

void TestSuite::note_failure(int server_id, const util::Error& error) {
  progress_.errors.record(classify_fault(error.code));
  (void)server_id;
}

CircuitBreaker& TestSuite::breaker_for(int server_id) {
  auto it = breakers_.find(server_id);
  if (it == breakers_.end()) {
    it = breakers_.emplace(server_id, CircuitBreaker(config_.breaker)).first;
  }
  return it->second;
}

void TestSuite::record_metrics_snapshot(const std::string& id,
                                        const std::string& stage) {
  docdb::Collection& metrics = db_.collection(kCampaignMetrics);
  metrics.delete_by_id(id);
  Result<std::string> inserted = metrics.insert_one(metrics_document(
      id, stage, host_.clock().now(), registry().snapshot()));
  if (!inserted.ok()) {
    util::Log::warn("campaign_metrics snapshot failed: " +
                    inserted.error().message);
  }
}

Status TestSuite::run_unit(const Destination& destination, int iteration,
                           bool shed_bandwidth) {
  const obs::ScopedSpan unit_span(
      config_.tracer, host_.clock(),
      util::format("unit s%d i%d", destination.server_id, iteration));
  docdb::Collection& paths = db_.collection(kPaths);
  util::JsonObject query;
  query.set("server_id", Value(destination.server_id));
  Result<Filter> by_server = Filter::compile(Value(std::move(query)));
  if (!by_server.ok()) return Status(by_server.error());
  docdb::FindOptions in_order;
  in_order.sort_by = "path_index";
  const std::vector<Document> path_docs =
      paths.find(by_server.value(), in_order);

  CircuitBreaker& breaker = breaker_for(destination.server_id);

  // One batch per destination: losing a crash's worth of data drops
  // at most one balanced sample per path (paper §4.2.2).
  std::vector<Document> batch;
  batch.reserve(path_docs.size());

  for (const Document& path_doc : path_docs) {
    Result<PathRecord> record = parse_path_document(path_doc);
    if (!record.ok()) {
      util::Log::warn("skipping malformed path doc: " +
                      record.error().message);
      continue;
    }

    // An open breaker means this destination has been failing hard:
    // stop hammering it and accept partial results for the unit.  A
    // shed (degraded-tenant) unit is exempt: its cheap ping doubles as
    // the breaker's half-open probe — without it, a breaker that opened
    // in zero-cost skip units would never see the cooldown elapse and
    // the tenant could never demonstrate recovery.
    if (!shed_bandwidth && !breaker.allow(host_.clock().now())) {
      ++progress_.breaker_skips;
      metrics_.breaker_skips->add();
      continue;
    }
    const obs::ScopedSpan path_span(config_.tracer, host_.clock(),
                                    "path " + record.value().id);

    StatsSample sample;
    sample.path_id = record.value().id;
    sample.server_id = destination.server_id;
    sample.hop_count = record.value().hop_count;
    sample.isds = record.value().isds;
    sample.target_mbps = config_.bw_target_mbps;

    // --- latency & loss: scion ping -c 30 --interval 0.1s ---------
    apps::PingOptions ping_options;
    ping_options.count = config_.ping_count;
    ping_options.interval_s = config_.ping_interval_s;
    ping_options.sequence = record.value().sequence;
    metrics_.pings->add();
    Result<apps::PingReport> ping = [&] {
      const obs::ScopedSpan probe_span(config_.tracer, host_.clock(), "ping");
      return run_with_retry<apps::PingReport>(
          config_.retry, host_.clock(), "ping:" + sample.path_id,
          progress_.retry,
          [&] { return host_.ping(destination.address, ping_options); });
    }();
    if (!ping.ok()) {
      ++progress_.ping_failures;
      metrics_.ping_failures->add();
      note_failure(destination.server_id, ping.error());
      // Control-plane deaths (revoked/expired) are authoritative facts
      // about the path, not evidence the destination is failing: they
      // must not burn breaker budget.
      if (ping.error().code != ErrorCode::kRevoked &&
          ping.error().code != ErrorCode::kExpired) {
        breaker.record_failure(host_.clock().now());
      }
      util::Log::warn("ping " + sample.path_id +
                      " failed: " + ping.error().message);
      continue;  // server failure: skip this path, keep the campaign
    }
    sample.latency_ms = ping.value().stats.avg_ms();
    sample.loss_pct = ping.value().stats.loss_pct();
    sample.jitter_ms = ping.value().stats.stddev_ms();

    if (shed_bandwidth) {
      // Degraded-tenant mode: the cheap latency/loss probes keep flowing,
      // the two expensive bandwidth probes are shed.  The ping succeeded,
      // so the breaker records a healthy destination.
      progress_.probes_shed += 2;
      metrics_.probes_shed->add(2);
      breaker.record_success();
    } else {
      // --- bandwidth: scion-bwtestclient -cs d,{64|MTU},?,target ----
      bool operation_failed = false;
      bool data_plane_failed = false;
      const auto bw_spec = [&](std::string_view size) {
        return util::format("%g,%.*s,?,%gMbps", config_.bw_duration_s,
                            static_cast<int>(size.size()), size.data(),
                            config_.bw_target_mbps);
      };
      const auto run_bwtest = [&](const std::string& spec,
                                  std::string_view label)
          -> Result<apps::BwtestReport> {
        apps::BwtestOptions options;
        options.cs_spec = spec;
        options.sequence = record.value().sequence;
        metrics_.bwtests->add();
        const obs::ScopedSpan probe_span(config_.tracer, host_.clock(),
                                         std::string(label));
        return run_with_retry<apps::BwtestReport>(
            config_.retry, host_.clock(),
            std::string(label) + ":" + sample.path_id, progress_.retry,
            [&] { return host_.bwtestclient(destination.address, options); });
      };
      Result<apps::BwtestReport> small = run_bwtest(
          bw_spec(util::format("%g", config_.small_packet_bytes)), "bw64");
      Result<apps::BwtestReport> mtu = run_bwtest(bw_spec("MTU"), "bwmtu");

      if (small.ok()) {
        sample.bw_up_64 = small.value().client_to_server.achieved_mbps;
        sample.bw_down_64 = small.value().server_to_client.achieved_mbps;
      } else {
        ++progress_.bwtest_failures;
        metrics_.bwtest_failures->add();
        note_failure(destination.server_id, small.error());
        operation_failed = true;
        data_plane_failed |= small.error().code != ErrorCode::kRevoked &&
                             small.error().code != ErrorCode::kExpired;
      }
      if (mtu.ok()) {
        sample.bw_up_mtu = mtu.value().client_to_server.achieved_mbps;
        sample.bw_down_mtu = mtu.value().server_to_client.achieved_mbps;
      } else {
        ++progress_.bwtest_failures;
        metrics_.bwtest_failures->add();
        note_failure(destination.server_id, mtu.error());
        operation_failed = true;
        data_plane_failed |= mtu.error().code != ErrorCode::kRevoked &&
                             mtu.error().code != ErrorCode::kExpired;
      }

      if (operation_failed) {
        // Same rule as the ping leg: only data-plane faults count against
        // the breaker — a revoked path says nothing about server health.
        if (data_plane_failed) breaker.record_failure(host_.clock().now());
      } else {
        breaker.record_success();
      }
    }

    sample.timestamp = host_.clock().now();
    batch.push_back(stats_document(sample));
    ++progress_.path_tests_run;
    metrics_.path_tests->add();

    host_.clock().advance(util::sim_seconds(config_.inter_test_gap_s));
  }
  if (breaker.trips() > progress_.breaker_trips) {
    progress_.breaker_trips = breaker.trips();
  }

  const std::size_t batch_size = batch.size();
  const Status stored = store_batch(std::move(batch));
  if (!stored.ok()) {
    util::Log::error("batch insert for server " +
                     std::to_string(destination.server_id) +
                     " failed: " + stored.error().message);
    progress_.errors.record(FaultKind::kStorage);
    // Data for this destination+iteration is lost; keep running.  No
    // checkpoint: a resume will re-measure the unit.
  } else if (config_.checkpoints) {
    CampaignCheckpoint checkpoint;
    checkpoint.server_id = destination.server_id;
    checkpoint.iteration = iteration;
    checkpoint.clock_end = host_.clock().now();
    checkpoint.samples_stored = batch_size;
    checkpoint.breaker_failures = breaker.consecutive_failures();
    checkpoint.breaker_open = breaker.is_open();
    checkpoint.breaker_opened_at = breaker.opened_at();
    checkpoint.path_cache = host_.control_plane().checkpoint();
    docdb::Collection& checkpoints = db_.collection(kCampaignCheckpoints);
    checkpoints.delete_by_id(
        checkpoint_doc_id(destination.server_id, iteration));
    Result<std::string> inserted =
        checkpoints.insert_one(checkpoint_document(checkpoint));
    if (inserted.ok()) {
      ++progress_.checkpoints_recorded;
      metrics_.checkpoints->add();
    } else {
      util::Log::warn("checkpoint insert failed: " +
                      inserted.error().message);
      progress_.errors.record(FaultKind::kStorage);
    }
    if (config_.metrics_snapshots) {
      record_metrics_snapshot("latest", "checkpoint");
    }
  }

  if (config_.crash_after_batches > 0 &&
      progress_.batches_inserted >= config_.crash_after_batches) {
    return Status(ErrorCode::kDataLoss,
                  "injected crash after " +
                      std::to_string(progress_.batches_inserted) +
                      " batches (fault harness)");
  }
  return Status::success();
}

Status TestSuite::prepare_plan() {
  if (plan_ready_) return Status::success();
  plan_destinations_ = selected_destinations();
  plan_remaining_.assign(plan_destinations_.size(), config_.iterations);
  plan_use_checkpoints_.assign(plan_destinations_.size(), false);
  plan_cursor_ = 0;

  // Resume planning.  Destinations with checkpoint history skip exactly
  // the recorded (destination, iteration) units, restoring the clock and
  // breaker state each unit left behind; databases from before the
  // checkpoint ledger fall back to the count-based top-up.
  if (config_.resume) {
    const docdb::Collection* checkpoints =
        db_.find_collection(kCampaignCheckpoints);
    for (std::size_t i = 0; i < plan_destinations_.size(); ++i) {
      if (checkpoints != nullptr) {
        util::JsonObject query;
        query.set("server_id", Value(plan_destinations_[i].server_id));
        Result<Filter> by_server = Filter::compile(Value(std::move(query)));
        if (by_server.ok() && checkpoints->count(by_server.value()) > 0) {
          plan_use_checkpoints_[i] = true;
          continue;
        }
      }
      const auto done = completed_iterations(plan_destinations_[i].server_id);
      plan_remaining_[i] = std::max(
          0, config_.iterations -
                 static_cast<int>(std::min<std::size_t>(done, INT_MAX)));
    }
  }
  plan_ready_ = true;
  return Status::success();
}

std::size_t TestSuite::planned_units() const {
  return plan_destinations_.size() *
         static_cast<std::size_t>(std::max(config_.iterations, 0));
}

Result<TestSuite::StepOutcome> TestSuite::step(bool shed_bandwidth) {
  if (!plan_ready_) {
    const Status planned = prepare_plan();
    if (!planned.ok()) return planned.error();
  }
  const std::size_t dest_count = plan_destinations_.size();
  const std::size_t total = planned_units();
  // The cursor walks the unit grid iteration-major — the paper's loop
  // order (every destination once per iteration).  Count-skipped resume
  // units consume cursor positions without surfacing as steps.
  while (plan_cursor_ < total) {
    const std::size_t cursor = plan_cursor_++;
    const int iteration = static_cast<int>(cursor / dest_count);
    const std::size_t destination_index = cursor % dest_count;
    const Destination& destination = plan_destinations_[destination_index];
    if (config_.resume) {
      if (plan_use_checkpoints_[destination_index]) {
        const Result<Document> doc =
            db_.collection(kCampaignCheckpoints)
                .find_by_id(
                    checkpoint_doc_id(destination.server_id, iteration));
        if (doc.ok()) {
          const Result<CampaignCheckpoint> checkpoint =
              parse_checkpoint_document(doc.value());
          if (checkpoint.ok()) {
            // Fast-forward through the finished unit: same clock
            // reading, same breaker state, zero re-measurement.
            host_.clock().advance_to(checkpoint.value().clock_end);
            breaker_for(destination.server_id)
                .restore(checkpoint.value().breaker_failures,
                         checkpoint.value().breaker_open,
                         checkpoint.value().breaker_opened_at);
            if (!checkpoint.value().path_cache.is_null()) {
              const Status restored = host_.control_plane().restore(
                  checkpoint.value().path_cache,
                  checkpoint.value().clock_end);
              if (!restored.ok()) {
                util::Log::warn("path-cache restore failed: " +
                                restored.error().message);
              }
            }
            ++progress_.units_skipped;
            metrics_.units_skipped->add();
            return StepOutcome::kSkippedResume;
          }
        }
        // Missing or corrupt checkpoint: fall through and re-measure.
      } else if (iteration >= plan_remaining_[destination_index]) {
        continue;  // count-based top-up: this unit is already stored
      }
    }
    const Status unit = run_unit(destination, iteration, shed_bandwidth);
    if (!unit.ok()) return unit.error();
    return StepOutcome::kRan;
  }
  return StepOutcome::kDone;
}

Status TestSuite::run_tests() {
  const Status planned = prepare_plan();
  if (!planned.ok()) return planned;
  obs::ProgressReporter reporter(
      util::sim_seconds(config_.progress_report_interval_s));
  std::size_t units_done = 0;
  const std::size_t units_total = planned_units();

  while (true) {
    const Result<StepOutcome> outcome = step();
    if (!outcome.ok()) return Status(outcome.error());
    if (outcome.value() == StepOutcome::kDone) break;
    if (outcome.value() != StepOutcome::kRan) continue;
    ++units_done;
    reporter.tick(host_.clock().now(), [&] {
      return util::format(
          "campaign progress units=%zu/%zu path_tests=%zu failures=%zu "
          "retries=%zu breaker_skips=%zu clock_s=%.0f",
          units_done, units_total, progress_.path_tests_run,
          progress_.errors.total(), progress_.retry.retries,
          progress_.breaker_skips,
          util::to_seconds(host_.clock().now()));
    });
  }
  return Status::success();
}

Status TestSuite::begin() {
  Status init = initialize();
  if (!init.ok()) return init;
  if (!config_.skip_collection) {
    const Status collected = collect_paths();
    if (!collected.ok()) return collected;
  }
  return prepare_plan();
}

Status TestSuite::finish() {
  if (config_.metrics_snapshots) {
    record_metrics_snapshot("final", "final");
  }
  return Status::success();
}

Status TestSuite::run() {
  const Status begun = begin();
  if (!begun.ok()) return begun;
  const Status tested = run_tests();
  if (!tested.ok()) return tested;
  return finish();
}

}  // namespace upin::measure
