// testsuite.hpp — the measurement campaign engine (paper §5).
//
// Reimplements the paper's three-component suite as one engine:
//
//   * test_suite.sh      -> TestSuiteConfig {iterations, skip, some_only}
//                           + TestSuite::run()
//   * collect_paths.py   -> TestSuite::collect_paths(): showpaths per
//                           destination, keep paths with hop count <=
//                           min + 1, insert into `paths`, delete vanished
//   * run_test.py        -> TestSuite::run_tests(): three nested loops
//                           (iterations x destinations x paths), per path
//                           one ping (30 x 0.1 s) and four bandwidth
//                           numbers ({64 B, MTU} x {up, down}), then one
//                           *batched* insert per destination (§4.2.2's
//                           fault-tolerance trade-off)
//
// Faults (unreachable server, failed command) are handled by a
// first-class recovery policy (§4.1.2 upgraded): failed operations retry
// with exponential backoff in virtual time, a per-destination circuit
// breaker stops hammering dark servers, every failure lands in a
// four-way taxonomy, and completed (destination, iteration) units are
// checkpointed through the journal so a killed campaign resumes without
// re-measuring finished work — and reproduces the identical document set.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "apps/host.hpp"
#include "docdb/database.hpp"
#include "measure/retry.hpp"
#include "measure/schema.hpp"
#include "scion/trust.hpp"

namespace upin::obs {
class Counter;
class Registry;
class SpanTracer;
}  // namespace upin::obs

namespace upin::measure {

/// CLI-equivalent configuration (paper §5.1).
struct TestSuiteConfig {
  int iterations = 1;            ///< <iterations>
  bool skip_collection = false;  ///< --skip
  bool some_only = false;        ///< --some_only (first destination only)
  /// Resume semantics: treat `iterations` as the *target* number of
  /// samples per path and only run the missing remainder, so a campaign
  /// interrupted by a crash (losing at most its in-flight batch, §4.2.2)
  /// can be topped up instead of rerun.
  bool resume = false;
  /// Restrict the run to these server ids (paper §6 uses the featured 5).
  std::optional<std::vector<int>> server_ids;

  std::size_t showpaths_max = 40;  ///< scion showpaths -m 40
  std::size_t hop_slack = 1;       ///< keep hop_count <= min + slack

  std::size_t ping_count = 30;
  double ping_interval_s = 0.1;

  double bw_duration_s = 3.0;
  double bw_target_mbps = 12.0;
  double small_packet_bytes = 64.0;

  /// Virtual-time pause between consecutive path tests (scheduling gap).
  double inter_test_gap_s = 0.5;

  /// Recovery policy for failed measurement operations.
  RetryPolicy retry;
  /// Per-destination circuit breaker (consecutive post-retry failures
  /// open it; cooldown in virtual time re-probes).
  CircuitBreakerPolicy breaker;
  /// Record a campaign_checkpoints document after every committed
  /// (destination, iteration) unit.  `resume` uses them to skip finished
  /// units exactly (clock and breaker state restored bit-for-bit).
  bool checkpoints = true;
  /// Fault-injection harness: abort the campaign (as a crash would) after
  /// this many committed batches.  0 = never.  Tests use this to exercise
  /// kill-then-resume; the aborted run reports kDataLoss.
  std::size_t crash_after_batches = 0;

  /// Optional virtual-clock span tracer.  When set, the suite records the
  /// campaign -> unit -> path -> probe timeline into it; when null (the
  /// default) the instrumentation is free.
  obs::SpanTracer* tracer = nullptr;
  /// Metrics sink.  Null (the default) instruments the process-wide
  /// registry.  The fleet scheduler gives every tenant campaign its own
  /// registry so (a) per-tenant rates are separable and (b) the
  /// `campaign_metrics` snapshots a campaign journals are a pure function
  /// of that campaign alone — the property behind the isolation gate's
  /// "in-fleet journal bytes == solo journal bytes".
  obs::Registry* registry = nullptr;
  /// Refresh the `campaign_metrics` "latest" snapshot at every checkpoint
  /// (the "final" snapshot at campaign end is always written).
  bool metrics_snapshots = true;
  /// Virtual-time cadence of the structured progress log lines.
  double progress_report_interval_s = 600.0;
};

/// Run counters for reporting and tests.
struct TestSuiteProgress {
  std::size_t destinations_visited = 0;
  std::size_t paths_collected = 0;
  std::size_t paths_deleted = 0;
  std::size_t path_tests_run = 0;
  std::size_t ping_failures = 0;
  std::size_t bwtest_failures = 0;
  std::size_t stats_inserted = 0;
  std::size_t batches_inserted = 0;
  std::size_t batches_rejected = 0;

  /// Every post-retry failure, classified (§4.1.2 fault classes).
  FaultTaxonomy errors;
  /// Backoff re-attempts and budget cutoffs across all operations.
  RetryStats retry;
  std::size_t breaker_trips = 0;  ///< circuit breakers opened
  std::size_t breaker_skips = 0;  ///< path tests skipped while open
  std::size_t units_skipped = 0;  ///< checkpointed units skipped on resume
  std::size_t checkpoints_recorded = 0;
  /// Bandwidth probes skipped by fleet load shedding (degraded tenants
  /// run ping-only units; two bw probes shed per path test).
  std::size_t probes_shed = 0;
};

/// The campaign engine.  Owns neither the host nor the database.
class TestSuite {
 public:
  TestSuite(apps::ScionHost& host, docdb::Database& db,
            TestSuiteConfig config);

  /// Populate `availableServers` from the testbed registry (idempotent)
  /// and create the indexes the selection layer expects.
  util::Status initialize();

  /// Phase 1: discover paths for every (selected) destination.
  util::Status collect_paths();

  /// Phase 2: the three nested measurement loops.
  util::Status run_tests();

  /// Phases 1+2 honoring skip_collection, i.e. `./test_suite.sh N [--skip]`.
  util::Status run();

  // ---- unit-stepped execution (fleet scheduling) ---------------------
  //
  // A multi-tenant scheduler cannot hand a whole campaign to run(): it
  // interleaves *units* of N campaigns for fairness.  The stepping API
  // exposes the identical execution path at (destination, iteration)
  // granularity — run_tests() itself is implemented as a step() loop, so
  // a stepped campaign journals byte-identical output to a solo run().

  /// What one step() call did.
  enum class StepOutcome {
    kRan,           ///< executed the next unit (measure + store + checkpoint)
    kSkippedResume, ///< fast-forwarded a checkpointed unit (resume)
    kDone,          ///< the plan is exhausted; nothing happened
  };

  /// Prepare stepping: initialize(), collect_paths() (unless skipped) and
  /// resume planning.  Equivalent to the preamble of run().
  [[nodiscard]] util::Status begin();

  /// Units in the plan: destinations x iterations (including units that
  /// resume will fast-forward).  Valid after begin().
  [[nodiscard]] std::size_t planned_units() const;

  /// Execute (or fast-forward) the next planned unit.  With
  /// `shed_bandwidth` the unit runs ping-only — the fleet's degraded mode
  /// for tenants burning their error budget: the cheap latency/loss
  /// probes keep flowing, the expensive bandwidth probes are shed.
  [[nodiscard]] util::Result<StepOutcome> step(bool shed_bandwidth = false);

  /// Record the "final" metrics snapshot — the epilogue of run().
  [[nodiscard]] util::Status finish();

  /// Sign each batch with a fresh one-time key certified by `trust`, and
  /// write through the database's guarded interface.
  void enable_signed_writes(scion::TrustStore& trust);

  /// Samples already stored for every path of `server_id` (the minimum
  /// across its paths) — what `resume` subtracts from `iterations`.
  [[nodiscard]] std::size_t completed_iterations(int server_id) const;

  [[nodiscard]] const TestSuiteProgress& progress() const noexcept {
    return progress_;
  }

 private:
  struct Destination {
    int server_id = 0;
    scion::SnetAddress address;
  };
  /// Cached counter handles into the configured registry, resolved once
  /// per suite so the hot path is a lock-free add (the registry's
  /// get-or-create mutex is paid only at construction).
  struct Metrics {
    obs::Counter* pings = nullptr;
    obs::Counter* ping_failures = nullptr;
    obs::Counter* bwtests = nullptr;
    obs::Counter* bwtest_failures = nullptr;
    obs::Counter* path_tests = nullptr;
    obs::Counter* breaker_skips = nullptr;
    obs::Counter* stats_inserted = nullptr;
    obs::Counter* batches_inserted = nullptr;
    obs::Counter* batches_rejected = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* units_skipped = nullptr;
    obs::Counter* probes_shed = nullptr;
  };
  [[nodiscard]] obs::Registry& registry() const;
  [[nodiscard]] std::vector<Destination> selected_destinations() const;
  [[nodiscard]] util::Status store_batch(std::vector<docdb::Document> docs);

  /// Hoist run_tests()' resume planning: destination list, per-destination
  /// remaining-iteration counts, checkpoint availability.  Idempotent.
  [[nodiscard]] util::Status prepare_plan();

  /// Run every path test of one (destination, iteration) unit, applying
  /// retry / breaker policy, and commit the batch plus its checkpoint.
  /// `shed_bandwidth` skips the two bwtest probes (fleet degraded mode).
  [[nodiscard]] util::Status run_unit(const Destination& destination,
                                      int iteration, bool shed_bandwidth);
  /// Store a registry snapshot under `id` in campaign_metrics.
  void record_metrics_snapshot(const std::string& id,
                               const std::string& stage);
  /// Record a post-retry operation failure for `destination`.
  void note_failure(int server_id, const util::Error& error);
  [[nodiscard]] CircuitBreaker& breaker_for(int server_id);

  apps::ScionHost& host_;
  docdb::Database& db_;
  TestSuiteConfig config_;
  TestSuiteProgress progress_;
  Metrics metrics_;
  scion::TrustStore* trust_ = nullptr;
  std::uint64_t batch_counter_ = 0;
  std::map<int, CircuitBreaker> breakers_;

  // Stepping plan (prepare_plan / step state).
  bool plan_ready_ = false;
  std::vector<Destination> plan_destinations_;
  std::vector<int> plan_remaining_;  // per destination (resume top-up count)
  std::vector<bool> plan_use_checkpoints_;
  std::size_t plan_cursor_ = 0;  // iteration-major over the unit grid
};

}  // namespace upin::measure
