#include "obs/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace upin::obs {

using util::Value;

std::size_t Counter::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  // One slot per thread, assigned on first use: threads never migrate
  // between shards, so increments stay on a warm cache line.
  static thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins) {}

void LatencyHistogram::observe(double sample) noexcept {
  counts_[util::bucket_index(lo_, width_, counts_.size(), sample)].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // a CAS loop is portable and this is off every per-event fast path.
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sample,
                                     std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean() const noexcept {
  const std::uint64_t n = total();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LatencyHistogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double LatencyHistogram::bin_high(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double seen = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    seen += static_cast<double>(count(bin));
    if (seen >= target) return bin_high(bin);
  }
  return bin_high(counts_.size() - 1);
}

void LatencyHistogram::reset() noexcept {
  for (std::atomic<std::uint64_t>& bucket : counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& Registry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>(lo, hi, bins))
             .first;
  }
  return *it->second;
}

namespace {

/// `name{campaign="label"}` — the exposition key for a labeled series.
std::string series_key(std::string_view name, std::string_view campaign) {
  std::string key;
  key.reserve(name.size() + campaign.size() + 13);
  key.append(name);
  key.append("{campaign=\"");
  key.append(campaign);
  key.append("\"}");
  return key;
}

template <typename T, typename Family, typename Make>
T& labeled_get_or_create(Family& family, std::string_view name,
                         std::string_view campaign, const Make& make) {
  auto family_it = family.find(name);
  if (family_it == family.end()) {
    family_it = family.emplace(std::string(name),
                               typename Family::mapped_type{}).first;
  }
  auto series_it = family_it->second.find(campaign);
  if (series_it == family_it->second.end()) {
    series_it =
        family_it->second.emplace(std::string(campaign), make()).first;
  }
  return *series_it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name, std::string_view campaign) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labeled_get_or_create<Counter>(
      labeled_counters_, name, campaign,
      [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name, std::string_view campaign) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labeled_get_or_create<Gauge>(
      labeled_gauges_, name, campaign,
      [] { return std::make_unique<Gauge>(); });
}

LatencyHistogram& Registry::histogram(std::string_view name,
                                      std::string_view campaign, double lo,
                                      double hi, std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labeled_get_or_create<LatencyHistogram>(
      labeled_histograms_, name, campaign,
      [&] { return std::make_unique<LatencyHistogram>(lo, hi, bins); });
}

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, series] : labeled_counters_) {
    out += "# TYPE " + name + " counter\n";
    for (const auto& [campaign, counter] : series) {
      out += series_key(name, campaign) + " " +
             std::to_string(counter->value()) + "\n";
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, series] : labeled_gauges_) {
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [campaign, gauge] : series) {
      out += series_key(name, campaign) + " " +
             std::to_string(gauge->value()) + "\n";
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t bin = 0; bin < histogram->bin_count(); ++bin) {
      cumulative += histogram->count(bin);
      out += name + "_bucket{le=\"" +
             util::format("%g", histogram->bin_high(bin)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(histogram->total()) +
           "\n";
    out += name + "_sum " + util::format("%g", histogram->sum()) + "\n";
    out += name + "_count " + std::to_string(histogram->total()) + "\n";
  }
  for (const auto& [name, series] : labeled_histograms_) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [campaign, histogram] : series) {
      std::uint64_t cumulative = 0;
      for (std::size_t bin = 0; bin < histogram->bin_count(); ++bin) {
        cumulative += histogram->count(bin);
        out += name + "_bucket{campaign=\"" + campaign + "\",le=\"" +
               util::format("%g", histogram->bin_high(bin)) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket{campaign=\"" + campaign + "\",le=\"+Inf\"} " +
             std::to_string(histogram->total()) + "\n";
      out += series_key(name + "_sum", campaign) + " " +
             util::format("%g", histogram->sum()) + "\n";
      out += series_key(name + "_count", campaign) + " " +
             std::to_string(histogram->total()) + "\n";
    }
  }
  return out;
}

Value Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters.set(name, Value(counter->value()));
  }
  for (const auto& [name, series] : labeled_counters_) {
    for (const auto& [campaign, counter] : series) {
      counters.set(series_key(name, campaign), Value(counter->value()));
    }
  }
  util::JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, Value(gauge->value()));
  }
  for (const auto& [name, series] : labeled_gauges_) {
    for (const auto& [campaign, gauge] : series) {
      gauges.set(series_key(name, campaign), Value(gauge->value()));
    }
  }
  util::JsonObject histograms;
  const auto histogram_entry = [](const LatencyHistogram& histogram) {
    Value::Array buckets;
    buckets.reserve(histogram.bin_count());
    for (std::size_t bin = 0; bin < histogram.bin_count(); ++bin) {
      buckets.emplace_back(static_cast<std::size_t>(histogram.count(bin)));
    }
    // Built field-by-field: GCC 12's -Wmaybe-uninitialized misfires on
    // moving variant temporaries out of a nested initializer list here.
    util::JsonObject entry;
    entry.set("lo", Value(histogram.bin_low(0)));
    entry.set("width", Value(histogram.bin_high(0) - histogram.bin_low(0)));
    entry.set("total", Value(histogram.total()));
    entry.set("sum", Value(histogram.sum()));
    entry.set("buckets", Value(std::move(buckets)));
    return Value(std::move(entry));
  };
  for (const auto& [name, histogram] : histograms_) {
    histograms.set(name, histogram_entry(*histogram));
  }
  for (const auto& [name, series] : labeled_histograms_) {
    for (const auto& [campaign, histogram] : series) {
      histograms.set(series_key(name, campaign), histogram_entry(*histogram));
    }
  }
  util::JsonObject root;
  root.set("counters", Value(std::move(counters)));
  root.set("gauges", Value(std::move(gauges)));
  root.set("histograms", Value(std::move(histograms)));
  return Value(std::move(root));
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
  for (const auto& [name, series] : labeled_counters_) {
    for (const auto& [campaign, counter] : series) counter->reset();
  }
  for (const auto& [name, series] : labeled_gauges_) {
    for (const auto& [campaign, gauge] : series) gauge->reset();
  }
  for (const auto& [name, series] : labeled_histograms_) {
    for (const auto& [campaign, histogram] : series) histogram->reset();
  }
}

std::string pipeline_summary(const Registry& registry) {
  // The registry parameter is non-const in spirit (get-or-create), but
  // summaries read existing metrics only; cast through the public API by
  // snapshotting.  Reading via snapshot keeps this function usable on
  // `const Registry&` without exposing internal maps.
  const Value snap = registry.snapshot();
  const auto counter_of = [&](const char* name) -> std::uint64_t {
    const Value* v = snap.get_path(std::string("counters.") + name);
    return v == nullptr
               ? 0
               : static_cast<std::uint64_t>(v->try_int().value_or(0));
  };
  const auto histogram_stats = [&](const char* name, double& mean_out,
                                   double& p50, double& p90, double& p99) {
    mean_out = p50 = p90 = p99 = 0.0;
    const Value* h = snap.get_path(std::string("histograms.") + name);
    if (h == nullptr) return;
    const Value* buckets = h->get("buckets");
    const Value* lo = h->get("lo");
    const Value* width = h->get("width");
    const Value* total = h->get("total");
    const Value* sum = h->get("sum");
    if (buckets == nullptr || !buckets->is_array() || lo == nullptr ||
        width == nullptr || total == nullptr || sum == nullptr) {
      return;
    }
    const double n = total->as_double();
    if (n <= 0.0) return;
    mean_out = sum->as_double() / n;
    const auto quantile = [&](double q) {
      const double target = q * n;
      double seen = 0.0;
      for (std::size_t bin = 0; bin < buckets->as_array().size(); ++bin) {
        seen += buckets->as_array()[bin].as_double();
        if (seen >= target) {
          return lo->as_double() +
                 width->as_double() * static_cast<double>(bin + 1);
        }
      }
      return lo->as_double() +
             width->as_double() *
                 static_cast<double>(buckets->as_array().size());
    };
    p50 = quantile(0.5);
    p90 = quantile(0.9);
    p99 = quantile(0.99);
  };

  const std::uint64_t groups = counter_of("upin_journal_groups_committed_total");
  const std::uint64_t events = counter_of("upin_journal_events_enqueued_total");
  const std::uint64_t stalls =
      counter_of("upin_journal_backpressure_stalls_total");

  double flush_mean = 0.0, flush_p50 = 0.0, flush_p90 = 0.0, flush_p99 = 0.0;
  histogram_stats("upin_journal_flush_latency_us", flush_mean, flush_p50,
                  flush_p90, flush_p99);
  double sync_mean = 0.0, sync_p50 = 0.0, sync_p90 = 0.0, sync_p99 = 0.0;
  histogram_stats("upin_journal_sync_wait_us", sync_mean, sync_p50, sync_p90,
                  sync_p99);

  const double mean_group =
      groups == 0 ? 0.0
                  : static_cast<double>(events) / static_cast<double>(groups);
  std::string out;
  out += "journal pipeline metrics:\n";
  out += util::format("  events enqueued   : %llu in %llu groups (mean group size %.2f)\n",
                      static_cast<unsigned long long>(events),
                      static_cast<unsigned long long>(groups), mean_group);
  out += util::format("  flush latency     : mean %.0f us | p50 <= %.0f | p90 <= %.0f | p99 <= %.0f\n",
                      flush_mean, flush_p50, flush_p90, flush_p99);
  out += util::format("  sync wait         : mean %.0f us | p50 <= %.0f | p90 <= %.0f | p99 <= %.0f\n",
                      sync_mean, sync_p50, sync_p90, sync_p99);
  out += util::format("  backpressure      : %llu stalls\n",
                      static_cast<unsigned long long>(stalls));
  return out;
}

}  // namespace upin::obs
