// metrics.hpp — process-wide metrics registry.
//
// The paper's test suite reported progress only through its bash
// wrapper's stdout; diagnosing the §6.3 congestion episode meant
// post-hoc archaeology over MongoDB documents.  This layer gives the
// reproduction first-class run telemetry: named counters, gauges and
// fixed-bucket latency histograms, updated with cheap sharded atomics so
// the journal writer thread and the parallel-survey workers can
// instrument their hot paths without a shared lock.
//
// Two export formats make every run self-describing:
//   * to_prometheus() — the text exposition format, scraped by the CI
//     telemetry smoke job and printed by `survey_runner --metrics`;
//   * snapshot()      — a JSON value, stored in the `campaign_metrics`
//     docdb collection at checkpoint/end the way the paper stores its
//     per-(path, timestamp) documents.
//
// Metric *values* are monotone over process lifetime (Prometheus
// semantics); reset_values() exists for tests and benches that measure
// deltas.  Registered metric objects are never deleted, so references
// returned by the registry stay valid for the process lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace upin::obs {

/// Monotone counter.  add() spreads contention over cache-line-padded
/// shards (one slot per thread, assigned round-robin); value() sums them.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  [[nodiscard]] static std::size_t shard_index() noexcept;

  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (queue depths, active workers).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram.  Bucket math is util::bucket_index —
/// the same clamped fixed-width binning as util::Histogram, including its
/// non-finite guard — but the counts are atomics so concurrent observers
/// never serialize.
class LatencyHistogram {
 public:
  LatencyHistogram(double lo, double hi, std::size_t bins);

  void observe(double sample) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    return counts_[bin].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  /// Inclusive lower edge / exclusive upper edge of a bin.
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_high(std::size_t bin) const noexcept;
  /// Approximate quantile: the upper edge of the bucket containing the
  /// q-th observation (the usual Prometheus-histogram estimate).
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry.  Registration takes a mutex (rare); updates on
/// the returned references are lock-free.  Names follow the Prometheus
/// convention: `upin_<subsystem>_<what>[_total]`.
class Registry {
 public:
  /// The process-wide registry every subsystem instruments into.
  [[nodiscard]] static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name.  For histograms the bucket layout of the
  /// first registration wins; later callers get the same instance.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins);

  // ---- per-campaign label dimension -----------------------------------
  //
  // The fleet scheduler multiplexes N tenant campaigns over one process,
  // so its rates must be separable per tenant.  A labeled metric belongs
  // to a *family* (`name`) and carries one `campaign="<label>"` pair in
  // both export formats:
  //
  //   Prometheus: upin_fleet_units_total{campaign="3"} 12
  //   JSON:       "counters": {"upin_fleet_units_total{campaign=\"3\"}": 12}
  //
  // Get-or-create takes the registration mutex once; callers cache the
  // returned reference, so the update fast path is the same lock-free
  // sharded-atomic add as unlabeled metrics.  The unlabeled paths above
  // are untouched (no label lookup, no allocation on a lookup hit).
  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view campaign);
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view campaign);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name,
                                            std::string_view campaign,
                                            double lo, double hi,
                                            std::size_t bins);

  /// Prometheus text exposition (sorted by metric name — stable output).
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {lo, width, total, sum, buckets: [...]}}}.
  [[nodiscard]] util::Value snapshot() const;

  /// Zero every registered value, keeping registrations.  For tests and
  /// benches measuring per-run deltas; production metrics stay monotone.
  void reset_values();

 private:
  template <typename T>
  using LabeledFamily =
      std::map<std::string, std::map<std::string, std::unique_ptr<T>,
                                     std::less<>>,
               std::less<>>;

  mutable std::mutex mutex_;
  // std::map keeps exposition output sorted and pointers stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  // family name -> campaign label -> instance.
  LabeledFamily<Counter> labeled_counters_;
  LabeledFamily<Gauge> labeled_gauges_;
  LabeledFamily<LatencyHistogram> labeled_histograms_;
};

/// Human-readable table of the journal-pipeline metrics (flush-latency
/// percentiles, mean group size, backpressure stalls) — what the storage
/// benches print after each run.
[[nodiscard]] std::string pipeline_summary(const Registry& registry);

}  // namespace upin::obs
