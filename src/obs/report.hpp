// report.hpp — periodic structured progress reporting.
//
// The paper's campaign announced progress through its bash wrapper at
// every iteration; here the cadence is decoupled from the workload.
// ProgressReporter fires on a virtual-time interval and hands the caller
// a lazy message builder, so a filtered log level costs one comparison
// per tick and zero formatting.  Messages follow the structured
// `key=value` convention so runs can be grepped like the metric dumps.
#pragma once

#include <utility>

#include "util/clock.hpp"
#include "util/log.hpp"

namespace upin::obs {

/// Emits at most one log line per virtual-time interval.  Single-threaded
/// by design — each survey worker owns its own reporter, like its tracer.
class ProgressReporter {
 public:
  explicit ProgressReporter(util::SimDuration interval,
                            util::LogLevel level = util::LogLevel::kInfo)
      : interval_(interval.count() > 0 ? interval : util::sim_seconds(1.0)),
        level_(level),
        next_(interval_) {}

  /// True when `now` has crossed the next report mark.  Advances the mark
  /// past `now` (skipping missed intervals, not replaying them — virtual
  /// time can jump far in one probe).
  [[nodiscard]] bool due(util::SimTime now) noexcept {
    if (now < next_) return false;
    while (next_ <= now) next_ += interval_;
    return true;
  }

  /// Log the builder's message iff the interval elapsed and the level
  /// passes the filter.  The builder runs at most once per interval.
  template <typename Builder>
  void tick(util::SimTime now, Builder&& builder) {
    if (!util::Log::enabled(level_)) return;
    if (!due(now)) return;
    util::Log::write(level_, std::forward<Builder>(builder));
  }

  /// Unconditional final report (end of campaign), bypassing the timer.
  template <typename Builder>
  void final(Builder&& builder) {
    util::Log::write(level_, std::forward<Builder>(builder));
  }

 private:
  util::SimDuration interval_;
  util::LogLevel level_;
  util::SimTime next_;
};

}  // namespace upin::obs
