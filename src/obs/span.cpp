#include "obs/span.hpp"

#include <algorithm>
#include <utility>

#include "util/strings.hpp"

namespace upin::obs {

namespace {

/// Latest timestamp anywhere in the subtree — the effective end of a span
/// that was never explicitly closed (the root, or an adopted worker tree
/// cut short by a crash-injection point).
util::SimTime subtree_extent(const Span& span) {
  util::SimTime extent = std::max(span.start, span.end);
  for (const std::unique_ptr<Span>& child : span.children) {
    extent = std::max(extent, subtree_extent(*child));
  }
  return extent;
}

std::size_t count_spans(const Span& span) {
  std::size_t total = 1;
  for (const std::unique_ptr<Span>& child : span.children) {
    total += count_spans(*child);
  }
  return total;
}

void render_node(const Span& span, std::size_t depth, std::string& out) {
  const util::SimTime end =
      span.end == util::SimTime::zero() ? subtree_extent(span) : span.end;
  out.append(depth * 2, ' ');
  out += util::format("%s [%lld..%lld]\n", span.name.c_str(),
                      static_cast<long long>(span.start.count()),
                      static_cast<long long>(end.count()));
  for (const std::unique_ptr<Span>& child : span.children) {
    render_node(*child, depth + 1, out);
  }
}

util::Value node_to_json(const Span& span) {
  const util::SimTime end =
      span.end == util::SimTime::zero() ? subtree_extent(span) : span.end;
  util::Value::Array children;
  children.reserve(span.children.size());
  for (const std::unique_ptr<Span>& child : span.children) {
    children.push_back(node_to_json(*child));
  }
  return util::Value::object(
      {{"name", util::Value(span.name)},
       {"start_ns", util::Value(span.start.count())},
       {"end_ns", util::Value(end.count())},
       {"children", util::Value(std::move(children))}});
}

}  // namespace

SpanTracer::SpanTracer(std::string root_name)
    : root_(std::make_unique<Span>()) {
  root_->name = std::move(root_name);
  open_stack_.push_back(root_.get());
}

Span& SpanTracer::open(std::string name, util::SimTime start) {
  Span* parent = open_stack_.back();
  auto child = std::make_unique<Span>();
  child->name = std::move(name);
  child->start = start;
  Span& ref = *child;
  parent->children.push_back(std::move(child));
  open_stack_.push_back(&ref);
  return ref;
}

void SpanTracer::close(util::SimTime end) {
  // The root stays on the stack: its extent is derived at render time so
  // an unbalanced close (crash-injection mid-unit) can't corrupt it.
  if (open_stack_.size() <= 1) return;
  open_stack_.back()->end = end;
  open_stack_.pop_back();
}

void SpanTracer::adopt(SpanTracer&& worker) {
  open_stack_.back()->children.push_back(std::move(worker.root_));
  worker.open_stack_.clear();
}

std::size_t SpanTracer::span_count() const noexcept {
  return count_spans(*root_);
}

std::string SpanTracer::render() const {
  std::string out;
  render_node(*root_, 0, out);
  return out;
}

util::Value SpanTracer::to_json() const { return node_to_json(*root_); }

}  // namespace upin::obs
