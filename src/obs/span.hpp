// span.hpp — virtual-clock scoped spans.
//
// A campaign is a hierarchy of timed phases — campaign → destination →
// path → probe — and diagnosing episodes like the paper's §6.3 100%-loss
// window means knowing *when in the campaign timeline* each probe ran.
// SpanTracer records that hierarchy keyed to util::SimTime, the shared
// virtual clock every measurement consumes.  Because the clock is a pure
// function of (seed, config), a fixed-seed campaign yields a
// bit-identical span tree on every run: render() output is diffable
// across machines and across code changes, which turns the timeline into
// a regression artifact rather than a debugging one-off.
//
// Concurrency model: one tracer per thread of execution.  Parallel
// survey workers each build their own tree (each on its own replica
// timeline starting at virtual zero) and the coordinator adopt()s them
// into the campaign root in destination order — deterministic no matter
// how the OS scheduled the workers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/json.hpp"

namespace upin::obs {

/// One node of the span tree.  `end` of zero means "still open" — the
/// renderer substitutes the subtree's latest child end.
struct Span {
  std::string name;
  util::SimTime start{};
  util::SimTime end{};
  std::vector<std::unique_ptr<Span>> children;
};

/// Owns one span tree and a cursor into it (the open-span stack).
/// Not thread-safe by design: share nothing, merge with adopt().
class SpanTracer {
 public:
  explicit SpanTracer(std::string root_name = "campaign");

  SpanTracer(SpanTracer&&) noexcept = default;
  SpanTracer& operator=(SpanTracer&&) noexcept = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Open a child of the innermost open span, starting at `start`.
  Span& open(std::string name, util::SimTime start);
  /// Close the innermost open span at `end`.  The root never closes via
  /// pop — it absorbs its children's extent at render time.
  void close(util::SimTime end);

  /// Graft `worker`'s whole tree (its root becomes a child) under this
  /// tracer's innermost open span.  Call in a deterministic order.
  void adopt(SpanTracer&& worker);

  [[nodiscard]] const Span& root() const noexcept { return *root_; }
  [[nodiscard]] std::size_t span_count() const noexcept;

  /// Deterministic text rendering, one line per span:
  ///   `<indent><name> [<start_ns>..<end_ns>]`
  /// Diffable across fixed-seed runs (the acceptance invariant).
  [[nodiscard]] std::string render() const;

  /// JSON form {name, start_ns, end_ns, children: [...]}.
  [[nodiscard]] util::Value to_json() const;

 private:
  std::unique_ptr<Span> root_;
  std::vector<Span*> open_stack_;  ///< root at [0], innermost at back
};

/// RAII span: opens on construction at the clock's current virtual time,
/// closes on destruction.  A null tracer makes it a no-op, so
/// instrumented code pays nothing when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const util::VirtualClock& clock,
             std::string name)
      : tracer_(tracer), clock_(&clock) {
    if (tracer_ != nullptr) tracer_->open(std::move(name), clock_->now());
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->close(clock_->now());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const util::VirtualClock* clock_;
};

}  // namespace upin::obs
