#include "scion/beacon.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "simnet/geo.hpp"

namespace upin::scion {

Beaconing::Beaconing(const Topology& topology, BeaconConfig config)
    : topology_(topology), config_(config) {
  compute_up_segments();
  compute_core_paths();
  // Stamp the lifetime window on every precomputed segment.  Beaconing
  // happens once at virtual time zero; re-beaconing is modelled by the
  // path cache re-resolving, so the window is fixed per Beaconing.
  const util::SimTime expires = util::sim_seconds(config_.segment_lifetime_s);
  for (auto& [leaf, segments] : up_by_leaf_) {
    for (Segment& segment : segments) {
      segment.created_at = util::SimTime::zero();
      segment.expires_at = expires;
    }
  }
}

void Beaconing::compute_up_segments() {
  for (const AsInfo& info : topology_.ases()) {
    std::vector<Segment>& segments = up_by_leaf_[info.ia];
    if (info.role == AsRole::kCore) {
      segments.push_back(Segment{Segment::Type::kUp, {info.ia}});
      continue;
    }
    // DFS climbing parent links; a segment ends at the first core AS.
    std::vector<IsdAsn> stack{info.ia};
    const std::function<void()> climb = [&] {
      const IsdAsn current = stack.back();
      for (const IsdAsn parent : topology_.parents_of(current)) {
        if (std::find(stack.begin(), stack.end(), parent) != stack.end()) {
          continue;  // loop
        }
        stack.push_back(parent);
        const AsInfo* parent_info = topology_.find_as(parent);
        if (parent_info != nullptr && parent_info->role == AsRole::kCore) {
          segments.push_back(Segment{Segment::Type::kUp, stack});
        } else if (stack.size() < config_.max_up_segment_ases) {
          climb();
        }
        stack.pop_back();
      }
    };
    climb();
  }
}

void Beaconing::compute_core_paths() {
  std::vector<IsdAsn> cores;
  for (const AsInfo& info : topology_.ases()) {
    if (info.role == AsRole::kCore) cores.push_back(info.ia);
  }
  for (const IsdAsn start : cores) {
    std::vector<std::vector<IsdAsn>>& paths = core_from_[start];
    std::vector<IsdAsn> stack{start};
    const std::function<void()> walk = [&] {
      paths.push_back(stack);  // every simple prefix is a usable core path
      if (stack.size() >= config_.max_core_segment_ases) return;
      for (const IsdAsn next : topology_.neighbors(stack.back(), LinkType::kCore)) {
        if (std::find(stack.begin(), stack.end(), next) != stack.end()) continue;
        stack.push_back(next);
        walk();
        stack.pop_back();
      }
    };
    walk();
  }
}

const std::vector<Segment>& Beaconing::up_segments(IsdAsn leaf) const {
  const auto it = up_by_leaf_.find(leaf);
  if (it == up_by_leaf_.end()) return empty_;
  return it->second;
}

std::vector<Segment> Beaconing::core_segments(IsdAsn from, IsdAsn to) const {
  std::vector<Segment> result;
  const auto it = core_from_.find(from);
  if (it == core_from_.end()) return result;
  const util::SimTime expires = util::sim_seconds(config_.segment_lifetime_s);
  for (const std::vector<IsdAsn>& path : it->second) {
    if (path.back() == to) {
      result.push_back(Segment{Segment::Type::kCore, path,
                               util::SimTime::zero(), expires});
    }
  }
  return result;
}

std::vector<Segment> Beaconing::down_segments(IsdAsn core, IsdAsn leaf) const {
  std::vector<Segment> result;
  for (const Segment& up : up_segments(leaf)) {
    if (up.ases.back() != core) continue;
    Segment down;
    down.type = Segment::Type::kDown;
    down.ases.assign(up.ases.rbegin(), up.ases.rend());
    down.created_at = up.created_at;
    down.expires_at = up.expires_at;
    result.push_back(std::move(down));
  }
  return result;
}

Path Beaconing::materialize(const std::vector<IsdAsn>& ases) const {
  std::vector<PathHop> hops;
  hops.reserve(ases.size());
  double mtu = 9000.0;
  util::SimDuration latency = util::SimDuration::zero();

  for (std::size_t i = 0; i < ases.size(); ++i) {
    PathHop hop;
    hop.ia = ases[i];
    hops.push_back(hop);
  }
  for (std::size_t i = 0; i + 1 < ases.size(); ++i) {
    const AsLink* link = topology_.find_link(ases[i], ases[i + 1]);
    if (link == nullptr) continue;  // cannot happen for combined segments
    const bool forward = link->a == ases[i];
    hops[i].egress_if = forward ? link->interface_a : link->interface_b;
    hops[i + 1].ingress_if = forward ? link->interface_b : link->interface_a;
    mtu = std::min(mtu, link->mtu);
    const AsInfo* from = topology_.find_as(ases[i]);
    const AsInfo* to = topology_.find_as(ases[i + 1]);
    if (from != nullptr && to != nullptr) {
      latency += simnet::propagation_delay(
          simnet::haversine_km(from->location, to->location));
    }
  }
  Path path(std::move(hops), mtu, latency);
  // A combined path inherits the tightest segment lifetime; all segments
  // share one beaconing round here, so the window is uniform.
  path.set_lifetime(util::SimTime::zero(),
                    util::sim_seconds(config_.segment_lifetime_s));
  return path;
}

std::vector<Path> Beaconing::paths(IsdAsn src, IsdAsn dst) const {
  std::vector<Path> result;
  if (src == dst) return result;
  if (topology_.find_as(src) == nullptr || topology_.find_as(dst) == nullptr) {
    return result;
  }

  // Collect candidate AS sequences; cycles introduced by gluing segments
  // are cut at their first occurrence, which implements SCION shortcuts
  // (crossing segments joined at the common AS).
  std::set<std::vector<IsdAsn>> sequences;
  const auto add_sequence = [&](const std::vector<IsdAsn>& raw) {
    std::vector<IsdAsn> simple;
    for (const IsdAsn ia : raw) {
      const auto seen = std::find(simple.begin(), simple.end(), ia);
      if (seen != simple.end()) {
        simple.erase(seen + 1, simple.end());  // cut the loop
      } else {
        simple.push_back(ia);
      }
    }
    if (simple.size() >= 2 && simple.front() == src && simple.back() == dst) {
      sequences.insert(std::move(simple));
    }
  };

  for (const Segment& up : up_segments(src)) {
    const IsdAsn core_src = up.ases.back();
    for (const Segment& down_reversed : up_segments(dst)) {
      const IsdAsn core_dst = down_reversed.ases.back();
      std::vector<IsdAsn> down(down_reversed.ases.rbegin(),
                               down_reversed.ases.rend());
      // Peering shortcuts: a peer link between an AS on the up segment
      // and an AS on the down segment bridges the two without touching
      // the cores (SCION allows this within and across ISDs).
      for (std::size_t i = 0; i < up.ases.size(); ++i) {
        for (std::size_t j = 0; j < down_reversed.ases.size(); ++j) {
          const AsLink* link =
              topology_.find_link(up.ases[i], down_reversed.ases[j]);
          if (link == nullptr || link->type != LinkType::kPeer) continue;
          std::vector<IsdAsn> full(up.ases.begin(),
                                   up.ases.begin() + static_cast<std::ptrdiff_t>(i) + 1);
          for (std::size_t k = j + 1; k-- > 0;) {
            full.push_back(down_reversed.ases[k]);
          }
          add_sequence(full);
        }
      }

      if (core_src == core_dst) {
        std::vector<IsdAsn> full = up.ases;
        full.insert(full.end(), down.begin() + 1, down.end());
        add_sequence(full);
        continue;
      }
      for (const Segment& core : core_segments(core_src, core_dst)) {
        std::vector<IsdAsn> full = up.ases;
        full.insert(full.end(), core.ases.begin() + 1, core.ases.end());
        full.insert(full.end(), down.begin() + 1, down.end());
        add_sequence(full);
      }
    }
  }

  result.reserve(sequences.size());
  for (const std::vector<IsdAsn>& sequence : sequences) {
    result.push_back(materialize(sequence));
  }
  std::sort(result.begin(), result.end(), [](const Path& a, const Path& b) {
    if (a.hop_count() != b.hop_count()) return a.hop_count() < b.hop_count();
    if (a.static_latency() != b.static_latency()) {
      return a.static_latency() < b.static_latency();
    }
    return a.sequence() < b.sequence();
  });
  if (result.size() > config_.max_paths) result.resize(config_.max_paths);
  return result;
}

}  // namespace upin::scion
