// beacon.hpp — SCION control plane: beaconing and segment combination.
//
// SCION discovers paths with Path Construction Beacons: core ASes flood
// beacons over core links (core segments) and down the intra-ISD
// parent→child hierarchy (up/down segments).  An end-to-end path is a
// combination up-segment + core-segment + down-segment, with the usual
// degenerate forms (shared core, common-AS shortcut).  This module
// computes all segments for a Topology and combines them on demand —
// which is exactly what `scion showpaths` surfaces to the user (§3.3).
#pragma once

#include <unordered_map>
#include <vector>

#include "scion/path.hpp"
#include "scion/topology.hpp"

namespace upin::scion {

/// A path segment: an AS sequence.
/// Up segments run leaf→core, core segments coreA→coreB, down segments
/// core→leaf.
struct Segment {
  enum class Type { kUp, kCore, kDown };
  Type type = Type::kUp;
  std::vector<IsdAsn> ases;
  /// Lifetime window stamped at beaconing time: segments are valid from
  /// `created_at` until `expires_at` (SCION defaults to 6 h), after which
  /// they must be re-beaconed or served flagged stale.
  util::SimTime created_at{};
  util::SimTime expires_at{};
};

/// Limits on segment exploration; defaults cover SCIONLab-scale graphs.
struct BeaconConfig {
  std::size_t max_up_segment_ases = 4;    ///< leaf..core inclusive
  std::size_t max_core_segment_ases = 5;  ///< coreA..coreB inclusive
  std::size_t max_paths = 256;            ///< combination cutoff per pair
  /// Segment lifetime in virtual seconds (SCION's default is 6 hours).
  double segment_lifetime_s = 21600.0;
};

/// Precomputed segment store for one topology.
class Beaconing {
 public:
  explicit Beaconing(const Topology& topology, BeaconConfig config = {});

  /// Up segments from `leaf` to any core AS of its ISD (leaf→core order).
  /// Core ASes have a single trivial segment {leaf}.
  [[nodiscard]] const std::vector<Segment>& up_segments(IsdAsn leaf) const;

  /// Core segments from `from` to `to` (both core ASes).
  [[nodiscard]] std::vector<Segment> core_segments(IsdAsn from, IsdAsn to) const;

  /// Down segments from core `core` to `leaf` (core→leaf order).
  [[nodiscard]] std::vector<Segment> down_segments(IsdAsn core, IsdAsn leaf) const;

  /// All end-to-end paths src→dst from segment combination, deduplicated,
  /// loop-free, sorted by (hop count, static latency) and truncated to
  /// `config.max_paths`.  Mirrors `scion showpaths` ranking.
  [[nodiscard]] std::vector<Path> paths(IsdAsn src, IsdAsn dst) const;

 private:
  void compute_up_segments();
  void compute_core_paths();
  [[nodiscard]] Path materialize(const std::vector<IsdAsn>& ases) const;

  const Topology& topology_;
  BeaconConfig config_;
  std::unordered_map<IsdAsn, std::vector<Segment>> up_by_leaf_;
  /// All simple core-graph paths up to the cap, keyed by endpoint pair.
  std::unordered_map<IsdAsn, std::vector<std::vector<IsdAsn>>> core_from_;
  std::vector<Segment> empty_;
};

}  // namespace upin::scion
