#include "scion/control_plane.hpp"

#include <utility>

namespace upin::scion {

using util::SimTime;

ControlPlane::ControlPlane(
    std::uint64_t seed, ControlPlaneConfig config, const Topology& topology,
    const Beaconing& beaconing,
    const std::unordered_map<IsdAsn, simnet::NodeId>& node_of,
    const simnet::FaultPlan& faults, IsdAsn local_as)
    : beaconing_(beaconing),
      revocations_(seed, config.revocation, topology, node_of, faults),
      cache_(config.cache) {
  const auto local = node_of.find(local_as);
  if (local != node_of.end() && faults.active()) {
    local_down_windows_ = faults.server_down_windows(local->second);
  }
}

bool ControlPlane::beaconing_available(SimTime now) const {
  for (const simnet::FaultWindow& window : local_down_windows_) {
    if (window.start <= now && now < window.end) return false;
  }
  return true;
}

void ControlPlane::sync(SimTime now) {
  revocations_.poll(now, [&](const Revocation& event) {
    live_replies_.clear();
    cache_.invalidate_if([&](const Path& path) {
      const std::vector<PathHop>& hops = path.hops();
      if (event.kind == Revocation::Kind::kServerDown) {
        return !hops.empty() && hops.back().ia == event.from;
      }
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        if ((hops[i].ia == event.from && hops[i + 1].ia == event.to) ||
            (hops[i].ia == event.to && hops[i + 1].ia == event.from)) {
          return true;
        }
      }
      return false;
    });
  });
}

std::vector<Path> ControlPlane::resolve_raw(IsdAsn src, IsdAsn dst,
                                            SimTime now) {
  PathCacheLookup looked_up = cache_.lookup(
      src, dst, now,
      [this](IsdAsn from, IsdAsn to) { return beaconing_.paths(from, to); },
      beaconing_available(now));
  // Expired-but-unrevoked paths stay usable, flagged stale: losing every
  // path to a lifetime boundary while beaconing is down would be a
  // self-inflicted outage the paper's testbed never had.
  for (Path& path : looked_up.paths) {
    if (path.expired(now)) path.set_status("stale");
  }
  return std::move(looked_up.paths);
}

std::vector<Path> ControlPlane::live_paths(IsdAsn src, IsdAsn dst,
                                           SimTime now) {
  const std::string key = src.to_string() + ">" + dst.to_string();
  const auto memo = live_replies_.find(key);
  if (memo != live_replies_.end() && memo->second.at == now) {
    return memo->second.paths;
  }

  std::vector<Path> paths = resolve_raw(src, dst, now);
  std::vector<Path> live;
  live.reserve(paths.size());
  for (Path& path : paths) {
    if (revocations_.path_revoked(path, now)) continue;
    live.push_back(std::move(path));
  }

  // The memo never outlives a delivery (sync clears it), so its only
  // bound is the number of pairs queried between deliveries; keep that
  // aligned with the path cache's own LRU capacity.
  if (live_replies_.size() >= cache_.config().capacity) live_replies_.clear();
  LiveReply& reply = live_replies_[key];
  reply.at = now;
  reply.paths = live;
  return live;
}

std::vector<Path> ControlPlane::annotated_paths(IsdAsn src, IsdAsn dst,
                                                SimTime now) {
  std::vector<Path> paths = resolve_raw(src, dst, now);
  for (Path& path : paths) {
    if (revocations_.path_revoked(path, now)) path.set_status("revoked");
  }
  return paths;
}

util::Status ControlPlane::restore(const util::Value& snapshot,
                                   SimTime as_of) {
  const util::Status status = cache_.restore(snapshot);
  if (!status.ok()) return status;
  live_replies_.clear();
  revocations_.advance_cursor_to(as_of);
  return util::Status::success();
}

}  // namespace upin::scion
