// control_plane.hpp — the host-side control plane: path lookup with
// lifetimes, revocation delivery, and graceful degradation.
//
// Composes the two lifetime mechanisms into the single object a host
// consults before sending anything:
//
//   * a RevocationLog turning FaultPlan windows into delivered SCMP
//     revocations (bounded, seeded propagation delay);
//   * a PathCache answering (src, dst) lookups path-server-style with
//     TTL, stale-while-revalidate and LRU bounds.
//
// `sync(now)` delivers pending revocations and dirty-marks the cache
// entries they cover; `live_paths()` then serves only paths with no
// delivered, unexpired revocation — which is the "no probe on a revoked
// path" invariant the churn property test pins.  When the local AS's
// path server is itself inside a server-down window, beaconing is
// unavailable and the cache degrades to serving stale entries instead of
// failing lookups.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scion/beacon.hpp"
#include "scion/path.hpp"
#include "scion/path_cache.hpp"
#include "scion/revocation.hpp"
#include "scion/topology.hpp"
#include "simnet/faultplan.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"

namespace upin::scion {

struct ControlPlaneConfig {
  PathCacheConfig cache;
  RevocationConfig revocation;
};

class ControlPlane {
 public:
  /// `topology`, `beaconing` and `faults` must outlive the control plane
  /// (the owning host keeps all three).
  ControlPlane(std::uint64_t seed, ControlPlaneConfig config,
               const Topology& topology, const Beaconing& beaconing,
               const std::unordered_map<IsdAsn, simnet::NodeId>& node_of,
               const simnet::FaultPlan& faults, IsdAsn local_as);

  /// Deliver every revocation due by `now`; delivered events dirty-mark
  /// the cache entries whose paths they cover.  Idempotent per instant.
  void sync(util::SimTime now);

  /// Paths src→dst usable for sending at `now`: cache-served, with
  /// revoked paths removed.  Expired-but-unrevoked and cache-stale paths
  /// are kept, flagged with status "stale".
  ///
  /// Repeated lookups for the same pair at the same instant are served
  /// from a filtered-reply memo (the expensive part of a lookup is the
  /// per-hop revocation filter, and liveness is a pure function of
  /// `now`); the memo is dropped whenever `sync` delivers an event.
  [[nodiscard]] std::vector<Path> live_paths(IsdAsn src, IsdAsn dst,
                                             util::SimTime now);

  /// All discovered paths src→dst with liveness annotated on status
  /// ("alive" | "stale" | "revoked") — what `showpaths` renders.
  [[nodiscard]] std::vector<Path> annotated_paths(IsdAsn src, IsdAsn dst,
                                                  util::SimTime now);

  /// Is the local AS's path infrastructure reachable at `now`?  False
  /// while the local node sits in a server-down window: no re-beaconing,
  /// the cache serves stale.
  [[nodiscard]] bool beaconing_available(util::SimTime now) const;

  [[nodiscard]] bool path_revoked(const Path& path, util::SimTime now) const {
    return revocations_.path_revoked(path, now);
  }
  [[nodiscard]] bool hops_revoked(const std::vector<IsdAsn>& ases,
                                  util::SimTime now) const {
    return revocations_.hops_revoked(ases, now);
  }
  [[nodiscard]] std::optional<util::SimTime> revoked_since(
      const Path& path, util::SimTime now) const {
    return revocations_.revoked_since(path, now);
  }

  [[nodiscard]] const RevocationLog& revocations() const noexcept {
    return revocations_;
  }
  [[nodiscard]] PathCache& cache() noexcept { return cache_; }
  [[nodiscard]] const PathCache& cache() const noexcept { return cache_; }

  /// Checkpoint support: the cache is the only state that needs saving
  /// (the revocation log is a pure function of the seed and fault plan).
  /// `restore` replaces the cache content and fast-forwards the delivery
  /// cursor to `as_of` without re-invalidating — the snapshot already
  /// reflects those deliveries.
  [[nodiscard]] util::Value checkpoint() const { return cache_.snapshot(); }
  [[nodiscard]] util::Status restore(const util::Value& snapshot,
                                     util::SimTime as_of);

 private:
  /// One memoized `live_paths` reply: valid only for lookups at exactly
  /// `at` and only until the next delivered revocation.
  struct LiveReply {
    util::SimTime at{};
    std::vector<Path> paths;
  };

  [[nodiscard]] std::vector<Path> resolve_raw(IsdAsn src, IsdAsn dst,
                                              util::SimTime now);

  const Beaconing& beaconing_;
  RevocationLog revocations_;
  PathCache cache_;
  /// Server-down windows of the local AS node (metric-free query path).
  std::vector<simnet::FaultWindow> local_down_windows_;
  std::unordered_map<std::string, LiveReply> live_replies_;
};

}  // namespace upin::scion
