#include "scion/isd_asn.hpp"

#include "util/strings.hpp"

namespace upin::scion {

using util::ErrorCode;
using util::Result;

std::string IsdAsn::to_string() const {
  std::string out = std::to_string(isd_);
  out.push_back('-');
  if (asn_ < (1ULL << 32)) {
    out += std::to_string(asn_);
    return out;
  }
  // Three colon-separated 16-bit hex groups, SCION style (no padding).
  const auto group = [&](int shift) {
    return util::format("%llx",
                        static_cast<unsigned long long>((asn_ >> shift) & 0xffff));
  };
  out += group(32);
  out.push_back(':');
  out += group(16);
  out.push_back(':');
  out += group(0);
  return out;
}

Result<IsdAsn> IsdAsn::parse(std::string_view text) {
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "ISD-AS must look like <isd>-<asn>"};
  }
  const auto isd = util::parse_uint(text.substr(0, dash));
  if (!isd.has_value() || *isd > 0xffff) {
    return util::Error{ErrorCode::kInvalidArgument, "bad ISD number"};
  }
  const std::string_view asn_text = text.substr(dash + 1);
  if (asn_text.find(':') == std::string_view::npos) {
    const auto asn = util::parse_uint(asn_text);
    if (!asn.has_value()) {
      return util::Error{ErrorCode::kInvalidArgument, "bad decimal ASN"};
    }
    return IsdAsn(static_cast<std::uint16_t>(*isd), *asn);
  }
  const std::vector<std::string> groups = util::split(asn_text, ':');
  if (groups.size() != 3) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "hex ASN needs three groups"};
  }
  std::uint64_t asn = 0;
  for (const std::string& group : groups) {
    const auto part = util::parse_uint(group, 16);
    if (!part.has_value() || *part > 0xffff) {
      return util::Error{ErrorCode::kInvalidArgument, "bad hex ASN group"};
    }
    asn = (asn << 16) | *part;
  }
  return IsdAsn(static_cast<std::uint16_t>(*isd), asn);
}

std::string SnetAddress::to_string() const {
  return ia.to_string() + ",[" + host + "]";
}

Result<SnetAddress> SnetAddress::parse(std::string_view text) {
  const std::size_t comma = text.find(',');
  if (comma == std::string_view::npos) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "address must look like <isd-as>,[<host>]"};
  }
  Result<IsdAsn> ia = IsdAsn::parse(util::trim(text.substr(0, comma)));
  if (!ia.ok()) return Result<SnetAddress>(ia.error());

  std::string_view host = util::trim(text.substr(comma + 1));
  if (host.size() < 3 || host.front() != '[' || host.back() != ']') {
    return util::Error{ErrorCode::kInvalidArgument,
                       "host must be bracketed: [a.b.c.d]"};
  }
  host = host.substr(1, host.size() - 2);
  return SnetAddress{ia.value(), std::string(host)};
}

}  // namespace upin::scion
