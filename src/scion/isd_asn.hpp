// isd_asn.hpp — SCION addressing: ISD-AS numbers and host addresses.
//
// SCION identifies an AS by the pair <ISD>-<ASN>, where the ASN is
// rendered in BGP-style decimal below 2^32 and in colon-grouped hex
// ("ffaa:0:1002") above.  A full host address adds the host IP:
// "16-ffaa:0:1002,[172.31.43.7]" — the exact format the paper's test
// suite passes to `scion ping` and friends.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace upin::scion {

/// An ISD-AS identifier.
class IsdAsn {
 public:
  constexpr IsdAsn() = default;
  constexpr IsdAsn(std::uint16_t isd, std::uint64_t asn) noexcept
      : isd_(isd), asn_(asn) {}

  [[nodiscard]] constexpr std::uint16_t isd() const noexcept { return isd_; }
  [[nodiscard]] constexpr std::uint64_t asn() const noexcept { return asn_; }

  /// True for the default-constructed wildcard (0-0).
  [[nodiscard]] constexpr bool is_wildcard() const noexcept {
    return isd_ == 0 && asn_ == 0;
  }

  /// "16-ffaa:0:1002" (hex grouping for ASNs >= 2^32, decimal otherwise).
  [[nodiscard]] std::string to_string() const;

  /// Parse "16-ffaa:0:1002" or "16-64512".
  [[nodiscard]] static util::Result<IsdAsn> parse(std::string_view text);

  friend constexpr auto operator<=>(const IsdAsn&, const IsdAsn&) = default;

 private:
  std::uint16_t isd_ = 0;
  std::uint64_t asn_ = 0;
};

/// Build a colon-grouped hex ASN of the "ffaa:x:y" family used by
/// SCIONLab: ffaa:0:z for infrastructure ASes, ffaa:1:z for user ASes.
[[nodiscard]] constexpr std::uint64_t make_asn(std::uint16_t group,
                                               std::uint16_t low) noexcept {
  return (0xffaaULL << 32) | (static_cast<std::uint64_t>(group) << 16) | low;
}

/// A SCION host address: ISD-AS plus host IP.
struct SnetAddress {
  IsdAsn ia;
  std::string host;  ///< textual IPv4/IPv6 address

  /// "16-ffaa:0:1002,[172.31.43.7]"
  [[nodiscard]] std::string to_string() const;

  /// Parse "16-ffaa:0:1002,[172.31.43.7]" (brackets required).
  [[nodiscard]] static util::Result<SnetAddress> parse(std::string_view text);

  friend bool operator==(const SnetAddress&, const SnetAddress&) = default;
};

}  // namespace upin::scion

template <>
struct std::hash<upin::scion::IsdAsn> {
  std::size_t operator()(const upin::scion::IsdAsn& ia) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(ia.isd()) << 48) ^ ia.asn());
  }
};
