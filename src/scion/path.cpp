#include "scion/path.hpp"

#include "util/strings.hpp"

namespace upin::scion {

using util::ErrorCode;
using util::Result;

std::set<std::uint16_t> Path::isd_set() const {
  std::set<std::uint16_t> isds;
  for (const PathHop& hop : hops_) isds.insert(hop.ia.isd());
  return isds;
}

bool Path::traverses(IsdAsn ia) const noexcept {
  for (const PathHop& hop : hops_) {
    if (hop.ia == ia) return true;
  }
  return false;
}

std::string Path::sequence() const {
  std::string out;
  for (const PathHop& hop : hops_) {
    if (!out.empty()) out.push_back(' ');
    out += hop.ia.to_string();
    out.push_back('#');
    out += std::to_string(hop.ingress_if);
    out.push_back(',');
    out += std::to_string(hop.egress_if);
  }
  return out;
}

Result<Path> Path::parse_sequence(std::string_view text) {
  std::vector<PathHop> hops;
  for (const std::string& token : util::split(std::string(text), ' ')) {
    if (token.empty()) continue;
    const std::size_t hash = token.find('#');
    if (hash == std::string::npos) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "hop predicate missing '#': " + token};
    }
    Result<IsdAsn> ia = IsdAsn::parse(std::string_view(token).substr(0, hash));
    if (!ia.ok()) return Result<Path>(ia.error());
    const std::vector<std::string> interfaces =
        util::split(std::string_view(token).substr(hash + 1), ',');
    if (interfaces.size() != 2) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "hop predicate needs <in>,<out>: " + token};
    }
    const auto ingress = util::parse_uint(interfaces[0]);
    const auto egress = util::parse_uint(interfaces[1]);
    if (!ingress.has_value() || !egress.has_value() || *ingress > 0xffff ||
        *egress > 0xffff) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "bad interface id in: " + token};
    }
    hops.push_back(PathHop{ia.value(), static_cast<std::uint16_t>(*ingress),
                           static_cast<std::uint16_t>(*egress)});
  }
  if (hops.size() < 2) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "sequence needs at least two hops"};
  }
  return Path(std::move(hops), 0.0, util::SimDuration::zero());
}

std::string Path::to_string() const {
  std::string out;
  for (const PathHop& hop : hops_) {
    if (!out.empty()) out += " > ";
    out += hop.ia.to_string();
  }
  return out;
}

}  // namespace upin::scion
