// path.hpp — an end-to-end SCION path.
//
// A path is the unit everything else in this library operates on: the
// test-suite measures paths, the database stores one document per path,
// and the selection layer ranks them.  A path records its AS-level hop
// sequence with ingress/egress interface ids (the "hop predicates" the
// paper's scripts pass via `--sequence`), the path MTU, and the static
// (propagation-only) latency bound that `showpaths --extended` reports.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "scion/isd_asn.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"

namespace upin::scion {

/// One AS on a path with the interfaces the path enters/leaves through
/// (0 = no interface, i.e. the endpoint side).
struct PathHop {
  IsdAsn ia;
  std::uint16_t ingress_if = 0;
  std::uint16_t egress_if = 0;

  friend bool operator==(const PathHop&, const PathHop&) = default;
};

/// An end-to-end path from hops().front() to hops().back().
class Path {
 public:
  Path() = default;
  Path(std::vector<PathHop> hops, double mtu, util::SimDuration static_latency)
      : hops_(std::move(hops)), mtu_(mtu), static_latency_(static_latency) {}

  [[nodiscard]] const std::vector<PathHop>& hops() const noexcept { return hops_; }
  /// Number of ASes on the path (the paper's "hop count").
  [[nodiscard]] std::size_t hop_count() const noexcept { return hops_.size(); }
  [[nodiscard]] IsdAsn source() const { return hops_.front().ia; }
  [[nodiscard]] IsdAsn destination() const { return hops_.back().ia; }

  [[nodiscard]] double mtu() const noexcept { return mtu_; }
  /// Lower-bound one-way latency from link propagation delays.
  [[nodiscard]] util::SimDuration static_latency() const noexcept {
    return static_latency_;
  }
  [[nodiscard]] const std::string& status() const noexcept { return status_; }
  void set_status(std::string status) { status_ = std::move(status); }

  /// Control-plane lifetime: when the path was assembled from beacons and
  /// when its segments expire.  A default-constructed window (0, 0) means
  /// "no lifetime information" and never reads as expired.
  [[nodiscard]] util::SimTime created_at() const noexcept { return created_at_; }
  [[nodiscard]] util::SimTime expires_at() const noexcept { return expires_at_; }
  void set_lifetime(util::SimTime created_at, util::SimTime expires_at) noexcept {
    created_at_ = created_at;
    expires_at_ = expires_at;
  }
  /// True once the segment lifetime has elapsed (re-beaconing overdue).
  [[nodiscard]] bool expired(util::SimTime now) const noexcept {
    return expires_at_ > util::SimTime::zero() && now >= expires_at_;
  }

  /// Ordered set of ISDs the path traverses (paper §5.3 stores this per
  /// measurement to test whether ISD membership predicts performance).
  [[nodiscard]] std::set<std::uint16_t> isd_set() const;

  /// True when `ia` appears anywhere on the path.
  [[nodiscard]] bool traverses(IsdAsn ia) const noexcept;

  /// Hop-predicate sequence string, e.g.
  /// "17-ffaa:1:f00#0,1 17-ffaa:0:1107#2,1 16-ffaa:0:1002#3,0".
  [[nodiscard]] std::string sequence() const;

  /// Parse a sequence string back into hops (interface ids included).
  [[nodiscard]] static util::Result<Path> parse_sequence(std::string_view text);

  /// Plain AS chain, "17-ffaa:1:f00 > 17-ffaa:0:1107 > 16-ffaa:0:1002".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Path&, const Path&) = default;

 private:
  std::vector<PathHop> hops_;
  double mtu_ = 0.0;
  util::SimDuration static_latency_{};
  std::string status_ = "alive";
  util::SimTime created_at_{};
  util::SimTime expires_at_{};
};

}  // namespace upin::scion
