#include "scion/path_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace upin::scion {

using util::SimTime;
using util::Value;

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& stale_served;
  obs::Counter& evictions;

  static CacheMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static CacheMetrics metrics{
        registry.counter("upin_path_cache_hits_total"),
        registry.counter("upin_path_cache_misses_total"),
        registry.counter("upin_path_cache_stale_served_total"),
        registry.counter("upin_path_cache_evictions_total"),
    };
    return metrics;
  }
};

}  // namespace

PathCache::PathCache(PathCacheConfig config) : config_(config) {}

std::string PathCache::make_key(IsdAsn src, IsdAsn dst) {
  return src.to_string() + ">" + dst.to_string();
}

std::vector<Path> PathCache::flag_stale(std::vector<Path> paths) {
  for (Path& path : paths) path.set_status("stale");
  return paths;
}

void PathCache::touch(EntryList::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void PathCache::evict_to_capacity() {
  while (index_.size() > config_.capacity && !entries_.empty()) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
    CacheMetrics::get().evictions.add();
  }
}

void PathCache::refresh(Entry& entry, SimTime now, const Resolver& resolve) {
  entry.paths = resolve(entry.src, entry.dst);
  entry.resolved_at = now;
  entry.negative = entry.paths.empty();
  entry.dirty = false;
}

PathCacheLookup PathCache::lookup(IsdAsn src, IsdAsn dst, SimTime now,
                                  const Resolver& resolve,
                                  bool resolver_available) {
  PathCacheLookup result;
  if (!config_.enabled) {
    // Bypass mode: every lookup is a direct recombination.
    result.paths = resolve(src, dst);
    result.refreshed = true;
    return result;
  }
  CacheMetrics& metrics = CacheMetrics::get();
  const std::string key = make_key(src, dst);
  const auto found = index_.find(key);

  if (found == index_.end()) {
    ++stats_.misses;
    metrics.misses.add();
    if (!resolver_available) {
      // Nothing cached and no path server to ask: a hard miss.
      result.negative = true;
      return result;
    }
    entries_.push_front(Entry{key, src, dst, resolve(src, dst), now});
    Entry& entry = entries_.front();
    entry.negative = entry.paths.empty();
    index_[key] = entries_.begin();
    evict_to_capacity();
    result.paths = entry.paths;
    result.negative = entry.negative;
    result.refreshed = true;
    return result;
  }

  touch(found->second);
  Entry& entry = *found->second;
  const double age_s = util::to_seconds(now - entry.resolved_at);

  if (entry.negative) {
    if (age_s < config_.negative_ttl_s || !resolver_available) {
      ++stats_.hits;
      ++stats_.negative_hits;
      metrics.hits.add();
      result.hit = true;
      result.negative = true;
      return result;
    }
    ++stats_.misses;
    metrics.misses.add();
    refresh(entry, now, resolve);
    result.paths = entry.paths;
    result.negative = entry.negative;
    result.refreshed = true;
    return result;
  }

  if (entry.dirty) {
    if (resolver_available) {
      // A revocation touched this entry; re-resolve before serving.
      ++stats_.misses;
      metrics.misses.add();
      refresh(entry, now, resolve);
      result.paths = entry.paths;
      result.negative = entry.negative;
      result.refreshed = true;
      return result;
    }
    ++stats_.stale_served;
    metrics.stale_served.add();
    result.paths = flag_stale(entry.paths);
    result.hit = true;
    result.stale = true;
    return result;
  }

  if (age_s < config_.ttl_s) {
    ++stats_.hits;
    metrics.hits.add();
    result.paths = entry.paths;
    result.hit = true;
    return result;
  }

  if (age_s < config_.ttl_s + config_.stale_serve_s || !resolver_available) {
    // Stale-while-revalidate: answer with the old paths now, refresh the
    // entry so the next caller gets a fresh one.  With the resolver down
    // the grace window is unbounded — stale beats unreachable.
    ++stats_.stale_served;
    metrics.stale_served.add();
    result.paths = flag_stale(entry.paths);
    result.hit = true;
    result.stale = true;
    if (resolver_available) {
      refresh(entry, now, resolve);
      result.refreshed = true;
    }
    return result;
  }

  // Too stale even for the grace window: a plain refresh.
  ++stats_.misses;
  metrics.misses.add();
  refresh(entry, now, resolve);
  result.paths = entry.paths;
  result.negative = entry.negative;
  result.refreshed = true;
  return result;
}

std::size_t PathCache::invalidate_if(
    const std::function<bool(const Path&)>& covered) {
  std::size_t marked = 0;
  for (Entry& entry : entries_) {
    if (entry.dirty || entry.negative) continue;
    for (const Path& path : entry.paths) {
      if (covered(path)) {
        entry.dirty = true;
        ++marked;
        ++stats_.invalidations;
        break;
      }
    }
  }
  return marked;
}

void PathCache::clear() {
  entries_.clear();
  index_.clear();
}

Value PathCache::snapshot() const {
  Value::Array entries;
  for (const Entry& entry : entries_) {  // front-to-back == LRU order
    Value::Array paths;
    for (const Path& path : entry.paths) {
      paths.push_back(Value::object({
          {"sequence", path.sequence()},
          {"mtu", path.mtu()},
          {"static_latency_ns", path.static_latency().count()},
          {"created_at_ns", path.created_at().count()},
          {"expires_at_ns", path.expires_at().count()},
          {"status", path.status()},
      }));
    }
    entries.push_back(Value::object({
        {"src", entry.src.to_string()},
        {"dst", entry.dst.to_string()},
        {"resolved_at_ns", entry.resolved_at.count()},
        {"negative", entry.negative},
        {"dirty", entry.dirty},
        {"paths", Value(std::move(paths))},
    }));
  }
  return Value::object({{"entries", Value(std::move(entries))}});
}

util::Status PathCache::restore(const Value& value) {
  const Value* entries = value.get("entries");
  if (entries == nullptr || !entries->is_array()) {
    return util::Status(util::ErrorCode::kParseError,
                        "path cache snapshot: missing entries array");
  }
  clear();
  // Iterate the snapshot back-to-front and push_front, so the serialized
  // LRU order (front = most recent) is reproduced exactly.
  const Value::Array& list = entries->as_array();
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    const Value& item = *it;
    const Value* src_text = item.get("src");
    const Value* dst_text = item.get("dst");
    const Value* resolved_at = item.get("resolved_at_ns");
    const Value* paths = item.get("paths");
    if (src_text == nullptr || dst_text == nullptr || resolved_at == nullptr ||
        paths == nullptr || !paths->is_array()) {
      return util::Status(util::ErrorCode::kParseError,
                          "path cache snapshot: malformed entry");
    }
    const util::Result<IsdAsn> src = IsdAsn::parse(src_text->as_string());
    const util::Result<IsdAsn> dst = IsdAsn::parse(dst_text->as_string());
    if (!src.ok()) return util::Status(src.error());
    if (!dst.ok()) return util::Status(dst.error());

    Entry entry;
    entry.src = src.value();
    entry.dst = dst.value();
    entry.key = make_key(entry.src, entry.dst);
    entry.resolved_at = SimTime(util::SimDuration(resolved_at->as_int()));
    const Value* negative = item.get("negative");
    const Value* dirty = item.get("dirty");
    entry.negative = negative != nullptr && negative->as_bool();
    entry.dirty = dirty != nullptr && dirty->as_bool();
    for (const Value& encoded : paths->as_array()) {
      const Value* sequence = encoded.get("sequence");
      if (sequence == nullptr) {
        return util::Status(util::ErrorCode::kParseError,
                            "path cache snapshot: path without sequence");
      }
      util::Result<Path> parsed = Path::parse_sequence(sequence->as_string());
      if (!parsed.ok()) return util::Status(parsed.error());
      const Value* mtu = encoded.get("mtu");
      const Value* latency = encoded.get("static_latency_ns");
      const Value* created = encoded.get("created_at_ns");
      const Value* expires = encoded.get("expires_at_ns");
      const Value* status = encoded.get("status");
      Path path(parsed.value().hops(),
                mtu != nullptr ? mtu->as_double() : 0.0,
                util::SimDuration(latency != nullptr ? latency->as_int() : 0));
      path.set_lifetime(
          SimTime(util::SimDuration(created != nullptr ? created->as_int() : 0)),
          SimTime(util::SimDuration(expires != nullptr ? expires->as_int() : 0)));
      if (status != nullptr) path.set_status(status->as_string());
      entry.paths.push_back(std::move(path));
    }
    entries_.push_front(std::move(entry));
    index_[entries_.front().key] = entries_.begin();
  }
  evict_to_capacity();
  return util::Status::success();
}

}  // namespace upin::scion
