// path_cache.hpp — a path-server-style lookup cache for combined paths.
//
// Segment combination (`Beaconing::paths`) enumerates every up × core ×
// down candidate on each call; at SCIONLab scale that is already hundreds
// of combinations per AS pair, and the ROADMAP's internet-scale topology
// item makes it the dominant cost.  Real SCION deployments answer path
// lookups from a path-server cache instead.  This cache mirrors that:
//
//   * keyed by (src, dst) AS pair, bounded size, LRU eviction;
//   * entries carry a TTL; past it the entry is refreshed, but within a
//     configurable grace window the *old* paths are served immediately,
//     flagged stale (stale-while-revalidate);
//   * lookups that resolve to zero paths are cached too (negative
//     entries) with their own, shorter TTL;
//   * revocation delivery marks covering entries dirty, forcing a
//     re-resolve on next use;
//   * when the resolver itself is unavailable (beaconing inside a fault
//     window) stale entries are served at any age — graceful degradation
//     over a hard miss.
//
// Because `Beaconing::paths` is a pure function of the topology, a cached
// answer filtered by revocation state is always content-identical to a
// fresh recombination under the same filter — the invariant the
// `fig4_reachability --churn` bench pins.
//
// The cache is checkpointable: `snapshot()`/`restore()` round-trip the
// complete observable state (entries, LRU order, timestamps, flags) as a
// util::Value so a crashed campaign resumes with the identical cache
// trajectory.  Not thread-safe; one cache belongs to one host.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "scion/path.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace upin::scion {

struct PathCacheConfig {
  bool enabled = true;
  std::size_t capacity = 256;   ///< entries (AS pairs), LRU-evicted
  double ttl_s = 300.0;         ///< entry freshness window
  double stale_serve_s = 60.0;  ///< grace window: serve stale + revalidate
  double negative_ttl_s = 30.0;  ///< lifetime of cached empty answers
};

/// Outcome of one cache lookup.
struct PathCacheLookup {
  std::vector<Path> paths;
  bool hit = false;       ///< served from the cache (fresh or stale)
  bool stale = false;     ///< served past its TTL (flagged on each path)
  bool negative = false;  ///< served from a cached empty answer
  bool refreshed = false;  ///< this lookup re-resolved the entry
};

class PathCache {
 public:
  /// Resolves (src, dst) to paths — in practice Beaconing::paths.
  using Resolver = std::function<std::vector<Path>(IsdAsn, IsdAsn)>;

  /// Local per-instance counters (the obs registry is process-global and
  /// shared across hosts; tests want the per-cache view).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale_served = 0;
    std::uint64_t evictions = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t invalidations = 0;
  };

  explicit PathCache(PathCacheConfig config = {});

  /// Look up paths src→dst at `now`.  `resolver_available` is false while
  /// beaconing is inside a fault window: no refresh happens and stale
  /// entries are served at any age.
  [[nodiscard]] PathCacheLookup lookup(IsdAsn src, IsdAsn dst,
                                       util::SimTime now,
                                       const Resolver& resolve,
                                       bool resolver_available = true);

  /// Mark every entry containing a path matching `covered` dirty; dirty
  /// entries re-resolve on their next lookup.  Returns entries marked.
  std::size_t invalidate_if(const std::function<bool(const Path&)>& covered);

  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PathCacheConfig& config() const noexcept {
    return config_;
  }

  /// Complete observable state (entries in LRU order, timestamps, flags)
  /// for campaign checkpointing.  restore() replaces the current content;
  /// the local Stats counters are not part of the snapshot (the obs
  /// registry carries the metrics story).
  [[nodiscard]] util::Value snapshot() const;
  [[nodiscard]] util::Status restore(const util::Value& value);

 private:
  struct Entry {
    std::string key;
    IsdAsn src{};
    IsdAsn dst{};
    std::vector<Path> paths;
    util::SimTime resolved_at{};
    bool negative = false;
    bool dirty = false;
  };
  using EntryList = std::list<Entry>;

  [[nodiscard]] static std::string make_key(IsdAsn src, IsdAsn dst);
  void refresh(Entry& entry, util::SimTime now, const Resolver& resolve);
  void touch(EntryList::iterator it);
  void evict_to_capacity();
  [[nodiscard]] static std::vector<Path> flag_stale(std::vector<Path> paths);

  PathCacheConfig config_{};
  EntryList entries_;  ///< front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
  Stats stats_{};
};

}  // namespace upin::scion
