#include "scion/revocation.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace upin::scion {

using util::SimTime;

namespace {

obs::Counter& emitted_counter() {
  return obs::Registry::global().counter("upin_revocations_emitted_total");
}

obs::Counter& applied_counter() {
  return obs::Registry::global().counter("upin_revocations_applied_total");
}

}  // namespace

RevocationLog::RevocationLog(
    std::uint64_t seed, RevocationConfig config, const Topology& topology,
    const std::unordered_map<IsdAsn, simnet::NodeId>& node_of,
    const simnet::FaultPlan& faults) {
  if (!config.enabled || !faults.active()) return;
  const util::Rng master(seed ^ util::fnv1a64("revocation"));

  // Propagation delay for one event: forked per (entity, window index) so
  // inserting or removing one window never reshuffles another's draw.
  const auto delay = [&](const std::string& stream, std::size_t index) {
    util::Rng rng = master.fork(stream + "#" + std::to_string(index));
    return util::sim_seconds(
        rng.uniform(config.min_delay_s, config.max_delay_s));
  };

  const auto emit_link = [&](IsdAsn from, IsdAsn to) {
    const auto from_node = node_of.find(from);
    const auto to_node = node_of.find(to);
    if (from_node == node_of.end() || to_node == node_of.end()) return;
    const std::vector<simnet::FaultWindow> windows =
        faults.link_flap_windows(from_node->second, to_node->second);
    const std::string stream =
        "link:" + from.to_string() + ">" + to.to_string();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      Revocation event;
      event.kind = Revocation::Kind::kLinkDown;
      event.from = from;
      event.to = to;
      event.fault_start = windows[i].start;
      event.fault_end = windows[i].end;
      event.delivered_at = windows[i].start + delay(stream, i);
      events_.push_back(event);
    }
  };

  for (const AsLink& link : topology.links()) {
    emit_link(link.a, link.b);
    emit_link(link.b, link.a);
  }

  for (const AsInfo& info : topology.ases()) {
    const auto node = node_of.find(info.ia);
    if (node == node_of.end()) continue;
    const std::vector<simnet::FaultWindow> windows =
        faults.server_down_windows(node->second);
    const std::string stream = "as:" + info.ia.to_string();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      Revocation event;
      event.kind = Revocation::Kind::kServerDown;
      event.from = info.ia;
      event.to = info.ia;
      event.fault_start = windows[i].start;
      event.fault_end = windows[i].end;
      event.delivered_at = windows[i].start + delay(stream, i);
      events_.push_back(event);
    }
  }

  std::sort(events_.begin(), events_.end(),
            [](const Revocation& a, const Revocation& b) {
              if (a.delivered_at != b.delivered_at) {
                return a.delivered_at < b.delivered_at;
              }
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.fault_start < b.fault_start;
            });

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Revocation& event = events_[i];
    if (event.kind == Revocation::Kind::kLinkDown) {
      by_link_[event.from][event.to].push_back(i);
    } else {
      by_as_[event.from].push_back(i);
    }
  }
  emitted_counter().add(events_.size());
}

bool RevocationLog::covered(const std::vector<std::size_t>& indices,
                            SimTime t) const noexcept {
  for (const std::size_t index : indices) {
    const Revocation& event = events_[index];
    if (event.delivered_at <= t && t < event.fault_end) return true;
  }
  return false;
}

bool RevocationLog::link_revoked(IsdAsn from, IsdAsn to, SimTime t) const {
  const auto outer = by_link_.find(from);
  if (outer == by_link_.end()) return false;
  const auto inner = outer->second.find(to);
  if (inner == outer->second.end()) return false;
  return covered(inner->second, t);
}

bool RevocationLog::as_revoked(IsdAsn ia, SimTime t) const {
  const auto it = by_as_.find(ia);
  if (it == by_as_.end()) return false;
  return covered(it->second, t);
}

bool RevocationLog::hops_revoked(const std::vector<IsdAsn>& ases,
                                 SimTime t) const {
  if (ases.empty()) return false;
  for (std::size_t i = 0; i + 1 < ases.size(); ++i) {
    if (link_revoked(ases[i], ases[i + 1], t)) return true;
    if (link_revoked(ases[i + 1], ases[i], t)) return true;
  }
  return as_revoked(ases.back(), t);
}

bool RevocationLog::path_revoked(const Path& path, SimTime t) const {
  const std::vector<PathHop>& hops = path.hops();
  if (hops.empty()) return false;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (link_revoked(hops[i].ia, hops[i + 1].ia, t)) return true;
    if (link_revoked(hops[i + 1].ia, hops[i].ia, t)) return true;
  }
  return as_revoked(hops.back().ia, t);
}

std::optional<SimTime> RevocationLog::revoked_since(const Path& path,
                                                    SimTime t) const {
  std::optional<SimTime> earliest;
  const auto consider = [&](const std::vector<std::size_t>& indices) {
    for (const std::size_t index : indices) {
      const Revocation& event = events_[index];
      if (event.delivered_at <= t && t < event.fault_end) {
        if (!earliest || event.delivered_at < *earliest) {
          earliest = event.delivered_at;
        }
      }
    }
  };
  const auto consider_link = [&](IsdAsn from, IsdAsn to) {
    const auto outer = by_link_.find(from);
    if (outer == by_link_.end()) return;
    const auto inner = outer->second.find(to);
    if (inner == outer->second.end()) return;
    consider(inner->second);
  };
  const std::vector<PathHop>& hops = path.hops();
  if (hops.empty()) return earliest;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    consider_link(hops[i].ia, hops[i + 1].ia);
    consider_link(hops[i + 1].ia, hops[i].ia);
  }
  const auto as_it = by_as_.find(hops.back().ia);
  if (as_it != by_as_.end()) consider(as_it->second);
  return earliest;
}

std::size_t RevocationLog::poll(
    SimTime now, const std::function<void(const Revocation&)>& on_deliver) {
  std::size_t fired = 0;
  while (cursor_ < events_.size() && events_[cursor_].delivered_at <= now) {
    if (on_deliver) on_deliver(events_[cursor_]);
    ++cursor_;
    ++fired;
  }
  if (fired > 0) applied_counter().add(fired);
  return fired;
}

void RevocationLog::advance_cursor_to(SimTime now) noexcept {
  while (cursor_ < events_.size() && events_[cursor_].delivered_at <= now) {
    ++cursor_;
  }
}

}  // namespace upin::scion
