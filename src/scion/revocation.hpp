// revocation.hpp — SCMP-style path revocation, derived from fault windows.
//
// In SCION a failed link or dark path server does not wait to be
// rediscovered by data-plane timeouts: border routers originate SCMP
// revocation messages that propagate to path servers and subscribed end
// hosts, which drop the covered segments immediately.  This module plays
// that role for the simulated testbed: every `simnet::FaultPlan`
// link-flap and server-down window emits one revocation event, delivered
// to the host after a bounded, seeded propagation delay.  A path is
// *revoked* between delivery and the end of the underlying fault window —
// the gap between fault start and delivery is exactly the interval in
// which probes still legitimately die on the wire.
//
// The whole schedule is a pure function of (seed, config, fault plan), so
// revocation state needs no checkpointing: a resumed campaign rebuilds
// the identical log and only the delivery cursor must be fast-forwarded.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "scion/path.hpp"
#include "scion/topology.hpp"
#include "simnet/faultplan.hpp"
#include "simnet/network.hpp"
#include "util/clock.hpp"

namespace upin::scion {

/// Propagation-delay bounds for revocation delivery (virtual seconds).
struct RevocationConfig {
  bool enabled = true;
  double min_delay_s = 0.05;  ///< fastest SCMP propagation to the host
  double max_delay_s = 0.5;   ///< slowest (bounded, never unbounded)
};

/// One SCMP revocation event.
struct Revocation {
  enum class Kind {
    kLinkDown,    ///< a directed AS-level link is flapped
    kServerDown,  ///< a destination AS is dark (its server is down)
  };
  Kind kind = Kind::kLinkDown;
  IsdAsn from{};  ///< link source, or the dark AS itself for kServerDown
  IsdAsn to{};    ///< link target, == `from` for kServerDown
  util::SimTime fault_start{};   ///< underlying fault window opens
  util::SimTime fault_end{};     ///< fault heals; the revocation expires
  util::SimTime delivered_at{};  ///< host learns of it (start + delay)
};

/// The precomputed, delivery-ordered revocation schedule for one host.
///
/// Liveness queries are pure functions of virtual time; `poll()` is the
/// only stateful part (a monotone delivery cursor driving cache
/// invalidation).
class RevocationLog {
 public:
  RevocationLog() = default;  ///< inert log: nothing is ever revoked

  RevocationLog(std::uint64_t seed, RevocationConfig config,
                const Topology& topology,
                const std::unordered_map<IsdAsn, simnet::NodeId>& node_of,
                const simnet::FaultPlan& faults);

  [[nodiscard]] const std::vector<Revocation>& events() const noexcept {
    return events_;
  }

  /// Directed link (from, to) covered by a delivered, unexpired
  /// revocation at `t`?
  [[nodiscard]] bool link_revoked(IsdAsn from, IsdAsn to,
                                  util::SimTime t) const;

  /// AS `ia` covered by a delivered server-down revocation at `t`?
  [[nodiscard]] bool as_revoked(IsdAsn ia, util::SimTime t) const;

  /// Is `path` unusable at `t`?  True when any adjacent hop pair is
  /// link-revoked (either direction — probes are round trips) or the
  /// destination AS is revoked.  Matches the fault classes the data plane
  /// injects: only the destination's server-down matters en route.
  [[nodiscard]] bool path_revoked(const Path& path, util::SimTime t) const;

  /// Same check over a bare AS chain (selection-layer path summaries).
  [[nodiscard]] bool hops_revoked(const std::vector<IsdAsn>& ases,
                                  util::SimTime t) const;

  /// Delivery time of the earliest revocation covering `path` at `t`,
  /// or nullopt when the path is not revoked.  Failover latency is
  /// measured from this instant.
  [[nodiscard]] std::optional<util::SimTime> revoked_since(
      const Path& path, util::SimTime t) const;

  /// Deliver every event with delivered_at <= now that the cursor has not
  /// yet passed, invoking `on_deliver` per event (cache invalidation) and
  /// bumping upin_revocations_applied_total.  Returns how many fired.
  std::size_t poll(util::SimTime now,
                   const std::function<void(const Revocation&)>& on_deliver);

  /// Fast-forward the cursor past every event delivered by `now` without
  /// invoking callbacks or metrics — used when restoring a checkpoint
  /// whose cache state already reflects those deliveries.
  void advance_cursor_to(util::SimTime now) noexcept;

  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }

 private:
  [[nodiscard]] bool covered(const std::vector<std::size_t>& indices,
                             util::SimTime t) const noexcept;

  std::vector<Revocation> events_;  ///< sorted by delivered_at
  /// Secondary indices into events_ for O(per-entity) liveness queries.
  std::unordered_map<IsdAsn, std::unordered_map<IsdAsn, std::vector<std::size_t>>>
      by_link_;
  std::unordered_map<IsdAsn, std::vector<std::size_t>> by_as_;
  std::size_t cursor_ = 0;
};

}  // namespace upin::scion
