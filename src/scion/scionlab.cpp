#include "scion/scionlab.hpp"

#include <cassert>

namespace upin::scion {

namespace {

constexpr IsdAsn ia16(std::uint16_t low) { return IsdAsn{16, make_asn(0, low)}; }
constexpr IsdAsn ia17(std::uint16_t low) { return IsdAsn{17, make_asn(0, low)}; }
constexpr IsdAsn ia18(std::uint16_t low) { return IsdAsn{18, make_asn(0, low)}; }
constexpr IsdAsn ia19(std::uint16_t low) { return IsdAsn{19, make_asn(0, low)}; }
constexpr IsdAsn ia20(std::uint16_t low) { return IsdAsn{20, make_asn(0, low)}; }
constexpr IsdAsn ia25(std::uint16_t low) { return IsdAsn{25, make_asn(0, low)}; }
constexpr IsdAsn ia26(std::uint16_t low) { return IsdAsn{26, make_asn(0, low)}; }

struct AsRow {
  IsdAsn ia;
  const char* name;
  AsRole role;
  double lat;
  double lon;
  const char* city;
  const char* country;
  const char* op;
  double jitter_ms;
};

struct ParentRow {
  IsdAsn parent;
  IsdAsn child;
  double down_mbps;  ///< parent -> child
  double up_mbps;    ///< child -> parent
  double util_base;
  double mtu;
};

struct CoreRow {
  IsdAsn a;
  IsdAsn b;
  double util_base;
};

}  // namespace

ScionlabEnv scionlab_topology() {
  ScionlabEnv env;
  env.user_as = scionlab::kUserAs;
  Topology& topo = env.topology;

  const AsRow as_rows[] = {
      // ---- ISD 16: AWS (three cores form the AWS global backbone) -----
      {ia16(0x1001), "AWS Frankfurt", AsRole::kCore, 50.11, 8.68, "Frankfurt", "DE", "AWS", 0.15},
      {ia16(0x1004), "AWS Ohio", AsRole::kCore, 39.96, -83.00, "Columbus", "US", "AWS", 0.90},
      {ia16(0x1007), "AWS Singapore", AsRole::kCore, 1.35, 103.82, "Singapore", "SG", "AWS", 1.00},
      {ia16(0x1002), "AWS Ireland", AsRole::kAttachmentPoint, 53.35, -6.26, "Dublin", "IE", "AWS", 0.15},
      {ia16(0x1003), "AWS N. Virginia", AsRole::kNonCore, 39.04, -77.49, "Ashburn", "US", "AWS", 0.20},
      {ia16(0x1005), "AWS Oregon", AsRole::kNonCore, 45.84, -119.70, "Boardman", "US", "AWS", 0.20},
      {ia16(0x1006), "AWS Tokyo", AsRole::kNonCore, 35.68, 139.69, "Tokyo", "JP", "AWS", 0.25},
      {ia16(0x1008), "AWS Sao Paulo", AsRole::kNonCore, -23.55, -46.63, "Sao Paulo", "BR", "AWS", 0.30},
      {ia16(0x1009), "AWS Mumbai", AsRole::kNonCore, 19.08, 72.88, "Mumbai", "IN", "AWS", 0.30},
      // ---- ISD 17: Switzerland ----------------------------------------
      {ia17(0x1101), "ETH Zurich core", AsRole::kCore, 47.38, 8.54, "Zurich", "CH", "ETH Zurich", 0.12},
      {ia17(0x1102), "SWITCH core", AsRole::kCore, 46.20, 6.14, "Geneva", "CH", "SWITCH", 0.12},
      {ia17(0x1107), "ETHZ-AP", AsRole::kAttachmentPoint, 47.38, 8.54, "Zurich", "CH", "ETH Zurich", 0.12},
      {ia17(0x1103), "ETH student net", AsRole::kNonCore, 47.38, 8.54, "Zurich", "CH", "ETH Zurich", 0.12},
      // ---- ISD 18: North America ---------------------------------------
      {ia18(0x1201), "CMU core", AsRole::kCore, 40.44, -79.94, "Pittsburgh", "US", "CMU", 0.15},
      {ia18(0x1202), "CMU AP", AsRole::kAttachmentPoint, 40.44, -79.94, "Pittsburgh", "US", "CMU", 0.15},
      {ia18(0x1203), "Berkeley", AsRole::kNonCore, 37.87, -122.27, "Berkeley", "US", "UC Berkeley", 0.20},
      {ia18(0x1204), "Toronto", AsRole::kNonCore, 43.65, -79.38, "Toronto", "CA", "UofT", 0.20},
      {ia18(0x1205), "Columbia", AsRole::kNonCore, 40.71, -74.01, "New York", "US", "Columbia", 0.20},
      // ---- ISD 19: Europe -----------------------------------------------
      {ia19(0x1301), "OVGU core", AsRole::kCore, 52.12, 11.63, "Magdeburg", "DE", "OVGU", 0.12},
      {ia19(0x1302), "GEANT core", AsRole::kCore, 52.37, 4.90, "Amsterdam", "NL", "GEANT", 0.12},
      {ia19(0x1303), "Magdeburg AP", AsRole::kAttachmentPoint, 52.12, 11.63, "Magdeburg", "DE", "OVGU", 0.12},
      {ia19(0x1304), "Darmstadt", AsRole::kNonCore, 49.87, 8.65, "Darmstadt", "DE", "TU Darmstadt", 0.15},
      {ia19(0x1305), "Passau", AsRole::kNonCore, 48.57, 13.43, "Passau", "DE", "Uni Passau", 0.15},
      {ia19(0x1306), "Valencia", AsRole::kNonCore, 39.47, -0.38, "Valencia", "ES", "UPV", 0.20},
      {ia19(0x1307), "London", AsRole::kNonCore, 51.51, -0.13, "London", "GB", "UCL", 0.15},
      {ia19(0x1308), "Paris", AsRole::kNonCore, 48.86, 2.35, "Paris", "FR", "Sorbonne", 0.15},
      // ---- ISD 20: Korea -------------------------------------------------
      {ia20(0x1401), "KISTI core", AsRole::kCore, 36.35, 127.38, "Daejeon", "KR", "KISTI", 0.18},
      {ia20(0x1402), "KAIST AP", AsRole::kAttachmentPoint, 36.37, 127.36, "Daejeon", "KR", "KAIST", 0.18},
      {ia20(0x1403), "Korea University", AsRole::kNonCore, 37.59, 127.03, "Seoul", "KR", "Korea Univ", 0.18},
      {ia20(0x1404), "Busan", AsRole::kNonCore, 35.18, 129.08, "Busan", "KR", "PNU", 0.20},
      // ---- ISD 25: Taiwan -------------------------------------------------
      {ia25(0x1501), "NTU core", AsRole::kCore, 25.03, 121.57, "Taipei", "TW", "NTU", 0.18},
      {ia25(0x1502), "Taipei", AsRole::kNonCore, 25.03, 121.57, "Taipei", "TW", "NTU", 0.18},
      {ia25(0x1503), "Hsinchu", AsRole::kNonCore, 24.80, 120.97, "Hsinchu", "TW", "NCTU", 0.18},
      // ---- ISD 26: Japan --------------------------------------------------
      {ia26(0x1601), "WIDE core", AsRole::kCore, 35.68, 139.69, "Tokyo", "JP", "WIDE", 0.18},
      {ia26(0x1602), "Osaka", AsRole::kNonCore, 34.69, 135.50, "Osaka", "JP", "Osaka Univ", 0.18},
      // ---- The experimenters' AS (paper §3.2), attached to ETHZ-AP ------
      {scionlab::kUserAs, "MY_AS (UPIN client)", AsRole::kUser, 52.37, 4.90, "Amsterdam", "NL", "UvA", 0.12},
  };

  for (const AsRow& row : as_rows) {
    AsInfo info;
    info.ia = row.ia;
    info.name = row.name;
    info.role = row.role;
    info.location = {row.lat, row.lon};
    info.city = row.city;
    info.country = row.country;
    info.operator_name = row.op;
    info.jitter_ms = row.jitter_ms;
    const util::Status added = topo.add_as(std::move(info));
    assert(added.ok());
    (void)added;
  }

  // Parent -> child links.  The experimenters' access link is the shared
  // bottleneck for every bandwidth test (asymmetric, as §6.2 observes).
  const ParentRow parent_rows[] = {
      // ISD 16: AWS regions hang off the three AWS cores.
      {ia16(0x1001), ia16(0x1002), 200, 200, 0.30, 1472},  // FRA -> Dublin
      {ia16(0x1004), ia16(0x1002), 150, 150, 0.35, 1472},  // Ohio -> Dublin
      {ia16(0x1007), ia16(0x1002), 150, 150, 0.40, 1472},  // SIN -> Dublin
      {ia16(0x1004), ia16(0x1003), 200, 200, 0.30, 1472},  // Ohio -> N. Virginia
      {ia16(0x1001), ia16(0x1003), 150, 150, 0.35, 1472},  // FRA -> N. Virginia
      {ia16(0x1004), ia16(0x1005), 200, 200, 0.30, 1472},  // Ohio -> Oregon
      {ia16(0x1007), ia16(0x1005), 150, 150, 0.35, 1472},  // SIN -> Oregon
      {ia16(0x1007), ia16(0x1006), 200, 200, 0.30, 1472},  // SIN -> Tokyo
      {ia16(0x1004), ia16(0x1006), 150, 150, 0.35, 1472},  // Ohio -> Tokyo
      {ia16(0x1004), ia16(0x1008), 150, 150, 0.35, 1472},  // Ohio -> Sao Paulo
      {ia16(0x1007), ia16(0x1009), 150, 150, 0.35, 1472},  // SIN -> Mumbai
      // ISD 17
      {ia17(0x1101), ia17(0x1107), 500, 500, 0.20, 1472},
      {ia17(0x1102), ia17(0x1107), 500, 500, 0.20, 1472},
      {ia17(0x1107), ia17(0x1103), 300, 300, 0.20, 1472},
      // The user VM's tunnel to the attachment point: 40 Mbps down,
      // 14 Mbps up, MTU 1452 (overlay).
      {ia17(0x1107), scionlab::kUserAs, 40, 14, 0.15, 1452},
      // ISD 18
      {ia18(0x1201), ia18(0x1202), 400, 400, 0.25, 1472},
      {ia18(0x1202), ia18(0x1203), 200, 200, 0.30, 1472},  // leaves attach at the AP
      {ia18(0x1202), ia18(0x1204), 200, 200, 0.30, 1472},
      {ia18(0x1202), ia18(0x1205), 200, 200, 0.30, 1472},
      // ISD 19
      {ia19(0x1301), ia19(0x1303), 400, 400, 0.20, 1472},
      {ia19(0x1302), ia19(0x1303), 300, 300, 0.25, 1472},
      {ia19(0x1301), ia19(0x1304), 200, 200, 0.25, 1472},
      {ia19(0x1301), ia19(0x1305), 200, 200, 0.25, 1472},
      {ia19(0x1308), ia19(0x1306), 200, 200, 0.30, 1472},  // Valencia via Paris
      {ia19(0x1302), ia19(0x1307), 300, 300, 0.25, 1472},
      {ia19(0x1302), ia19(0x1308), 300, 300, 0.25, 1472},
      // ISD 20
      {ia20(0x1401), ia20(0x1402), 300, 300, 0.25, 1472},
      {ia20(0x1401), ia20(0x1403), 200, 200, 0.30, 1472},
      {ia20(0x1401), ia20(0x1404), 200, 200, 0.30, 1472},
      // ISD 25
      {ia25(0x1501), ia25(0x1502), 200, 200, 0.25, 1472},
      {ia25(0x1501), ia25(0x1503), 200, 200, 0.25, 1472},
      // ISD 26
      {ia26(0x1601), ia26(0x1602), 200, 200, 0.25, 1472},
  };

  for (const ParentRow& row : parent_rows) {
    AsLink link;
    link.a = row.parent;
    link.b = row.child;
    link.type = LinkType::kParentChild;
    link.capacity_ab_mbps = row.down_mbps;
    link.capacity_ba_mbps = row.up_mbps;
    link.util_base = row.util_base;
    link.mtu = row.mtu;
    const util::Status added = topo.add_link(link);
    assert(added.ok());
    (void)added;
  }

  // Peering links between non-core ASes (used by the SCION peering
  // shortcut; chosen off the user AS's up segments so the paper's
  // reachability figures are unaffected).
  const std::pair<IsdAsn, IsdAsn> peer_rows[] = {
      {ia19(0x1304), ia19(0x1305)},  // Darmstadt <-> Passau
      {ia18(0x1203), ia18(0x1205)},  // Berkeley <-> Columbia
      {ia19(0x1307), ia18(0x1205)},  // London <-> Columbia (cross-ISD)
  };
  for (const auto& [a, b] : peer_rows) {
    AsLink link;
    link.a = a;
    link.b = b;
    link.type = LinkType::kPeer;
    link.capacity_ab_mbps = 100;
    link.capacity_ba_mbps = 100;
    link.util_base = 0.25;
    link.mtu = 1472;
    const util::Status added = topo.add_link(link);
    assert(added.ok());
    (void)added;
  }

  // Core mesh (intra- and inter-ISD).
  const CoreRow core_rows[] = {
      // AWS backbone
      {ia16(0x1001), ia16(0x1004), 0.35},
      {ia16(0x1001), ia16(0x1007), 0.40},
      {ia16(0x1004), ia16(0x1007), 0.40},
      // Switzerland
      {ia17(0x1101), ia17(0x1102), 0.20},
      // Europe
      {ia19(0x1301), ia19(0x1302), 0.20},
      // Switzerland <-> Europe <-> AWS Frankfurt
      {ia17(0x1101), ia19(0x1301), 0.20},
      {ia17(0x1101), ia19(0x1302), 0.20},
      {ia17(0x1102), ia19(0x1302), 0.25},
      {ia17(0x1101), ia16(0x1001), 0.25},
      {ia17(0x1102), ia16(0x1001), 0.30},
      {ia19(0x1301), ia16(0x1001), 0.25},
      {ia19(0x1302), ia16(0x1001), 0.25},
      // Transatlantic
      {ia19(0x1302), ia18(0x1201), 0.35},
      {ia16(0x1001), ia18(0x1201), 0.35},
      {ia16(0x1004), ia18(0x1201), 0.30},
      // Asia
      {ia16(0x1007), ia20(0x1401), 0.35},
      {ia16(0x1007), ia25(0x1501), 0.35},
      {ia16(0x1007), ia26(0x1601), 0.35},
      {ia20(0x1401), ia26(0x1601), 0.30},
      {ia20(0x1401), ia25(0x1501), 0.30},
      {ia25(0x1501), ia26(0x1601), 0.30},
      // Transpacific
      {ia18(0x1201), ia26(0x1601), 0.40},
  };

  for (const CoreRow& row : core_rows) {
    AsLink link;
    link.a = row.a;
    link.b = row.b;
    link.type = LinkType::kCore;
    link.capacity_ab_mbps = 1000;
    link.capacity_ba_mbps = 1000;
    link.util_base = row.util_base;
    link.mtu = 1460;
    const util::Status added = topo.add_link(link);
    assert(added.ok());
    (void)added;
  }

  // availableServers: the 21 testable destinations (ids 1..21 in order).
  // Server 1 is the Germany AP, server 2 N. Virginia (the Fig 9 paths
  // 2_16..2_23 belong to destination id 2).
  env.servers = {
      {scionlab::kGermanyAp, "141.44.25.144"},   // 1  Germany (featured)
      {scionlab::kNVirginia, "172.31.19.144"},   // 2  N. Virginia (featured)
      {scionlab::kIreland, "172.31.43.7"},       // 3  Ireland (featured)
      {scionlab::kSingapore, "172.31.10.7"},     // 4  Singapore (featured)
      {scionlab::kKorea, "163.152.6.10"},        // 5  Korea (featured)
      {ia16(0x1001), "172.31.0.5"},              // 6
      {ia16(0x1004), "172.31.4.8"},              // 7
      {ia16(0x1005), "172.31.8.9"},              // 8
      {ia16(0x1006), "172.31.12.11"},            // 9
      {ia16(0x1008), "172.31.16.13"},            // 10
      {ia16(0x1009), "172.31.20.15"},            // 11
      {ia17(0x1103), "192.33.93.177"},           // 12
      {ia18(0x1202), "128.2.24.100"},            // 13
      {ia18(0x1203), "128.32.33.5"},             // 14
      {ia18(0x1204), "142.1.1.10"},              // 15
      {ia18(0x1205), "160.39.2.20"},             // 16
      {ia19(0x1304), "130.83.58.2"},             // 17
      {ia19(0x1306), "158.42.3.3"},              // 18
      {ia19(0x1307), "138.40.5.5"},              // 19
      {ia20(0x1402), "143.248.1.7"},             // 20
      {ia26(0x1602), "133.1.7.7"},               // 21
  };

  assert(env.topology.validate().ok());
  return env;
}

ScionlabEnv scionlab_topology_multihomed() {
  ScionlabEnv env = scionlab_topology();
  Topology& topo = env.topology;

  // A second attachment point in Geneva, under the SWITCH core.  Its
  // uplink mirrors the ETHZ-AP's, and the user AS gets a second 40/14
  // overlay tunnel — so up-segments via the two APs are disjoint from
  // the first hop on.
  AsInfo ap;
  ap.ia = scionlab::kSwitchAp;
  ap.name = "SWITCH-AP";
  ap.role = AsRole::kAttachmentPoint;
  ap.location = {46.20, 6.14};
  ap.city = "Geneva";
  ap.country = "CH";
  ap.operator_name = "SWITCH";
  ap.jitter_ms = 0.12;
  const util::Status ap_added = topo.add_as(std::move(ap));
  assert(ap_added.ok());
  (void)ap_added;

  const ParentRow extra_rows[] = {
      {ia17(0x1102), scionlab::kSwitchAp, 500, 500, 0.20, 1472},
      {scionlab::kSwitchAp, scionlab::kUserAs, 40, 14, 0.15, 1452},
  };
  for (const ParentRow& row : extra_rows) {
    AsLink link;
    link.a = row.parent;
    link.b = row.child;
    link.type = LinkType::kParentChild;
    link.capacity_ab_mbps = row.down_mbps;
    link.capacity_ba_mbps = row.up_mbps;
    link.util_base = row.util_base;
    link.mtu = row.mtu;
    const util::Status added = topo.add_link(link);
    assert(added.ok());
    (void)added;
  }

  assert(env.topology.validate().ok());
  return env;
}

}  // namespace upin::scion
