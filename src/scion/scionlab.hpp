// scionlab.hpp — the embedded SCIONLab-like testbed.
//
// A 35-AS topology standing in for the SCIONLab deployment of paper §3.1
// (Fig 1): seven ISDs, core / non-core / attachment-point roles, real-city
// geography, plus the authors' own user AS attached to the ETHZ
// attachment point (§3.2).  The 21 "availableServers" destinations match
// the paper's reachability study (§6, Fig 4); the five featured servers
// are in Germany, Ireland, N. Virginia, Singapore and Korea, as in §6.
//
// The topology is synthetic but structure-preserving: the Ireland AS has
// parents in Frankfurt, Ohio and Singapore, so its down-segments create
// the three latency layers of Fig 5 with Ohio/Singapore as the
// second-last hop — exactly the paper's observation.
#pragma once

#include <vector>

#include "scion/topology.hpp"

namespace upin::scion {

/// The assembled testbed: topology + user AS + availableServers registry.
struct ScionlabEnv {
  Topology topology;
  IsdAsn user_as;                     ///< "MY_AS", 17-ffaa:1:f00
  std::vector<SnetAddress> servers;   ///< 21 destinations, ids 1..21 in order
};

/// Well-known ASes (the paper's featured destinations).
namespace scionlab {
inline constexpr IsdAsn kUserAs{17, make_asn(1, 0xf00)};
inline constexpr IsdAsn kEthzAp{17, make_asn(0, 0x1107)};
/// Second attachment point, present only in the multihomed variant.
inline constexpr IsdAsn kSwitchAp{17, make_asn(0, 0x1108)};
inline constexpr IsdAsn kGermanyAp{19, make_asn(0, 0x1303)};     ///< Magdeburg
inline constexpr IsdAsn kIreland{16, make_asn(0, 0x1002)};       ///< AWS Dublin
inline constexpr IsdAsn kNVirginia{16, make_asn(0, 0x1003)};     ///< AWS Ashburn
inline constexpr IsdAsn kSingapore{16, make_asn(0, 0x1007)};     ///< AWS Singapore
inline constexpr IsdAsn kKorea{20, make_asn(0, 0x1403)};         ///< Korea Univ.
inline constexpr IsdAsn kOhio{16, make_asn(0, 0x1004)};          ///< AWS Ohio
inline constexpr IsdAsn kFrankfurtCore{16, make_asn(0, 0x1001)};
}  // namespace scionlab

/// Build the full testbed.  Deterministic; `validate()` holds on the
/// returned topology.
[[nodiscard]] ScionlabEnv scionlab_topology();

/// The testbed with the user AS multihomed: a second attachment point
/// (SWITCH-AP, Geneva, under the SWITCH core) carries a second 40/14
/// access link to MY_AS.  Paths through the two APs share no early hop,
/// so multipath plans can aggregate beyond one access link — the
/// substrate for the strategy tournament's k>1 regimes.  The single-AP
/// `scionlab_topology()` stays the paper-faithful default.
[[nodiscard]] ScionlabEnv scionlab_topology_multihomed();

}  // namespace upin::scion
