#include "scion/topology.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace upin::scion {

using util::ErrorCode;
using util::Status;

const char* to_string(AsRole role) noexcept {
  switch (role) {
    case AsRole::kCore: return "core";
    case AsRole::kNonCore: return "non-core";
    case AsRole::kAttachmentPoint: return "attachment-point";
    case AsRole::kUser: return "user";
  }
  return "?";
}

const char* to_string(LinkType type) noexcept {
  switch (type) {
    case LinkType::kCore: return "core";
    case LinkType::kParentChild: return "parent-child";
    case LinkType::kPeer: return "peer";
  }
  return "?";
}

Status Topology::add_as(AsInfo info) {
  if (as_index_.contains(info.ia)) {
    return Status(ErrorCode::kConflict,
                  "duplicate AS " + info.ia.to_string());
  }
  as_index_.emplace(info.ia, ases_.size());
  ases_.push_back(std::move(info));
  return Status::success();
}

Status Topology::add_link(AsLink link) {
  const AsInfo* a = find_as(link.a);
  const AsInfo* b = find_as(link.b);
  if (a == nullptr || b == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "link endpoint unknown");
  }
  if (link.a == link.b) {
    return Status(ErrorCode::kInvalidArgument, "self-link not allowed");
  }
  if (find_link(link.a, link.b) != nullptr) {
    return Status(ErrorCode::kConflict,
                  "duplicate link " + link.a.to_string() + " <-> " +
                      link.b.to_string());
  }
  switch (link.type) {
    case LinkType::kCore:
      if (a->role != AsRole::kCore || b->role != AsRole::kCore) {
        return Status(ErrorCode::kInvalidArgument,
                      "core link requires two core ASes");
      }
      break;
    case LinkType::kParentChild:
      if (a->ia.isd() != b->ia.isd()) {
        return Status(ErrorCode::kInvalidArgument,
                      "parent-child link must stay within one ISD");
      }
      if (b->role == AsRole::kCore) {
        return Status(ErrorCode::kInvalidArgument,
                      "a core AS cannot be a child");
      }
      break;
    case LinkType::kPeer:
      if (a->role == AsRole::kCore || b->role == AsRole::kCore) {
        return Status(ErrorCode::kInvalidArgument,
                      "peering is between non-core ASes");
      }
      break;
  }
  link.interface_a = ++next_interface_[link.a];
  link.interface_b = ++next_interface_[link.b];
  links_.push_back(link);
  return Status::success();
}

const AsInfo* Topology::find_as(IsdAsn ia) const {
  const auto it = as_index_.find(ia);
  if (it == as_index_.end()) return nullptr;
  return &ases_[it->second];
}

const AsLink* Topology::find_link(IsdAsn a, IsdAsn b) const {
  for (const AsLink& link : links_) {
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) {
      return &link;
    }
  }
  return nullptr;
}

std::vector<IsdAsn> Topology::neighbors(IsdAsn ia, LinkType type) const {
  std::vector<IsdAsn> result;
  for (const AsLink& link : links_) {
    if (link.type != type) continue;
    if (link.a == ia) result.push_back(link.b);
    if (link.b == ia) result.push_back(link.a);
  }
  return result;
}

std::vector<IsdAsn> Topology::parents_of(IsdAsn ia) const {
  std::vector<IsdAsn> result;
  for (const AsLink& link : links_) {
    if (link.type == LinkType::kParentChild && link.b == ia) {
      result.push_back(link.a);
    }
  }
  return result;
}

std::vector<IsdAsn> Topology::children_of(IsdAsn ia) const {
  std::vector<IsdAsn> result;
  for (const AsLink& link : links_) {
    if (link.type == LinkType::kParentChild && link.a == ia) {
      result.push_back(link.b);
    }
  }
  return result;
}

std::vector<IsdAsn> Topology::core_ases(std::uint16_t isd) const {
  std::vector<IsdAsn> result;
  for (const AsInfo& info : ases_) {
    if (info.ia.isd() == isd && info.role == AsRole::kCore) {
      result.push_back(info.ia);
    }
  }
  return result;
}

std::vector<std::uint16_t> Topology::isds() const {
  std::vector<std::uint16_t> result;
  for (const AsInfo& info : ases_) {
    if (std::find(result.begin(), result.end(), info.ia.isd()) == result.end()) {
      result.push_back(info.ia.isd());
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

Status Topology::validate() const {
  for (const std::uint16_t isd : isds()) {
    if (core_ases(isd).empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "ISD " + std::to_string(isd) + " has no core AS");
    }
  }
  // Every non-core AS must reach a core of its ISD by climbing parents.
  for (const AsInfo& info : ases_) {
    if (info.role == AsRole::kCore) continue;
    std::unordered_set<IsdAsn> seen{info.ia};
    std::queue<IsdAsn> frontier;
    frontier.push(info.ia);
    bool reached_core = false;
    while (!frontier.empty() && !reached_core) {
      const IsdAsn current = frontier.front();
      frontier.pop();
      for (const IsdAsn parent : parents_of(current)) {
        if (!seen.insert(parent).second) continue;
        const AsInfo* parent_info = find_as(parent);
        if (parent_info != nullptr && parent_info->role == AsRole::kCore) {
          reached_core = true;
          break;
        }
        frontier.push(parent);
      }
    }
    if (!reached_core) {
      return Status(ErrorCode::kInvalidArgument,
                    info.ia.to_string() + " cannot reach a core AS");
    }
  }
  return Status::success();
}

Topology::Compiled Topology::compile(std::uint64_t seed,
                                     simnet::NetworkConfig config) const {
  Compiled compiled{simnet::Network(seed, config), {}};
  for (const AsInfo& info : ases_) {
    simnet::NodeSpec spec;
    spec.name = info.ia.to_string();
    spec.location = info.location;
    spec.jitter_ms = info.jitter_ms;
    compiled.node_of.emplace(info.ia, compiled.network.add_node(spec));
  }
  for (const AsLink& link : links_) {
    const simnet::NodeId a = compiled.node_of.at(link.a);
    const simnet::NodeId b = compiled.node_of.at(link.b);
    const Status added = compiled.network.add_duplex(
        a, b, link.capacity_ab_mbps, link.capacity_ba_mbps, link.util_base);
    (void)added;  // add_as/add_link invariants make failures impossible
  }
  return compiled;
}

}  // namespace upin::scion
