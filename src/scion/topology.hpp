// topology.hpp — the AS-level SCION topology model.
//
// ASes carry the metadata the paper's selection layer filters on
// (geography, country, operator — §1 "devices to exclude for geographical
// or sovereignty reasons") plus the roles SCIONLab distinguishes (§3.1):
// core ASes, non-core ASes, and attachment points.  Links are typed the
// SCION way: core links between core ASes, parent→child links down the
// ISD hierarchy, and peering links.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scion/isd_asn.hpp"
#include "simnet/network.hpp"
#include "util/result.hpp"

namespace upin::scion {

/// Role of an AS in the SCIONLab topology (§3.1).
enum class AsRole { kCore, kNonCore, kAttachmentPoint, kUser };

const char* to_string(AsRole role) noexcept;

/// Static AS metadata.
struct AsInfo {
  IsdAsn ia;
  std::string name;          ///< human label, e.g. "AWS Ireland"
  AsRole role = AsRole::kNonCore;
  simnet::GeoPoint location; ///< for distance-derived latency
  std::string city;
  std::string country;       ///< ISO-3166 alpha-2, e.g. "IE"
  std::string operator_name; ///< e.g. "AWS", "ETH Zurich"
  double jitter_ms = 0.15;   ///< queueing jitter scale (Singapore/Ohio noisy)
};

/// SCION link type.
enum class LinkType { kCore, kParentChild, kPeer };

const char* to_string(LinkType type) noexcept;

/// A physical adjacency between two ASes.  For kParentChild, `a` is the
/// parent and `b` the child.  Each side gets a stable interface id.
struct AsLink {
  IsdAsn a;
  IsdAsn b;
  LinkType type = LinkType::kCore;
  double capacity_ab_mbps = 1000.0;  ///< a -> b direction
  double capacity_ba_mbps = 1000.0;  ///< b -> a direction
  double util_base = 0.25;           ///< mean background utilization
  double mtu = 1472.0;               ///< payload MTU across this link
  std::uint16_t interface_a = 0;     ///< assigned by Topology::add_link
  std::uint16_t interface_b = 0;
};

/// The AS graph plus its compilation into a simnet::Network.
class Topology {
 public:
  /// Register an AS.  kConflict on duplicate ISD-AS.
  util::Status add_as(AsInfo info);

  /// Register a link; kInvalidArgument on unknown endpoints, kConflict on
  /// duplicates, and type errors (core link touching a non-core AS,
  /// parent-child crossing ISDs).  Interface ids are assigned here.
  util::Status add_link(AsLink link);

  [[nodiscard]] const AsInfo* find_as(IsdAsn ia) const;
  [[nodiscard]] const std::vector<AsInfo>& ases() const noexcept { return ases_; }
  [[nodiscard]] const std::vector<AsLink>& links() const noexcept { return links_; }

  /// Link between two ASes (either orientation), or nullptr.
  [[nodiscard]] const AsLink* find_link(IsdAsn a, IsdAsn b) const;

  /// All ASes adjacent to `ia` through links of `type` (any direction for
  /// kCore/kPeer; for kParentChild, `parents_of`/`children_of` are the
  /// directed views).
  [[nodiscard]] std::vector<IsdAsn> neighbors(IsdAsn ia, LinkType type) const;
  [[nodiscard]] std::vector<IsdAsn> parents_of(IsdAsn ia) const;
  [[nodiscard]] std::vector<IsdAsn> children_of(IsdAsn ia) const;

  /// Core ASes of one ISD.
  [[nodiscard]] std::vector<IsdAsn> core_ases(std::uint16_t isd) const;
  /// All distinct ISDs present.
  [[nodiscard]] std::vector<std::uint16_t> isds() const;

  /// Structural checks beyond what add_* enforces: every non-core AS can
  /// reach a core of its ISD via parent links; every ISD has a core.
  [[nodiscard]] util::Status validate() const;

  /// Compile into a packet-level network.  Every AS becomes one node
  /// (SCIONLab: one host per AS, §3.1); every AsLink becomes a duplex
  /// link pair with the configured capacities.
  struct Compiled {
    simnet::Network network;
    std::unordered_map<IsdAsn, simnet::NodeId> node_of;
  };
  [[nodiscard]] Compiled compile(std::uint64_t seed,
                                 simnet::NetworkConfig config = {}) const;

 private:
  std::vector<AsInfo> ases_;
  std::vector<AsLink> links_;
  std::unordered_map<IsdAsn, std::size_t> as_index_;
  std::unordered_map<IsdAsn, std::uint16_t> next_interface_;
};

}  // namespace upin::scion
