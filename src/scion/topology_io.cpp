#include "scion/topology_io.hpp"

#include <fstream>
#include <sstream>

namespace upin::scion {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

Result<AsRole> parse_role(std::string_view text) {
  if (text == "core") return AsRole::kCore;
  if (text == "non-core") return AsRole::kNonCore;
  if (text == "attachment-point") return AsRole::kAttachmentPoint;
  if (text == "user") return AsRole::kUser;
  return util::Error{ErrorCode::kInvalidArgument,
                     "unknown role: " + std::string(text)};
}

Result<LinkType> parse_link_type(std::string_view text) {
  if (text == "core") return LinkType::kCore;
  if (text == "parent-child") return LinkType::kParentChild;
  if (text == "peer") return LinkType::kPeer;
  return util::Error{ErrorCode::kInvalidArgument,
                     "unknown link type: " + std::string(text)};
}

Value topology_to_json(const Topology& topology) {
  Value::Array ases;
  for (const AsInfo& info : topology.ases()) {
    util::JsonObject as_doc;
    as_doc.set("ia", Value(info.ia.to_string()));
    as_doc.set("name", Value(info.name));
    as_doc.set("role", Value(to_string(info.role)));
    as_doc.set("lat", Value(info.location.lat_deg));
    as_doc.set("lon", Value(info.location.lon_deg));
    as_doc.set("city", Value(info.city));
    as_doc.set("country", Value(info.country));
    as_doc.set("operator", Value(info.operator_name));
    as_doc.set("jitter_ms", Value(info.jitter_ms));
    ases.emplace_back(std::move(as_doc));
  }
  Value::Array links;
  for (const AsLink& link : topology.links()) {
    util::JsonObject link_doc;
    link_doc.set("a", Value(link.a.to_string()));
    link_doc.set("b", Value(link.b.to_string()));
    link_doc.set("type", Value(to_string(link.type)));
    link_doc.set("capacity_ab_mbps", Value(link.capacity_ab_mbps));
    link_doc.set("capacity_ba_mbps", Value(link.capacity_ba_mbps));
    link_doc.set("util_base", Value(link.util_base));
    link_doc.set("mtu", Value(link.mtu));
    links.emplace_back(std::move(link_doc));
  }
  util::JsonObject document;
  document.set("ases", Value(std::move(ases)));
  document.set("links", Value(std::move(links)));
  return Value(std::move(document));
}

namespace {

Result<double> number_field(const Value& doc, std::string_view name,
                            std::optional<double> fallback = std::nullopt) {
  const Value* value = doc.get(name);
  if (value == nullptr || !value->is_number()) {
    if (fallback.has_value()) return *fallback;
    return util::Error{ErrorCode::kParseError,
                       "missing numeric field " + std::string(name)};
  }
  return value->as_double();
}

Result<std::string> string_field(const Value& doc, std::string_view name,
                                 const char* fallback = nullptr) {
  const Value* value = doc.get(name);
  if (value == nullptr || !value->is_string()) {
    if (fallback != nullptr) return std::string(fallback);
    return util::Error{ErrorCode::kParseError,
                       "missing string field " + std::string(name)};
  }
  return value->as_string();
}

}  // namespace

Result<Topology> topology_from_json(const Value& document) {
  const Value* ases = document.get("ases");
  const Value* links = document.get("links");
  if (ases == nullptr || !ases->is_array() || links == nullptr ||
      !links->is_array()) {
    return util::Error{ErrorCode::kParseError,
                       "topology needs 'ases' and 'links' arrays"};
  }

  Topology topology;
  for (const Value& as_doc : ases->as_array()) {
    AsInfo info;
    Result<std::string> ia_text = string_field(as_doc, "ia");
    if (!ia_text.ok()) return Result<Topology>(ia_text.error());
    Result<IsdAsn> ia = IsdAsn::parse(ia_text.value());
    if (!ia.ok()) return Result<Topology>(ia.error());
    info.ia = ia.value();

    Result<std::string> role_text = string_field(as_doc, "role", "non-core");
    if (!role_text.ok()) return Result<Topology>(role_text.error());
    Result<AsRole> role = parse_role(role_text.value());
    if (!role.ok()) return Result<Topology>(role.error());
    info.role = role.value();

    Result<double> lat = number_field(as_doc, "lat");
    if (!lat.ok()) return Result<Topology>(lat.error());
    Result<double> lon = number_field(as_doc, "lon");
    if (!lon.ok()) return Result<Topology>(lon.error());
    info.location = {lat.value(), lon.value()};

    info.name = string_field(as_doc, "name", "").value_or("");
    info.city = string_field(as_doc, "city", "").value_or("");
    info.country = string_field(as_doc, "country", "").value_or("");
    info.operator_name = string_field(as_doc, "operator", "").value_or("");
    info.jitter_ms = number_field(as_doc, "jitter_ms", 0.15).value_or(0.15);

    const Status added = topology.add_as(std::move(info));
    if (!added.ok()) return Result<Topology>(added.error());
  }

  for (const Value& link_doc : links->as_array()) {
    AsLink link;
    for (const auto& [field, slot] :
         std::initializer_list<std::pair<const char*, IsdAsn*>>{
             {"a", &link.a}, {"b", &link.b}}) {
      Result<std::string> text = string_field(link_doc, field);
      if (!text.ok()) return Result<Topology>(text.error());
      Result<IsdAsn> ia = IsdAsn::parse(text.value());
      if (!ia.ok()) return Result<Topology>(ia.error());
      *slot = ia.value();
    }
    Result<std::string> type_text = string_field(link_doc, "type");
    if (!type_text.ok()) return Result<Topology>(type_text.error());
    Result<LinkType> type = parse_link_type(type_text.value());
    if (!type.ok()) return Result<Topology>(type.error());
    link.type = type.value();

    link.capacity_ab_mbps =
        number_field(link_doc, "capacity_ab_mbps", 1000.0).value_or(1000.0);
    link.capacity_ba_mbps =
        number_field(link_doc, "capacity_ba_mbps", 1000.0).value_or(1000.0);
    link.util_base = number_field(link_doc, "util_base", 0.25).value_or(0.25);
    link.mtu = number_field(link_doc, "mtu", 1472.0).value_or(1472.0);

    const Status added = topology.add_link(link);
    if (!added.ok()) return Result<Topology>(added.error());
  }

  const Status valid = topology.validate();
  if (!valid.ok()) return Result<Topology>(valid.error());
  return topology;
}

Status save_topology(const Topology& topology, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status(ErrorCode::kDataLoss, "cannot open " + path);
  out << topology_to_json(topology).dump(2) << '\n';
  out.flush();
  if (!out) return Status(ErrorCode::kDataLoss, "write failed: " + path);
  return Status::success();
}

Result<Topology> load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Error{ErrorCode::kNotFound, "cannot open " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Value> document = Value::parse(buffer.str());
  if (!document.ok()) return Result<Topology>(document.error());
  return topology_from_json(document.value());
}

}  // namespace upin::scion
