// topology_io.hpp — topology (de)serialization.
//
// The paper's portability requirement (§4.1.3): the software should run
// on "all the SCION-based networks, with minimal modifications".  The
// embedded SCIONLab testbed is one instance; this module lets users
// describe *their* network as JSON and run the identical pipeline on it.
//
// Format:
//   {"ases": [{"ia": "16-ffaa:0:1001", "name": "...", "role": "core",
//              "lat": 50.11, "lon": 8.68, "city": "...", "country": "DE",
//              "operator": "AWS", "jitter_ms": 0.15}, ...],
//    "links": [{"a": "...", "b": "...", "type": "core|parent-child|peer",
//               "capacity_ab_mbps": 1000, "capacity_ba_mbps": 1000,
//               "util_base": 0.25, "mtu": 1472}, ...]}
//
// Interface ids are assigned on load (in link order), exactly as they
// are for the built-in topology.
#pragma once

#include <string>

#include "scion/topology.hpp"
#include "util/json.hpp"

namespace upin::scion {

/// Serialize a topology (ases + links; interface ids are derived state
/// and not stored).
[[nodiscard]] util::Value topology_to_json(const Topology& topology);

/// Parse a topology document.  All add_as/add_link rules are enforced;
/// the result additionally passes validate().
[[nodiscard]] util::Result<Topology> topology_from_json(
    const util::Value& document);

/// File convenience wrappers (JSON, pretty-printed on save).
[[nodiscard]] util::Status save_topology(const Topology& topology,
                                         const std::string& path);
[[nodiscard]] util::Result<Topology> load_topology(const std::string& path);

/// Parse helpers for the enum encodings used by the format.
[[nodiscard]] util::Result<AsRole> parse_role(std::string_view text);
[[nodiscard]] util::Result<LinkType> parse_link_type(std::string_view text);

}  // namespace upin::scion
