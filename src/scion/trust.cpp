#include "scion/trust.hpp"

#include <optional>

#include "util/sha256.hpp"

namespace upin::scion {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

namespace {

std::optional<util::Digest256> digest_from_hex(std::string_view hex) {
  if (hex.size() != 64) return std::nullopt;
  util::Digest256 digest{};
  for (std::size_t i = 0; i < 32; ++i) {
    const auto nibble = [&](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    digest[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return digest;
}

std::string signature_to_hex(const util::LamportSignature& signature) {
  std::string out;
  out.reserve(256 * 64);
  for (const util::Digest256& block : signature.revealed) {
    out += util::to_hex(block);
  }
  return out;
}

std::optional<util::LamportSignature> signature_from_hex(std::string_view hex) {
  if (hex.size() != 256 * 64) return std::nullopt;
  util::LamportSignature signature;
  for (std::size_t i = 0; i < 256; ++i) {
    const auto block = digest_from_hex(hex.substr(i * 64, 64));
    if (!block.has_value()) return std::nullopt;
    signature.revealed[i] = *block;
  }
  return signature;
}

std::string public_key_to_hex(const util::LamportPublicKey& key) {
  std::string out;
  out.reserve(512 * 64);
  for (const auto& pair : key.images) {
    out += util::to_hex(pair[0]);
    out += util::to_hex(pair[1]);
  }
  return out;
}

std::optional<util::LamportPublicKey> public_key_from_hex(std::string_view hex) {
  if (hex.size() != 512 * 64) return std::nullopt;
  util::LamportPublicKey key;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    for (std::size_t value = 0; value < 2; ++value) {
      const auto block =
          digest_from_hex(hex.substr((bit * 2 + value) * 64, 64));
      if (!block.has_value()) return std::nullopt;
      key.images[bit][value] = *block;
    }
  }
  return key;
}

}  // namespace

std::string Certificate::canonical_payload() const {
  return "cert|" + subject.to_string() + "|" + issuer.to_string() + "|" +
         subject_fingerprint_hex + "|" + std::to_string(serial);
}

TrustStore::TrustStore(std::uint64_t seed) : rng_(seed) {}

Status TrustStore::register_core(IsdAsn core) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = cores_.try_emplace(core.isd());
  if (!inserted) {
    if (it->second.ia == core) return Status::success();
    return Status(ErrorCode::kConflict,
                  "ISD " + std::to_string(core.isd()) +
                      " already has a registered core");
  }
  it->second.ia = core;
  util::Rng key_rng = rng_.fork("core:" + core.to_string());
  it->second.current = util::lamport_generate(key_rng);
  return Status::success();
}

bool TrustStore::has_core_for(std::uint16_t isd) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cores_.contains(isd);
}

Result<Certificate> TrustStore::issue_certificate(
    IsdAsn subject, const util::LamportPublicKey& subject_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cores_.find(subject.isd());
  if (it == cores_.end()) {
    return util::Error{ErrorCode::kNotFound,
                       "no core registered for ISD " +
                           std::to_string(subject.isd())};
  }
  CoreState& core = it->second;

  Certificate cert;
  cert.subject = subject;
  cert.issuer = core.ia;
  cert.subject_fingerprint_hex = util::to_hex(subject_key.fingerprint());
  cert.serial = core.next_serial++;
  cert.issuer_signature =
      util::lamport_sign(core.current.private_key, cert.canonical_payload());

  // Remember which key signed this serial, then rotate (one-time keys).
  core.issued_with.emplace(cert.serial, core.current.public_key);
  util::Rng next_rng = rng_.fork("core:" + core.ia.to_string() + ":" +
                                 std::to_string(cert.serial));
  core.current = util::lamport_generate(next_rng);
  return cert;
}

Status TrustStore::verify_certificate(const Certificate& cert) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cores_.find(cert.issuer.isd());
  if (it == cores_.end() || it->second.ia != cert.issuer) {
    return Status(ErrorCode::kPermissionDenied, "unknown issuer");
  }
  if (cert.subject.isd() != cert.issuer.isd()) {
    return Status(ErrorCode::kPermissionDenied,
                  "issuer cannot certify a foreign ISD");
  }
  const auto key_it = it->second.issued_with.find(cert.serial);
  if (key_it == it->second.issued_with.end()) {
    return Status(ErrorCode::kPermissionDenied, "unknown certificate serial");
  }
  if (!util::lamport_verify(key_it->second, cert.canonical_payload(),
                            cert.issuer_signature)) {
    return Status(ErrorCode::kPermissionDenied, "bad certificate signature");
  }
  return Status::success();
}

Status TrustStore::verify_credential(const WriteCredential& credential) {
  const Status cert_ok = verify_certificate(credential.certificate);
  if (!cert_ok.ok()) return cert_ok;

  const std::string fingerprint =
      util::to_hex(credential.subject_key.fingerprint());
  if (fingerprint != credential.certificate.subject_fingerprint_hex) {
    return Status(ErrorCode::kPermissionDenied,
                  "credential key does not match certificate");
  }
  if (!util::lamport_verify(credential.subject_key,
                            credential.batch_digest_hex,
                            credential.batch_signature)) {
    return Status(ErrorCode::kPermissionDenied, "bad batch signature");
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!consumed_fingerprints_.insert(fingerprint).second) {
      return Status(ErrorCode::kPermissionDenied,
                    "one-time key already used");
    }
  }
  return Status::success();
}

docdb::WriteGuard TrustStore::make_write_guard() {
  return [this](const Value& credential_json) {
    Result<WriteCredential> credential = decode_credential(credential_json);
    if (!credential.ok()) return false;
    return verify_credential(credential.value()).ok();
  };
}

Value TrustStore::encode_credential(const WriteCredential& c) {
  util::JsonObject object;
  object.set("subject", Value(c.certificate.subject.to_string()));
  object.set("issuer", Value(c.certificate.issuer.to_string()));
  object.set("fingerprint", Value(c.certificate.subject_fingerprint_hex));
  object.set("serial", Value(static_cast<std::int64_t>(c.certificate.serial)));
  object.set("cert_sig", Value(signature_to_hex(c.certificate.issuer_signature)));
  object.set("subject_key", Value(public_key_to_hex(c.subject_key)));
  object.set("batch_sig", Value(signature_to_hex(c.batch_signature)));
  object.set("batch_digest", Value(c.batch_digest_hex));
  return Value(std::move(object));
}

Result<WriteCredential> TrustStore::decode_credential(const Value& value) {
  const auto field = [&](std::string_view name) -> Result<std::string> {
    const Value* found = value.get(name);
    if (found == nullptr || !found->is_string()) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "credential missing field " + std::string(name)};
    }
    return found->as_string();
  };

  WriteCredential credential;
  const auto subject = field("subject");
  if (!subject.ok()) return Result<WriteCredential>(subject.error());
  const auto issuer = field("issuer");
  if (!issuer.ok()) return Result<WriteCredential>(issuer.error());
  const Result<IsdAsn> subject_ia = IsdAsn::parse(subject.value());
  if (!subject_ia.ok()) return Result<WriteCredential>(subject_ia.error());
  const Result<IsdAsn> issuer_ia = IsdAsn::parse(issuer.value());
  if (!issuer_ia.ok()) return Result<WriteCredential>(issuer_ia.error());
  credential.certificate.subject = subject_ia.value();
  credential.certificate.issuer = issuer_ia.value();

  const auto fingerprint = field("fingerprint");
  if (!fingerprint.ok()) return Result<WriteCredential>(fingerprint.error());
  credential.certificate.subject_fingerprint_hex = fingerprint.value();

  const Value* serial = value.get("serial");
  if (serial == nullptr || !serial->is_int()) {
    return util::Error{ErrorCode::kInvalidArgument, "credential missing serial"};
  }
  credential.certificate.serial = static_cast<std::uint64_t>(serial->as_int());

  const auto cert_sig = field("cert_sig");
  if (!cert_sig.ok()) return Result<WriteCredential>(cert_sig.error());
  const auto parsed_cert_sig = signature_from_hex(cert_sig.value());
  if (!parsed_cert_sig.has_value()) {
    return util::Error{ErrorCode::kParseError, "bad cert_sig encoding"};
  }
  credential.certificate.issuer_signature = *parsed_cert_sig;

  const auto subject_key = field("subject_key");
  if (!subject_key.ok()) return Result<WriteCredential>(subject_key.error());
  const auto parsed_key = public_key_from_hex(subject_key.value());
  if (!parsed_key.has_value()) {
    return util::Error{ErrorCode::kParseError, "bad subject_key encoding"};
  }
  credential.subject_key = *parsed_key;

  const auto batch_sig = field("batch_sig");
  if (!batch_sig.ok()) return Result<WriteCredential>(batch_sig.error());
  const auto parsed_batch_sig = signature_from_hex(batch_sig.value());
  if (!parsed_batch_sig.has_value()) {
    return util::Error{ErrorCode::kParseError, "bad batch_sig encoding"};
  }
  credential.batch_signature = *parsed_batch_sig;

  const auto batch_digest = field("batch_digest");
  if (!batch_digest.ok()) return Result<WriteCredential>(batch_digest.error());
  credential.batch_digest_hex = batch_digest.value();
  return credential;
}

util::LamportKeyPair TrustStore::generate_client_key(std::string_view label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::Rng key_rng = rng_.fork("client:" + std::string(label));
  return util::lamport_generate(key_rng);
}

}  // namespace upin::scion
