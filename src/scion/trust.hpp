// trust.hpp — SCIONLab-style trust: core-AS-issued certificates gating
// database writes.
//
// Each ISD's core AS is a root of trust that certifies member ASes'
// public keys (paper §3.1).  The paper *designs* PKC-protected write
// access to the measurement database (§4.2.2) without implementing it;
// here the design is implemented with Lamport one-time signatures:
//
//   1. a core AS holds a long-lived (per-epoch) signing key whose public
//      part is pinned in the TrustStore;
//   2. a measurement client generates a fresh one-time key per write
//      batch and asks its ISD core for a certificate binding the key's
//      fingerprint to the client's ISD-AS;
//   3. the client signs the batch digest with the one-time key and
//      presents {certificate, batch signature} as the write credential;
//   4. the database's WriteGuard verifies the chain and rejects reuse of
//      a one-time key.
//
// Because Lamport keys are strictly one-time, certificate issuance also
// rotates the core key: every issued certificate consumes one core key
// and pins the next one (a hash-chain of signing keys).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "docdb/database.hpp"
#include "scion/isd_asn.hpp"
#include "util/lamport.hpp"
#include "util/result.hpp"

namespace upin::scion {

/// A certificate binding a subject's one-time public-key fingerprint to
/// its ISD-AS, signed by the issuing core AS.
struct Certificate {
  IsdAsn subject;
  IsdAsn issuer;
  std::string subject_fingerprint_hex;  ///< fingerprint of the subject key
  std::uint64_t serial = 0;             ///< issuer's issuance counter
  util::LamportSignature issuer_signature;  ///< over canonical_payload()

  /// The byte string the issuer signs.
  [[nodiscard]] std::string canonical_payload() const;
};

/// A complete write credential: certificate + batch signature.
struct WriteCredential {
  Certificate certificate;
  util::LamportPublicKey subject_key;
  util::LamportSignature batch_signature;  ///< over the batch digest
  std::string batch_digest_hex;            ///< SHA-256 of the batch payload
};

/// Trust anchors and certificate issuance for a set of ISDs.
class TrustStore {
 public:
  explicit TrustStore(std::uint64_t seed = 7);

  /// Register `core` as the root of trust for its ISD.  Idempotent per
  /// ISD; a second core for the same ISD is rejected (kConflict).
  util::Status register_core(IsdAsn core);

  [[nodiscard]] bool has_core_for(std::uint16_t isd) const;

  /// Issue a certificate for `subject_key` belonging to `subject`.
  /// Fails with kNotFound when the subject's ISD has no registered core.
  util::Result<Certificate> issue_certificate(
      IsdAsn subject, const util::LamportPublicKey& subject_key);

  /// Verify a certificate chain: known issuer key for that serial,
  /// signature valid, subject's ISD matches the issuer's.
  [[nodiscard]] util::Status verify_certificate(const Certificate& cert) const;

  /// Verify a full write credential: certificate, fingerprint match,
  /// batch signature, and one-time-key freshness.  A successful check
  /// consumes the key (later reuse is kPermissionDenied).
  util::Status verify_credential(const WriteCredential& credential);

  /// Adapt this TrustStore into a docdb WriteGuard.  The credential is
  /// encoded as a JSON document via encode_credential().
  [[nodiscard]] docdb::WriteGuard make_write_guard();

  /// JSON encoding for transporting credentials through the docdb API.
  [[nodiscard]] static util::Value encode_credential(const WriteCredential& c);
  [[nodiscard]] static util::Result<WriteCredential> decode_credential(
      const util::Value& value);

  /// Helper for clients: fresh one-time key pair from the store's RNG.
  [[nodiscard]] util::LamportKeyPair generate_client_key(std::string_view label);

 private:
  struct CoreState {
    IsdAsn ia;
    util::LamportKeyPair current;        ///< next signing key
    std::uint64_t next_serial = 1;
    /// serial -> public key that signed that serial (kept for verification)
    std::unordered_map<std::uint64_t, util::LamportPublicKey> issued_with;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t, CoreState> cores_;
  std::unordered_set<std::string> consumed_fingerprints_;
  util::Rng rng_;
};

}  // namespace upin::scion
