#include "select/multipath.hpp"

#include <algorithm>
#include <cmath>

namespace upin::select {

using util::ErrorCode;
using util::JsonObject;
using util::Result;
using util::Value;

util::Value MultipathPlan::to_json() const {
  JsonObject root;
  root.set("strategy", Value(strategy));
  Value::Array flows;
  flows.reserve(subflows.size());
  for (const MultipathSubflow& subflow : subflows) {
    JsonObject entry;
    entry.set("path_id", Value(subflow.summary.path_id));
    entry.set("sequence", Value(subflow.summary.sequence));
    entry.set("score", Value(subflow.score));
    entry.set("weight", Value(subflow.weight));
    flows.push_back(Value(std::move(entry)));
  }
  root.set("subflows", Value(std::move(flows)));
  Value::Array bottlenecks;
  bottlenecks.reserve(shared_bottlenecks.size());
  for (const SharedBottleneckHop& bottleneck : shared_bottlenecks) {
    JsonObject entry;
    entry.set("hop", Value(bottleneck.hop.to_string()));
    Value::Array indices;
    indices.reserve(bottleneck.subflows.size());
    for (const std::size_t index : bottleneck.subflows) {
      indices.emplace_back(static_cast<std::int64_t>(index));
    }
    entry.set("subflows", Value(std::move(indices)));
    bottlenecks.push_back(Value(std::move(entry)));
  }
  root.set("shared_bottlenecks", Value(std::move(bottlenecks)));
  return Value(std::move(root));
}

Result<MultipathPlan> plan_multipath(const Selection& selection, std::size_t k,
                                     std::size_t early_hop_window) {
  if (k == 0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "multipath plan needs k >= 1"};
  }
  if (selection.ranked.empty()) {
    return util::Error{ErrorCode::kNotFound,
                       "no admissible path to plan over: " +
                           selection.request_description};
  }
  const std::size_t count = std::min(k, selection.ranked.size());

  MultipathPlan plan;
  plan.strategy = selection.strategy;
  plan.subflows.reserve(count);
  const double best = selection.ranked.front().score;
  const double scale = std::max(1.0, std::abs(best));
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const RankedPath& path = selection.ranked[i];
    MultipathSubflow subflow;
    subflow.summary = path.summary;
    subflow.score = path.score;
    // Ranked is sorted ascending, so `front().score` is s_min; a path one
    // full score-scale behind the winner gets half the winner's share.
    subflow.weight = 1.0 / (1.0 + (path.score - best) / scale);
    total += subflow.weight;
    plan.subflows.push_back(std::move(subflow));
  }
  for (MultipathSubflow& subflow : plan.subflows) {
    subflow.weight /= total;
  }

  // Shared-bottleneck report: interior hops (shared source/destination
  // endpoints excluded) within the early window, used by 2+ subflows.
  std::vector<std::pair<scion::IsdAsn, std::vector<std::size_t>>> users;
  for (std::size_t i = 0; i < plan.subflows.size(); ++i) {
    const std::vector<scion::IsdAsn>& hops = plan.subflows[i].summary.hops;
    if (hops.size() <= 2) continue;
    const std::size_t interior = hops.size() - 2;
    const std::size_t window = std::min(early_hop_window, interior);
    for (std::size_t h = 0; h < window; ++h) {
      const scion::IsdAsn& hop = hops[1 + h];
      auto it = std::find_if(users.begin(), users.end(),
                             [&](const auto& entry) { return entry.first == hop; });
      if (it == users.end()) {
        users.emplace_back(hop, std::vector<std::size_t>{i});
      } else if (it->second.back() != i) {
        it->second.push_back(i);
      }
    }
  }
  for (auto& [hop, indices] : users) {
    if (indices.size() < 2) continue;
    plan.shared_bottlenecks.push_back(
        SharedBottleneckHop{hop, std::move(indices)});
  }
  return plan;
}

}  // namespace upin::select
