// multipath.hpp — scheduling one logical flow over k selected paths.
//
// Gartner et al.'s BitTorrent-over-SCION result motivates the model: a
// strategy's ranking is turned into a MultipathPlan of k subflows whose
// weights derive from the strategy scores (better score -> more traffic),
// plus a shared-bottleneck report flagging early hops common to several
// subflows — on the ScionLab topology every path funnels through the
// user's single access link, the congestion episode of the paper's Fig 9,
// so aggregation only pays off across disjoint early hops.
#pragma once

#include <cstddef>
#include <vector>

#include "select/types.hpp"
#include "util/result.hpp"

namespace upin::select {

/// One path of a multipath plan with its normalized send weight.
struct MultipathSubflow {
  PathSummary summary;
  double score = 0.0;   ///< the strategy score the weight derives from
  double weight = 0.0;  ///< normalized to sum 1 across the plan
};

/// An early hop shared by two or more subflows — a capacity bottleneck
/// that caps what aggregation can win.
struct SharedBottleneckHop {
  scion::IsdAsn hop;
  std::vector<std::size_t> subflows;  ///< indices into MultipathPlan::subflows
};

/// A weighted set of k paths for one destination.
struct MultipathPlan {
  std::string strategy;  ///< registry key that ranked the paths
  std::vector<MultipathSubflow> subflows;
  std::vector<SharedBottleneckHop> shared_bottlenecks;

  /// JSON rendering: subflows with weights plus the bottleneck report.
  [[nodiscard]] util::Value to_json() const;
};

/// Build a plan from a strategy's ranking: the k best admitted paths,
/// weighted by score distance to the winner
///   w_i ∝ 1 / (1 + (s_i − s_min) / max(1, |s_min|))
/// (uniform when all scores tie), then normalized to sum 1.  `k` is
/// clamped to the number of admitted paths; kInvalidArgument when k = 0,
/// kNotFound when the selection admitted nothing.  `early_hop_window`
/// bounds how many interior hops (source and destination excluded) count
/// for shared-bottleneck detection.
[[nodiscard]] util::Result<MultipathPlan> plan_multipath(
    const Selection& selection, std::size_t k,
    std::size_t early_hop_window = 2);

}  // namespace upin::select
