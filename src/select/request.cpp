#include "select/request.hpp"

#include "util/strings.hpp"

namespace upin::select {

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::kLowestLatency: return "lowest-latency";
    case Objective::kHighestBandwidth: return "highest-bandwidth";
    case Objective::kLowestLoss: return "lowest-loss";
    case Objective::kMostConsistent: return "most-consistent";
  }
  return "?";
}

std::string UserRequest::describe() const {
  std::string out = util::format("server %d, objective %s", server_id,
                                 to_string(objective));
  if (max_latency_ms.has_value()) {
    out += util::format(", latency <= %.1fms", *max_latency_ms);
  }
  if (min_bandwidth_mbps.has_value()) {
    out += util::format(", bandwidth >= %.1fMbps (%s)", *min_bandwidth_mbps,
                        bw_direction == BwDirection::kDownstream ? "down" : "up");
  }
  if (bw_probe_bytes.has_value()) {
    out += util::format(", bw at %.0fB packets", *bw_probe_bytes);
  }
  if (max_loss_pct.has_value()) {
    out += util::format(", loss <= %.1f%%", *max_loss_pct);
  }
  if (max_jitter_ms.has_value()) {
    out += util::format(", jitter <= %.1fms", *max_jitter_ms);
  }
  if (since_timestamp_ms.has_value()) {
    out += util::format(", samples since t=%lldms",
                        static_cast<long long>(*since_timestamp_ms));
  }
  if (!exclude_countries.empty()) {
    out += ", exclude countries [" + util::join(exclude_countries, ",") + "]";
  }
  if (!exclude_operators.empty()) {
    out += ", exclude operators [" + util::join(exclude_operators, ",") + "]";
  }
  for (const scion::IsdAsn& ia : exclude_ases) {
    out += ", exclude AS " + ia.to_string();
  }
  for (const std::uint16_t isd : exclude_isds) {
    out += ", exclude ISD " + std::to_string(isd);
  }
  if (!allowed_isds.empty()) {
    std::vector<std::string> isds;
    isds.reserve(allowed_isds.size());
    for (const std::uint16_t isd : allowed_isds) {
      isds.push_back(std::to_string(isd));
    }
    out += ", only ISDs [" + util::join(isds, ",") + "]";
  }
  return out;
}

}  // namespace upin::select
