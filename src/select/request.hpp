// request.hpp — what a UPIN user may ask for.
//
// The paper's goal (§1, §6): give the user the best path to a destination
// "following their request on performance or devices to exclude for
// geographical or sovereignty reasons".  A UserRequest captures exactly
// that: one performance objective, hard performance constraints, and
// exclusion lists over countries, operators, ASes and ISDs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scion/isd_asn.hpp"

namespace upin::select {

/// The performance dimension the user optimizes for.
enum class Objective {
  kLowestLatency,     ///< e.g. gaming, interactive SSH
  kHighestBandwidth,  ///< bulk transfer
  kLowestLoss,        ///< reliability-sensitive transfers
  kMostConsistent,    ///< lowest jitter: streaming / VoIP (paper §6.1)
};

const char* to_string(Objective objective) noexcept;

/// Which bandwidth figure "highest bandwidth" means.
enum class BwDirection { kDownstream, kUpstream };

/// A user's path-control request.
struct UserRequest {
  int server_id = 0;  ///< destination (availableServers id)
  Objective objective = Objective::kLowestLatency;
  BwDirection bw_direction = BwDirection::kDownstream;

  // Hard performance constraints (violations disqualify a path).
  std::optional<double> max_latency_ms;
  std::optional<double> min_bandwidth_mbps;
  std::optional<double> max_loss_pct;
  std::optional<double> max_jitter_ms;
  std::size_t min_samples = 1;  ///< require this much measurement evidence
  /// Packet size (bytes) the flow will actually send.  When set, bandwidth
  /// constraints and objectives use the measured column nearest this size
  /// (64 B probes vs MTU-sized packets); when unset, the MTU columns are
  /// used, matching the pre-strategy-lab behaviour.
  std::optional<double> bw_probe_bytes;
  /// Only consider measurements taken at or after this virtual timestamp
  /// (milliseconds).  Networks drift; stale samples mislead (§4.2.2
  /// stores timestamps for exactly this reason).
  std::optional<std::int64_t> since_timestamp_ms;

  // Sovereignty / governance constraints over the hops of the path.
  std::vector<std::string> exclude_countries;  ///< ISO codes, e.g. "US"
  std::vector<std::string> exclude_operators;  ///< e.g. "AWS"
  std::vector<scion::IsdAsn> exclude_ases;
  std::vector<std::uint16_t> exclude_isds;
  /// When non-empty, every traversed ISD must be in this allow-list.
  std::vector<std::uint16_t> allowed_isds;

  /// Human-readable rendering for logs and UIs.
  [[nodiscard]] std::string describe() const;
};

}  // namespace upin::select
