#include "select/selector.hpp"

#include <algorithm>

#include "measure/schema.hpp"
#include "scion/path.hpp"
#include "util/strings.hpp"

namespace upin::select {

using docdb::Document;
using docdb::Filter;
using measure::PathRecord;
using measure::StatsSample;
using util::ErrorCode;
using util::Result;
using util::Value;

PathSelector::PathSelector(const docdb::Database& db,
                           const scion::Topology& topology)
    : db_(db), topology_(topology) {}

Result<PathSummary> PathSelector::summarize_path(
    const Document& path_doc, std::optional<std::int64_t> since_ms) const {
  Result<PathRecord> record = measure::parse_path_document(path_doc);
  if (!record.ok()) return Result<PathSummary>(record.error());

  PathSummary summary;
  summary.path_id = record.value().id;
  summary.server_id = record.value().server_id;
  summary.sequence = record.value().sequence;
  summary.hop_count = record.value().hop_count;
  summary.isds = record.value().isds;
  summary.mtu = record.value().mtu;

  Result<scion::Path> parsed =
      scion::Path::parse_sequence(record.value().sequence);
  if (parsed.ok()) {
    for (const scion::PathHop& hop : parsed.value().hops()) {
      summary.hops.push_back(hop.ia);
    }
  }

  const docdb::Collection* stats = db_.find_collection(measure::kPathsStats);
  if (stats == nullptr) {
    return util::Error{ErrorCode::kNotFound, "paths_stats does not exist"};
  }
  util::JsonObject query;
  query.set("path_id", Value(summary.path_id));
  if (since_ms.has_value()) {
    query.set("timestamp_ms", Value::object({{"$gte", Value(*since_ms)}}));
  }
  Result<Filter> by_path = Filter::compile(Value(std::move(query)));
  if (!by_path.ok()) return Result<PathSummary>(by_path.error());

  std::vector<double> latencies;
  std::vector<double> losses;
  std::vector<double> jitters;
  std::vector<double> bw_down_mtu, bw_up_mtu, bw_down_64, bw_up_64;
  for (const Document& doc : stats->find(by_path.value())) {
    Result<StatsSample> sample = measure::parse_stats_document(doc);
    if (!sample.ok()) continue;  // tolerate foreign documents
    ++summary.samples;
    losses.push_back(sample.value().loss_pct);
    if (sample.value().latency_ms.has_value()) {
      latencies.push_back(*sample.value().latency_ms);
    }
    if (sample.value().jitter_ms.has_value()) {
      jitters.push_back(*sample.value().jitter_ms);
    }
    if (sample.value().bw_down_mtu.has_value()) {
      bw_down_mtu.push_back(*sample.value().bw_down_mtu);
    }
    if (sample.value().bw_up_mtu.has_value()) {
      bw_up_mtu.push_back(*sample.value().bw_up_mtu);
    }
    if (sample.value().bw_down_64.has_value()) {
      bw_down_64.push_back(*sample.value().bw_down_64);
    }
    if (sample.value().bw_up_64.has_value()) {
      bw_up_64.push_back(*sample.value().bw_up_64);
    }
  }

  summary.latency_samples = latencies.size();
  if (!latencies.empty()) summary.latency_ms = util::box_stats(latencies);
  if (!losses.empty()) summary.mean_loss_pct = util::mean(losses);
  if (!jitters.empty()) summary.mean_jitter_ms = util::mean(jitters);
  if (!bw_down_mtu.empty()) summary.mean_bw_down_mtu = util::mean(bw_down_mtu);
  if (!bw_up_mtu.empty()) summary.mean_bw_up_mtu = util::mean(bw_up_mtu);
  if (!bw_down_64.empty()) summary.mean_bw_down_64 = util::mean(bw_down_64);
  if (!bw_up_64.empty()) summary.mean_bw_up_64 = util::mean(bw_up_64);
  return summary;
}

namespace {

util::Result<std::vector<Document>> path_docs_for(const docdb::Database& db,
                                                  int server_id) {
  const docdb::Collection* paths = db.find_collection(measure::kPaths);
  if (paths == nullptr) {
    return util::Error{ErrorCode::kNotFound, "paths collection does not exist"};
  }
  util::JsonObject query;
  query.set("server_id", Value(server_id));
  Result<Filter> by_server = Filter::compile(Value(std::move(query)));
  if (!by_server.ok()) {
    return util::Result<std::vector<Document>>(by_server.error());
  }
  docdb::FindOptions in_order;
  in_order.sort_by = "path_index";
  return paths->find(by_server.value(), in_order);
}

}  // namespace

Result<std::vector<PathSummary>> PathSelector::summarize(
    int server_id, std::optional<std::int64_t> since_ms) const {
  Result<std::vector<Document>> docs = path_docs_for(db_, server_id);
  if (!docs.ok()) return Result<std::vector<PathSummary>>(docs.error());
  std::vector<PathSummary> summaries;
  summaries.reserve(docs.value().size());
  for (const Document& doc : docs.value()) {
    Result<PathSummary> summary = summarize_path(doc, since_ms);
    if (!summary.ok()) return Result<std::vector<PathSummary>>(summary.error());
    summaries.push_back(std::move(summary).value());
  }
  return summaries;
}

Result<std::vector<PathSummary>> PathSelector::summarize_parallel(
    int server_id, util::ThreadPool& pool,
    std::optional<std::int64_t> since_ms) const {
  Result<std::vector<Document>> docs = path_docs_for(db_, server_id);
  if (!docs.ok()) return Result<std::vector<PathSummary>>(docs.error());

  // Each worker writes only its own slot; no shared mutable state.
  std::vector<Result<PathSummary>> slots(
      docs.value().size(),
      Result<PathSummary>(util::Error{ErrorCode::kInternal, "not computed"}));
  util::parallel_for(pool, docs.value().size(), [&](std::size_t i) {
    slots[i] = summarize_path(docs.value()[i], since_ms);
  });

  std::vector<PathSummary> summaries;
  summaries.reserve(slots.size());
  for (Result<PathSummary>& slot : slots) {
    if (!slot.ok()) return Result<std::vector<PathSummary>>(slot.error());
    summaries.push_back(std::move(slot).value());
  }
  return summaries;
}

std::optional<std::string> PathSelector::rejection_reason(
    const PathSummary& summary, const UserRequest& request) const {
  if (summary.samples < request.min_samples) {
    return util::format("only %zu samples (need %zu)", summary.samples,
                        request.min_samples);
  }

  // Control-plane liveness: a delivered, unexpired revocation disqualifies
  // the path no matter how good its measurement history looks.
  if (control_plane_ != nullptr && liveness_clock_ != nullptr &&
      control_plane_->hops_revoked(summary.hops, liveness_clock_->now())) {
    return std::string("path revoked by control plane");
  }

  // Sovereignty / governance constraints over every hop.
  for (const scion::IsdAsn& hop : summary.hops) {
    const scion::AsInfo* info = topology_.find_as(hop);
    if (info == nullptr) continue;
    for (const std::string& country : request.exclude_countries) {
      if (info->country == country) {
        return "traverses excluded country " + country + " (" +
               hop.to_string() + ")";
      }
    }
    for (const std::string& op : request.exclude_operators) {
      if (info->operator_name == op) {
        return "traverses excluded operator " + op + " (" + hop.to_string() +
               ")";
      }
    }
    if (std::find(request.exclude_ases.begin(), request.exclude_ases.end(),
                  hop) != request.exclude_ases.end()) {
      return "traverses excluded AS " + hop.to_string();
    }
  }
  for (const std::int64_t isd : summary.isds) {
    if (std::find(request.exclude_isds.begin(), request.exclude_isds.end(),
                  static_cast<std::uint16_t>(isd)) !=
        request.exclude_isds.end()) {
      return "traverses excluded ISD " + std::to_string(isd);
    }
    if (!request.allowed_isds.empty() &&
        std::find(request.allowed_isds.begin(), request.allowed_isds.end(),
                  static_cast<std::uint16_t>(isd)) ==
            request.allowed_isds.end()) {
      return "traverses ISD " + std::to_string(isd) +
             " outside the allow-list";
    }
  }

  // Performance constraints.
  if (request.max_latency_ms.has_value()) {
    if (!summary.latency_ms.has_value()) return "no latency data";
    if (summary.latency_ms->median > *request.max_latency_ms) {
      return util::format("median latency %.1fms exceeds %.1fms",
                          summary.latency_ms->median, *request.max_latency_ms);
    }
  }
  if (request.min_bandwidth_mbps.has_value()) {
    const std::optional<double> bw = summary.bandwidth(request.bw_direction);
    if (!bw.has_value()) return "no bandwidth data";
    if (*bw < *request.min_bandwidth_mbps) {
      return util::format("bandwidth %.1fMbps below %.1fMbps", *bw,
                          *request.min_bandwidth_mbps);
    }
  }
  if (request.max_loss_pct.has_value() &&
      summary.mean_loss_pct > *request.max_loss_pct) {
    return util::format("loss %.1f%% exceeds %.1f%%", summary.mean_loss_pct,
                        *request.max_loss_pct);
  }
  if (request.max_jitter_ms.has_value()) {
    if (!summary.mean_jitter_ms.has_value()) return "no jitter data";
    if (*summary.mean_jitter_ms > *request.max_jitter_ms) {
      return util::format("jitter %.1fms exceeds %.1fms",
                          *summary.mean_jitter_ms, *request.max_jitter_ms);
    }
  }

  // The objective itself needs a usable metric.
  if (!score(summary, request).has_value()) {
    return std::string("no data for objective ") + to_string(request.objective);
  }
  return std::nullopt;
}

std::optional<double> PathSelector::score(const PathSummary& summary,
                                          const UserRequest& request) {
  switch (request.objective) {
    case Objective::kLowestLatency:
      if (!summary.latency_ms.has_value()) return std::nullopt;
      return summary.latency_ms->median;
    case Objective::kHighestBandwidth: {
      const std::optional<double> bw = summary.bandwidth(request.bw_direction);
      if (!bw.has_value()) return std::nullopt;
      return -*bw;  // lower score = better
    }
    case Objective::kLowestLoss:
      // Tie-break equal losses by latency when available.
      return summary.mean_loss_pct * 1e6 +
             (summary.latency_ms.has_value() ? summary.latency_ms->median : 0.0);
    case Objective::kMostConsistent:
      // §6.1: "latency consistency is more important than low latency
      // values" for streaming/VoIP — rank by latency IQR.
      if (!summary.latency_ms.has_value() || summary.latency_samples < 2) {
        return std::nullopt;
      }
      return summary.latency_ms->iqr;
  }
  return std::nullopt;
}

Result<Selection> PathSelector::select(const UserRequest& request) const {
  Result<std::vector<PathSummary>> summaries =
      summarize(request.server_id, request.since_timestamp_ms);
  if (!summaries.ok()) return Result<Selection>(summaries.error());

  Selection selection;
  for (PathSummary& summary : summaries.value()) {
    const std::optional<std::string> rejection =
        rejection_reason(summary, request);
    if (rejection.has_value()) {
      selection.rejected.emplace_back(summary.path_id, *rejection);
      continue;
    }
    RankedPath ranked;
    ranked.score = *score(summary, request);
    switch (request.objective) {
      case Objective::kLowestLatency:
        ranked.rationale = util::format("median latency %.2fms over %zu samples",
                                        summary.latency_ms->median,
                                        summary.latency_samples);
        break;
      case Objective::kHighestBandwidth:
        ranked.rationale = util::format(
            "mean %s bandwidth %.2fMbps",
            request.bw_direction == BwDirection::kDownstream ? "downstream"
                                                             : "upstream",
            -ranked.score);
        break;
      case Objective::kLowestLoss:
        ranked.rationale =
            util::format("mean loss %.2f%%", summary.mean_loss_pct);
        break;
      case Objective::kMostConsistent:
        ranked.rationale =
            util::format("latency IQR %.2fms", summary.latency_ms->iqr);
        break;
    }
    ranked.summary = std::move(summary);
    selection.ranked.push_back(std::move(ranked));
  }

  std::stable_sort(selection.ranked.begin(), selection.ranked.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.score < b.score;
                   });
  return selection;
}

Result<RankedPath> PathSelector::best(const UserRequest& request) const {
  Result<Selection> selection = select(request);
  if (!selection.ok()) return Result<RankedPath>(selection.error());
  if (selection.value().ranked.empty()) {
    return util::Error{ErrorCode::kNotFound,
                       "no path satisfies: " + request.describe()};
  }
  return selection.value().ranked.front();
}

}  // namespace upin::select
