#include "select/selector.hpp"

#include <algorithm>

#include "measure/schema.hpp"
#include "scion/path.hpp"
#include "util/strings.hpp"

namespace upin::select {

using docdb::Document;
using docdb::Filter;
using measure::PathRecord;
using measure::StatsSample;
using util::ErrorCode;
using util::Result;
using util::Value;

PathSelector::PathSelector(const docdb::Database& db,
                           const scion::Topology& topology)
    : db_(db), topology_(topology) {}

Result<PathSummary> PathSelector::summarize_path(
    const Document& path_doc, std::optional<std::int64_t> since_ms) const {
  Result<PathRecord> record = measure::parse_path_document(path_doc);
  if (!record.ok()) return Result<PathSummary>(record.error());

  PathSummary summary;
  summary.path_id = record.value().id;
  summary.server_id = record.value().server_id;
  summary.sequence = record.value().sequence;
  summary.hop_count = record.value().hop_count;
  summary.isds = record.value().isds;
  summary.mtu = record.value().mtu;

  Result<scion::Path> parsed =
      scion::Path::parse_sequence(record.value().sequence);
  if (parsed.ok()) {
    for (const scion::PathHop& hop : parsed.value().hops()) {
      summary.hops.push_back(hop.ia);
    }
  }

  const docdb::Collection* stats = db_.find_collection(measure::kPathsStats);
  if (stats == nullptr) {
    return util::Error{ErrorCode::kNotFound, "paths_stats does not exist"};
  }
  util::JsonObject query;
  query.set("path_id", Value(summary.path_id));
  if (since_ms.has_value()) {
    query.set("timestamp_ms", Value::object({{"$gte", Value(*since_ms)}}));
  }
  Result<Filter> by_path = Filter::compile(Value(std::move(query)));
  if (!by_path.ok()) return Result<PathSummary>(by_path.error());

  std::vector<double> latencies;
  std::vector<double> losses;
  std::vector<double> jitters;
  std::vector<double> bw_down_mtu, bw_up_mtu, bw_down_64, bw_up_64;
  for (const Document& doc : stats->find(by_path.value())) {
    Result<StatsSample> sample = measure::parse_stats_document(doc);
    if (!sample.ok()) continue;  // tolerate foreign documents
    ++summary.samples;
    losses.push_back(sample.value().loss_pct);
    if (sample.value().latency_ms.has_value()) {
      latencies.push_back(*sample.value().latency_ms);
    }
    if (sample.value().jitter_ms.has_value()) {
      jitters.push_back(*sample.value().jitter_ms);
    }
    if (sample.value().bw_down_mtu.has_value()) {
      bw_down_mtu.push_back(*sample.value().bw_down_mtu);
    }
    if (sample.value().bw_up_mtu.has_value()) {
      bw_up_mtu.push_back(*sample.value().bw_up_mtu);
    }
    if (sample.value().bw_down_64.has_value()) {
      bw_down_64.push_back(*sample.value().bw_down_64);
    }
    if (sample.value().bw_up_64.has_value()) {
      bw_up_64.push_back(*sample.value().bw_up_64);
    }
  }

  summary.latency_samples = latencies.size();
  if (!latencies.empty()) summary.latency_ms = util::box_stats(latencies);
  if (!losses.empty()) summary.mean_loss_pct = util::mean(losses);
  if (!jitters.empty()) summary.mean_jitter_ms = util::mean(jitters);
  if (!bw_down_mtu.empty()) summary.mean_bw_down_mtu = util::mean(bw_down_mtu);
  if (!bw_up_mtu.empty()) summary.mean_bw_up_mtu = util::mean(bw_up_mtu);
  if (!bw_down_64.empty()) summary.mean_bw_down_64 = util::mean(bw_down_64);
  if (!bw_up_64.empty()) summary.mean_bw_up_64 = util::mean(bw_up_64);
  return summary;
}

namespace {

util::Result<std::vector<Document>> path_docs_for(const docdb::Database& db,
                                                  int server_id) {
  const docdb::Collection* paths = db.find_collection(measure::kPaths);
  if (paths == nullptr) {
    return util::Error{ErrorCode::kNotFound, "paths collection does not exist"};
  }
  util::JsonObject query;
  query.set("server_id", Value(server_id));
  Result<Filter> by_server = Filter::compile(Value(std::move(query)));
  if (!by_server.ok()) {
    return util::Result<std::vector<Document>>(by_server.error());
  }
  docdb::FindOptions in_order;
  in_order.sort_by = "path_index";
  return paths->find(by_server.value(), in_order);
}

}  // namespace

Result<std::vector<PathSummary>> PathSelector::summarize(
    int server_id, std::optional<std::int64_t> since_ms) const {
  Result<std::vector<Document>> docs = path_docs_for(db_, server_id);
  if (!docs.ok()) return Result<std::vector<PathSummary>>(docs.error());
  std::vector<PathSummary> summaries;
  summaries.reserve(docs.value().size());
  for (const Document& doc : docs.value()) {
    Result<PathSummary> summary = summarize_path(doc, since_ms);
    if (!summary.ok()) return Result<std::vector<PathSummary>>(summary.error());
    summaries.push_back(std::move(summary).value());
  }
  return summaries;
}

Result<std::vector<PathSummary>> PathSelector::summarize_parallel(
    int server_id, util::ThreadPool& pool,
    std::optional<std::int64_t> since_ms) const {
  Result<std::vector<Document>> docs = path_docs_for(db_, server_id);
  if (!docs.ok()) return Result<std::vector<PathSummary>>(docs.error());

  // Each worker writes only its own slot; no shared mutable state.
  std::vector<Result<PathSummary>> slots(
      docs.value().size(),
      Result<PathSummary>(util::Error{ErrorCode::kInternal, "not computed"}));
  util::parallel_for(pool, docs.value().size(), [&](std::size_t i) {
    slots[i] = summarize_path(docs.value()[i], since_ms);
  });

  std::vector<PathSummary> summaries;
  summaries.reserve(slots.size());
  for (Result<PathSummary>& slot : slots) {
    if (!slot.ok()) return Result<std::vector<PathSummary>>(slot.error());
    summaries.push_back(std::move(slot).value());
  }
  return summaries;
}

namespace {

/// The shared paper-objective instance the façade entry points delegate
/// to (it is stateless, so one is enough).
const PathSelectionStrategy& paper_strategy() {
  static const std::unique_ptr<PathSelectionStrategy> strategy =
      std::move(StrategyRegistry::global().create(kPaperObjective)).value();
  return *strategy;
}

}  // namespace

std::optional<std::string> PathSelector::rejection_reason(
    const PathSummary& summary, const UserRequest& request) const {
  return check_admission(summary, request, context(), paper_strategy())
      .rejection;
}

std::optional<double> PathSelector::score(const PathSummary& summary,
                                          const UserRequest& request) {
  return paper_objective_score(summary, request);
}

Result<Selection> PathSelector::select(const UserRequest& request) const {
  return select_with(kPaperObjective, request);
}

Result<Selection> PathSelector::select_with(std::string_view strategy_key,
                                            const UserRequest& request,
                                            const util::JsonObject& knobs) const {
  Result<std::unique_ptr<PathSelectionStrategy>> strategy =
      StrategyRegistry::global().create(strategy_key, knobs);
  if (!strategy.ok()) return Result<Selection>(strategy.error());
  Result<std::vector<PathSummary>> summaries =
      summarize(request.server_id, request.since_timestamp_ms);
  if (!summaries.ok()) return Result<Selection>(summaries.error());
  return strategy.value()->rank(summaries.value(), request, context());
}

Result<RankedPath> PathSelector::best(const UserRequest& request) const {
  Result<Selection> selection = select(request);
  if (!selection.ok()) return Result<RankedPath>(selection.error());
  if (selection.value().ranked.empty()) {
    return util::Error{ErrorCode::kNotFound,
                       "no path satisfies: " + request.describe()};
  }
  return selection.value().ranked.front();
}

}  // namespace upin::select
