// selector.hpp — query the measurement database and pick paths.
//
// The selection pipeline of paper §6: aggregate paths_stats per path into
// summaries (box statistics over latency, mean loss, mean bandwidths),
// drop paths violating the user's constraints (performance + sovereignty),
// rank the survivors under the chosen objective, and return them with a
// rationale.  Aggregation over many paths is parallelized with the shared
// thread pool — each path's samples are independent.
//
// Since the strategy-lab redesign, PathSelector is a thin façade over the
// StrategyRegistry: `select()` delegates to the `paper-objective`
// strategy (bit-identical to the pre-registry pipeline) and
// `select_with()` runs any registered strategy over the same summaries.
// The data model (PathSummary, RankedPath, Selection) lives in
// select/types.hpp; the strategy interface in select/strategy.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "docdb/database.hpp"
#include "scion/control_plane.hpp"
#include "scion/topology.hpp"
#include "select/request.hpp"
#include "select/strategy.hpp"
#include "select/types.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace upin::select {

/// Read-side engine over the measurement database.
class PathSelector {
 public:
  /// `topology` supplies the AS metadata for sovereignty filters.
  PathSelector(const docdb::Database& db, const scion::Topology& topology);

  /// Attach control-plane liveness: selections made after this reject
  /// paths whose revocation was delivered by `clock->now()`.  Both
  /// pointers must outlive the selector; pass nullptrs to detach.
  void attach_liveness(const scion::ControlPlane* control_plane,
                       const util::VirtualClock* clock) noexcept {
    control_plane_ = control_plane;
    liveness_clock_ = clock;
  }

  /// Aggregate every measured path of `server_id`.  When `since_ms` is
  /// set, only measurements taken at or after that virtual timestamp
  /// contribute (freshness window).
  [[nodiscard]] util::Result<std::vector<PathSummary>> summarize(
      int server_id, std::optional<std::int64_t> since_ms = std::nullopt) const;

  /// As `summarize`, but aggregating paths in parallel on `pool`.
  [[nodiscard]] util::Result<std::vector<PathSummary>> summarize_parallel(
      int server_id, util::ThreadPool& pool,
      std::optional<std::int64_t> since_ms = std::nullopt) const;

  /// Full selection under a request — the `paper-objective` strategy.
  [[nodiscard]] util::Result<Selection> select(const UserRequest& request) const;

  /// Full selection under any registered strategy: summarize, then rank
  /// with `StrategyRegistry::global().create(strategy_key, knobs)`.
  /// Propagates kNotFound for unknown keys and kInvalidArgument for bad
  /// knobs.
  [[nodiscard]] util::Result<Selection> select_with(
      std::string_view strategy_key, const UserRequest& request,
      const util::JsonObject& knobs = {}) const;

  /// The single best path, or kNotFound when nothing qualifies.
  [[nodiscard]] util::Result<RankedPath> best(const UserRequest& request) const;

  /// The selection context this selector ranks in (topology + attached
  /// liveness), for callers driving strategies directly.
  [[nodiscard]] SelectionContext context() const noexcept {
    return SelectionContext{&topology_, control_plane_, liveness_clock_};
  }

  /// Constraint check used by select(); exposed for tests.  Returns the
  /// rejection reason or nullopt when admissible.
  [[nodiscard]] std::optional<std::string> rejection_reason(
      const PathSummary& summary, const UserRequest& request) const;

  /// Deprecated: the paper objective's score, kept as a shim so existing
  /// callers compile.  New code scores through a strategy
  /// (`PathSelectionStrategy::score_path`) or `paper_objective_score`.
  [[nodiscard]] static std::optional<double> score(const PathSummary& summary,
                                                   const UserRequest& request);

 private:
  [[nodiscard]] util::Result<PathSummary> summarize_path(
      const docdb::Document& path_doc,
      std::optional<std::int64_t> since_ms) const;

  const docdb::Database& db_;
  const scion::Topology& topology_;
  const scion::ControlPlane* control_plane_ = nullptr;
  const util::VirtualClock* liveness_clock_ = nullptr;
};

}  // namespace upin::select
