// selector.hpp — query the measurement database and pick paths.
//
// The selection pipeline of paper §6: aggregate paths_stats per path into
// summaries (box statistics over latency, mean loss, mean bandwidths),
// drop paths violating the user's constraints (performance + sovereignty),
// rank the survivors under the chosen objective, and return them with a
// rationale.  Aggregation over many paths is parallelized with the shared
// thread pool — each path's samples are independent.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "docdb/database.hpp"
#include "scion/control_plane.hpp"
#include "scion/topology.hpp"
#include "select/request.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace upin::select {

/// Aggregated view of one path's measurement history.
struct PathSummary {
  std::string path_id;
  int server_id = 0;
  std::string sequence;
  std::vector<scion::IsdAsn> hops;
  std::size_t hop_count = 0;
  std::vector<std::int64_t> isds;
  double mtu = 0.0;

  std::size_t samples = 0;          ///< total paths_stats documents
  std::size_t latency_samples = 0;  ///< documents with a latency reading
  std::optional<util::BoxStats> latency_ms;  ///< set when any probe answered
  double mean_loss_pct = 0.0;
  std::optional<double> mean_jitter_ms;
  std::optional<double> mean_bw_down_mtu;
  std::optional<double> mean_bw_up_mtu;
  std::optional<double> mean_bw_down_64;
  std::optional<double> mean_bw_up_64;

  /// The bandwidth figure a request's direction refers to (MTU packets).
  [[nodiscard]] std::optional<double> bandwidth(BwDirection direction) const {
    return direction == BwDirection::kDownstream ? mean_bw_down_mtu
                                                 : mean_bw_up_mtu;
  }
};

/// A selected path with its score (lower = better) and the explanation.
struct RankedPath {
  PathSummary summary;
  double score = 0.0;
  std::string rationale;
};

/// Outcome of a selection: ranked admissible paths plus the reasons the
/// inadmissible ones were rejected (transparency requirement of UPIN).
struct Selection {
  std::vector<RankedPath> ranked;
  std::vector<std::pair<std::string, std::string>> rejected;  ///< path_id, why
};

/// Read-side engine over the measurement database.
class PathSelector {
 public:
  /// `topology` supplies the AS metadata for sovereignty filters.
  PathSelector(const docdb::Database& db, const scion::Topology& topology);

  /// Attach control-plane liveness: selections made after this reject
  /// paths whose revocation was delivered by `clock->now()`.  Both
  /// pointers must outlive the selector; pass nullptrs to detach.
  void attach_liveness(const scion::ControlPlane* control_plane,
                       const util::VirtualClock* clock) noexcept {
    control_plane_ = control_plane;
    liveness_clock_ = clock;
  }

  /// Aggregate every measured path of `server_id`.  When `since_ms` is
  /// set, only measurements taken at or after that virtual timestamp
  /// contribute (freshness window).
  [[nodiscard]] util::Result<std::vector<PathSummary>> summarize(
      int server_id, std::optional<std::int64_t> since_ms = std::nullopt) const;

  /// As `summarize`, but aggregating paths in parallel on `pool`.
  [[nodiscard]] util::Result<std::vector<PathSummary>> summarize_parallel(
      int server_id, util::ThreadPool& pool,
      std::optional<std::int64_t> since_ms = std::nullopt) const;

  /// Full selection under a request.
  [[nodiscard]] util::Result<Selection> select(const UserRequest& request) const;

  /// The single best path, or kNotFound when nothing qualifies.
  [[nodiscard]] util::Result<RankedPath> best(const UserRequest& request) const;

  /// Constraint check used by select(); exposed for tests.  Returns the
  /// rejection reason or nullopt when admissible.
  [[nodiscard]] std::optional<std::string> rejection_reason(
      const PathSummary& summary, const UserRequest& request) const;

  /// Objective score (lower = better); exposed for tests.
  [[nodiscard]] static std::optional<double> score(const PathSummary& summary,
                                                   const UserRequest& request);

 private:
  [[nodiscard]] util::Result<PathSummary> summarize_path(
      const docdb::Document& path_doc,
      std::optional<std::int64_t> since_ms) const;

  const docdb::Database& db_;
  const scion::Topology& topology_;
  const scion::ControlPlane* control_plane_ = nullptr;
  const util::VirtualClock* liveness_clock_ = nullptr;
};

}  // namespace upin::select
