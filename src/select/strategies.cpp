// strategies.cpp — the five shipped path-selection strategies and the
// global registry that serves them.
//
// All strategies share the admission pipeline (`check_admission`); they
// differ only in how admitted paths are scored and ordered.  The
// paper-objective strategy reproduces the legacy `PathSelector::select`
// output bit-identically (golden-tested); the others explore the design
// space the axiomatic-analysis literature describes: single-statistic
// greedy, smooth multi-metric penalties, geography, and hop-set
// anti-affinity for multipath.
#include <algorithm>
#include <set>
#include <string>

#include "scion/topology.hpp"
#include "select/strategy.hpp"
#include "simnet/geo.hpp"
#include "util/strings.hpp"

namespace upin::select {
namespace {

using util::JsonObject;
using util::Value;

/// Admission + raw scoring shared by every built-in: fills `ranked` with
/// admitted paths (score from `score_path`, unsorted, no rationale yet)
/// and both rejection records.  Callers order and annotate.
Selection admit(std::span<const PathSummary> paths, const UserRequest& request,
                const SelectionContext& context,
                const PathSelectionStrategy& strategy) {
  Selection out;
  out.strategy = std::string(strategy.key());
  out.request_description = request.describe();
  for (const PathSummary& summary : paths) {
    AdmissionReport report = check_admission(summary, request, context, strategy);
    if (report.rejection.has_value()) {
      out.rejected.emplace_back(summary.path_id, *report.rejection);
      out.rejected_detail.push_back(RejectedPath{
          summary.path_id, *report.rejection, std::move(report.verdicts)});
      continue;
    }
    RankedPath ranked;
    ranked.summary = summary;
    ranked.score = *strategy.score_path(summary, request, context);
    out.ranked.push_back(std::move(ranked));
  }
  return out;
}

/// Base for strategies whose final order is simply ascending score:
/// admit, annotate, stable-sort.  The stable sort preserves summarize()'s
/// path_index order among ties, exactly like the legacy selector.
class ScoredStrategy : public PathSelectionStrategy {
 public:
  [[nodiscard]] Selection rank(std::span<const PathSummary> paths,
                               const UserRequest& request,
                               const SelectionContext& context) const override {
    Selection out = admit(paths, request, context, *this);
    for (RankedPath& path : out.ranked) {
      path.rationale = rationale(path.summary, path.score, request, context);
      path.terms = terms(path.summary, path.score, request, context);
    }
    std::stable_sort(out.ranked.begin(), out.ranked.end(),
                     [](const RankedPath& a, const RankedPath& b) {
                       return a.score < b.score;
                     });
    return out;
  }

 protected:
  [[nodiscard]] virtual std::string rationale(
      const PathSummary& summary, double score, const UserRequest& request,
      const SelectionContext& context) const = 0;

  [[nodiscard]] virtual std::vector<ScoreTerm> terms(
      const PathSummary& /*summary*/, double /*score*/,
      const UserRequest& /*request*/, const SelectionContext& /*context*/) const {
    return {};
  }
};

// ---- paper-objective ----------------------------------------------------

/// The paper's §6 pipeline, bit-identical to the pre-registry
/// `PathSelector::select`: same scores, same rationale strings, same
/// rejection strings, same stable order.
class PaperObjectiveStrategy final : public ScoredStrategy {
 public:
  [[nodiscard]] std::string_view key() const noexcept override {
    return kPaperObjective;
  }

  [[nodiscard]] std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& request,
      const SelectionContext& /*context*/) const override {
    return paper_objective_score(summary, request);
  }

  [[nodiscard]] std::string missing_data_reason(
      const UserRequest& request) const override {
    return std::string("no data for objective ") + to_string(request.objective);
  }

 protected:
  [[nodiscard]] std::string rationale(
      const PathSummary& summary, double score, const UserRequest& request,
      const SelectionContext& /*context*/) const override {
    switch (request.objective) {
      case Objective::kLowestLatency:
        return util::format("median latency %.2fms over %zu samples",
                            summary.latency_ms->median, summary.latency_samples);
      case Objective::kHighestBandwidth:
        return util::format(
            "mean %s bandwidth %.2fMbps",
            request.bw_direction == BwDirection::kDownstream ? "downstream"
                                                             : "upstream",
            -score);
      case Objective::kLowestLoss:
        return util::format("mean loss %.2f%%", summary.mean_loss_pct);
      case Objective::kMostConsistent:
        return util::format("latency IQR %.2fms", summary.latency_ms->iqr);
    }
    return {};
  }

  [[nodiscard]] std::vector<ScoreTerm> terms(
      const PathSummary& summary, double score, const UserRequest& request,
      const SelectionContext& /*context*/) const override {
    switch (request.objective) {
      case Objective::kLowestLatency:
        return {{"median_latency_ms", score}};
      case Objective::kHighestBandwidth:
        return {{"bandwidth_mbps", -score}};
      case Objective::kLowestLoss:
        return {{"loss_pct", summary.mean_loss_pct},
                {"latency_tiebreak_ms", summary.latency_ms.has_value()
                                            ? summary.latency_ms->median
                                            : 0.0}};
      case Objective::kMostConsistent:
        return {{"latency_iqr_ms", score}};
    }
    return {};
  }
};

// ---- latency-greedy -----------------------------------------------------

/// One configurable latency box statistic, nothing else.  `statistic`
/// selects which corner of the latency distribution to chase: `median`
/// (default), `mean`, `q1` (optimistic), `q3` or `whisker_high`
/// (pessimistic tail latency).
class LatencyGreedyStrategy final : public ScoredStrategy {
 public:
  enum class Stat { kMedian, kMean, kQ1, kQ3, kWhiskerHigh };

  static std::optional<Stat> parse_stat(std::string_view name) {
    if (name == "median") return Stat::kMedian;
    if (name == "mean") return Stat::kMean;
    if (name == "q1") return Stat::kQ1;
    if (name == "q3") return Stat::kQ3;
    if (name == "whisker_high") return Stat::kWhiskerHigh;
    return std::nullopt;
  }

  explicit LatencyGreedyStrategy(Stat stat, std::string stat_name)
      : stat_(stat), stat_name_(std::move(stat_name)) {}

  [[nodiscard]] std::string_view key() const noexcept override {
    return kLatencyGreedy;
  }

  [[nodiscard]] std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    if (!summary.latency_ms.has_value()) return std::nullopt;
    const util::BoxStats& box = *summary.latency_ms;
    switch (stat_) {
      case Stat::kMedian: return box.median;
      case Stat::kMean: return box.mean;
      case Stat::kQ1: return box.q1;
      case Stat::kQ3: return box.q3;
      case Stat::kWhiskerHigh: return box.whisker_high;
    }
    return std::nullopt;
  }

 protected:
  [[nodiscard]] std::string rationale(
      const PathSummary& summary, double score, const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    return util::format("latency %s %.2fms over %zu samples",
                        stat_name_.c_str(), score, summary.latency_samples);
  }

  [[nodiscard]] std::vector<ScoreTerm> terms(
      const PathSummary& /*summary*/, double score,
      const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    return {{"latency_" + stat_name_ + "_ms", score}};
  }

 private:
  Stat stat_;
  std::string stat_name_;
};

// ---- loss-averse --------------------------------------------------------

/// Loss first, latency and jitter as smooth penalties: score =
/// loss_pct + latency_weight·median_latency + jitter_weight·jitter.
/// Unlike the paper's lowest-loss objective (which multiplies loss by
/// 1e6, making latency a pure tiebreak), the weights trade the metrics
/// off continuously.  Always scoreable — missing latency/jitter terms
/// contribute zero rather than disqualifying the path.
class LossAverseStrategy final : public ScoredStrategy {
 public:
  LossAverseStrategy(double latency_weight, double jitter_weight)
      : latency_weight_(latency_weight), jitter_weight_(jitter_weight) {}

  [[nodiscard]] std::string_view key() const noexcept override {
    return kLossAverse;
  }

  [[nodiscard]] std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    return summary.mean_loss_pct + latency_weight_ * latency_term(summary) +
           jitter_weight_ * jitter_term(summary);
  }

 protected:
  [[nodiscard]] std::string rationale(
      const PathSummary& summary, double score, const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    return util::format("loss %.2f%% + weighted latency/jitter -> %.3f",
                        summary.mean_loss_pct, score);
  }

  [[nodiscard]] std::vector<ScoreTerm> terms(
      const PathSummary& summary, double /*score*/,
      const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    return {{"loss_pct", summary.mean_loss_pct},
            {"latency_penalty", latency_weight_ * latency_term(summary)},
            {"jitter_penalty", jitter_weight_ * jitter_term(summary)}};
  }

 private:
  static double latency_term(const PathSummary& summary) {
    return summary.latency_ms.has_value() ? summary.latency_ms->median : 0.0;
  }
  static double jitter_term(const PathSummary& summary) {
    return summary.mean_jitter_ms.value_or(0.0);
  }

  double latency_weight_;
  double jitter_weight_;
};

// ---- geo-constrained ----------------------------------------------------

/// Sovereignty hard filter (shared admission) + geography: rank by total
/// great-circle distance along the hop chain, with a small latency
/// tiebreak so equal-geometry paths still order by measured performance
/// (and a strictly slower clone of a path ranks strictly worse).  With
/// `require_geo`, paths whose hop chain cannot be resolved against the
/// topology are rejected instead of scored as distance zero.
class GeoConstrainedStrategy final : public ScoredStrategy {
 public:
  explicit GeoConstrainedStrategy(bool require_geo)
      : require_geo_(require_geo) {}

  [[nodiscard]] std::string_view key() const noexcept override {
    return kGeoConstrained;
  }

  [[nodiscard]] std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& /*request*/,
      const SelectionContext& context) const override {
    const std::optional<double> km = geodesic_km(summary, context);
    if (!km.has_value()) return std::nullopt;
    return *km + kLatencyTiebreak * (summary.latency_ms.has_value()
                                         ? summary.latency_ms->median
                                         : 0.0);
  }

 protected:
  [[nodiscard]] std::string rationale(
      const PathSummary& summary, double /*score*/,
      const UserRequest& /*request*/,
      const SelectionContext& context) const override {
    const double km = geodesic_km(summary, context).value_or(0.0);
    return util::format("geodesic %.0fkm over %zu hops", km,
                        summary.hops.size());
  }

  [[nodiscard]] std::vector<ScoreTerm> terms(
      const PathSummary& summary, double score,
      const UserRequest& /*request*/,
      const SelectionContext& context) const override {
    const double km = geodesic_km(summary, context).value_or(0.0);
    return {{"geodesic_km", km}, {"latency_tiebreak", score - km}};
  }

 private:
  static constexpr double kLatencyTiebreak = 0.001;  ///< km per ms

  /// Sum of great-circle hop distances; nullopt when `require_geo` is set
  /// and no consecutive hop pair resolves against the topology.
  [[nodiscard]] std::optional<double> geodesic_km(
      const PathSummary& summary, const SelectionContext& context) const {
    double km = 0.0;
    bool resolved_any = false;
    if (context.topology != nullptr) {
      for (std::size_t i = 1; i < summary.hops.size(); ++i) {
        const scion::AsInfo* from = context.topology->find_as(summary.hops[i - 1]);
        const scion::AsInfo* to = context.topology->find_as(summary.hops[i]);
        if (from == nullptr || to == nullptr) continue;
        km += simnet::haversine_km(from->location, to->location);
        resolved_any = true;
      }
    }
    if (require_geo_ && !resolved_any) return std::nullopt;
    return km;
  }

  bool require_geo_;
};

// ---- disjointness-max ---------------------------------------------------

/// Greedy hop-set anti-affinity for multipath: the best path by the base
/// metric goes first, then each successive slot picks the admitted path
/// with the least interior-hop overlap against everything already chosen
/// (ties broken by base score, then input order).  The final score is
/// `position + overlap/2`, strictly increasing down the ranking, so
/// multipath weights decay with both rank and redundancy.
class DisjointnessMaxStrategy final : public PathSelectionStrategy {
 public:
  DisjointnessMaxStrategy(std::size_t pool, bool base_is_loss)
      : pool_(pool), base_is_loss_(base_is_loss) {}

  [[nodiscard]] std::string_view key() const noexcept override {
    return kDisjointnessMax;
  }

  /// The base metric (what admission's objective-data check needs).
  [[nodiscard]] std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& /*request*/,
      const SelectionContext& /*context*/) const override {
    if (base_is_loss_) {
      return summary.mean_loss_pct * 1e6 + (summary.latency_ms.has_value()
                                                ? summary.latency_ms->median
                                                : 0.0);
    }
    if (!summary.latency_ms.has_value()) return std::nullopt;
    return summary.latency_ms->median;
  }

  [[nodiscard]] Selection rank(std::span<const PathSummary> paths,
                               const UserRequest& request,
                               const SelectionContext& context) const override {
    Selection out = admit(paths, request, context, *this);
    // Base order first: ascending base score, input order on ties.
    std::stable_sort(out.ranked.begin(), out.ranked.end(),
                     [](const RankedPath& a, const RankedPath& b) {
                       return a.score < b.score;
                     });

    const std::size_t greedy_slots =
        pool_ == 0 ? out.ranked.size() : std::min(pool_, out.ranked.size());
    std::vector<RankedPath> remaining = std::move(out.ranked);
    out.ranked.clear();
    out.ranked.reserve(remaining.size());

    std::set<scion::IsdAsn> chosen_hops;
    while (!remaining.empty()) {
      std::size_t pick = 0;
      double pick_overlap = overlap_with(chosen_hops, remaining[0].summary);
      if (out.ranked.size() < greedy_slots) {
        // Remaining is kept in base order, so scanning forward and
        // requiring a strict improvement implements "least overlap, ties
        // by base score then input order" — and leaves a duplicated
        // winner behind its original.
        for (std::size_t i = 1; i < remaining.size(); ++i) {
          const double overlap = overlap_with(chosen_hops, remaining[i].summary);
          if (overlap < pick_overlap) {
            pick = i;
            pick_overlap = overlap;
          }
        }
      }
      RankedPath chosen = std::move(remaining[pick]);
      remaining.erase(remaining.begin() +
                      static_cast<std::vector<RankedPath>::difference_type>(pick));
      for (const scion::IsdAsn& hop : interior_hops(chosen.summary)) {
        chosen_hops.insert(hop);
      }
      const double base = chosen.score;
      chosen.score =
          static_cast<double>(out.ranked.size()) + pick_overlap / 2.0;
      chosen.rationale = util::format(
          "interior-hop overlap %.0f%% with higher-ranked picks; base %s %.3f",
          pick_overlap * 100.0, base_is_loss_ ? "loss" : "latency", base);
      chosen.terms = {{"overlap_fraction", pick_overlap}, {"base_score", base}};
      out.ranked.push_back(std::move(chosen));
    }
    return out;
  }

 private:
  /// Hops that can actually be disjoint: everything but the shared source
  /// and destination endpoints.
  [[nodiscard]] static std::span<const scion::IsdAsn> interior_hops(
      const PathSummary& summary) {
    if (summary.hops.size() <= 2) return {};
    return std::span<const scion::IsdAsn>(summary.hops).subspan(
        1, summary.hops.size() - 2);
  }

  [[nodiscard]] static double overlap_with(
      const std::set<scion::IsdAsn>& chosen_hops, const PathSummary& summary) {
    const std::span<const scion::IsdAsn> interior = interior_hops(summary);
    if (interior.empty() || chosen_hops.empty()) return 0.0;
    std::size_t shared = 0;
    for (const scion::IsdAsn& hop : interior) {
      if (chosen_hops.count(hop) != 0) ++shared;
    }
    return static_cast<double>(shared) / static_cast<double>(interior.size());
  }

  std::size_t pool_;
  bool base_is_loss_;
};

// ---- registration -------------------------------------------------------

void register_builtin_strategies(StrategyRegistry& registry) {
  (void)registry.add(
      std::string(kPaperObjective),
      StrategyRegistry::Entry{
          "the paper's §6 objective pipeline (legacy PathSelector::select)",
          {},
          [](const JsonObject&) {
            return std::make_unique<PaperObjectiveStrategy>();
          }});
  (void)registry.add(
      std::string(kLatencyGreedy),
      StrategyRegistry::Entry{
          "rank by one latency box statistic",
          {KnobSpec{"statistic", Value::Type::kString, Value("median"),
                    "which latency statistic to minimize: median, mean, q1, "
                    "q3 or whisker_high"}},
          [](const JsonObject& knobs) -> std::unique_ptr<PathSelectionStrategy> {
            const std::string& name = knobs.find("statistic")->as_string();
            const auto stat = LatencyGreedyStrategy::parse_stat(name);
            if (!stat.has_value()) return nullptr;
            return std::make_unique<LatencyGreedyStrategy>(*stat, name);
          }});
  (void)registry.add(
      std::string(kLossAverse),
      StrategyRegistry::Entry{
          "loss first, latency and jitter as smooth weighted penalties",
          {KnobSpec{"latency_weight", Value::Type::kDouble, Value(0.01),
                    "score added per ms of median latency"},
           KnobSpec{"jitter_weight", Value::Type::kDouble, Value(0.0),
                    "score added per ms of mean jitter"}},
          [](const JsonObject& knobs) {
            return std::make_unique<LossAverseStrategy>(
                knobs.find("latency_weight")->as_double(),
                knobs.find("jitter_weight")->as_double());
          }});
  (void)registry.add(
      std::string(kGeoConstrained),
      StrategyRegistry::Entry{
          "sovereignty hard filter + great-circle distance, latency tiebreak",
          {KnobSpec{"require_geo", Value::Type::kBool, Value(false),
                    "reject paths whose hop chain cannot be resolved against "
                    "the topology"}},
          [](const JsonObject& knobs) {
            return std::make_unique<GeoConstrainedStrategy>(
                knobs.find("require_geo")->as_bool());
          }});
  (void)registry.add(
      std::string(kDisjointnessMax),
      StrategyRegistry::Entry{
          "greedy interior-hop anti-affinity over the best admitted paths",
          {KnobSpec{"pool", Value::Type::kInt, Value(0),
                    "greedy slots to fill by anti-affinity; 0 = all admitted"},
           KnobSpec{"base", Value::Type::kString, Value("latency"),
                    "base metric ordering candidates: latency or loss"}},
          [](const JsonObject& knobs) -> std::unique_ptr<PathSelectionStrategy> {
            const std::string& base = knobs.find("base")->as_string();
            if (base != "latency" && base != "loss") return nullptr;
            const std::int64_t pool = knobs.find("pool")->as_int();
            if (pool < 0) return nullptr;
            return std::make_unique<DisjointnessMaxStrategy>(
                static_cast<std::size_t>(pool), base == "loss");
          }});
}

}  // namespace

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();  // leaked: lives for the process
    register_builtin_strategies(*r);
    return r;
  }();
  return *registry;
}

}  // namespace upin::select
