#include "select/strategy.hpp"

#include <algorithm>

#include "scion/control_plane.hpp"
#include "scion/topology.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"

namespace upin::select {

using util::ErrorCode;
using util::JsonObject;
using util::Result;
using util::Value;

std::string PathSelectionStrategy::missing_data_reason(
    const UserRequest& /*request*/) const {
  return "no data for strategy " + std::string(key());
}

std::optional<double> request_bandwidth(const PathSummary& summary,
                                        const UserRequest& request) {
  if (request.bw_probe_bytes.has_value()) {
    return summary.bandwidth(request.bw_direction, *request.bw_probe_bytes);
  }
  return summary.bandwidth(request.bw_direction);
}

std::optional<double> paper_objective_score(const PathSummary& summary,
                                            const UserRequest& request) {
  switch (request.objective) {
    case Objective::kLowestLatency:
      if (!summary.latency_ms.has_value()) return std::nullopt;
      return summary.latency_ms->median;
    case Objective::kHighestBandwidth: {
      const std::optional<double> bw = request_bandwidth(summary, request);
      if (!bw.has_value()) return std::nullopt;
      return -*bw;  // lower score = better
    }
    case Objective::kLowestLoss:
      // Tie-break equal losses by latency when available.
      return summary.mean_loss_pct * 1e6 +
             (summary.latency_ms.has_value() ? summary.latency_ms->median : 0.0);
    case Objective::kMostConsistent:
      // §6.1: "latency consistency is more important than low latency
      // values" for streaming/VoIP — rank by latency IQR.
      if (!summary.latency_ms.has_value() || summary.latency_samples < 2) {
        return std::nullopt;
      }
      return summary.latency_ms->iqr;
  }
  return std::nullopt;
}

namespace {

/// Append a verdict and, on the first failure, latch the rejection.
struct VerdictSink {
  AdmissionReport* report;

  void pass(std::string constraint, std::string detail = {}) {
    report->verdicts.push_back(
        ConstraintVerdict{std::move(constraint), true, std::move(detail)});
  }
  void fail(std::string constraint, std::string detail) {
    if (!report->rejection.has_value()) report->rejection = detail;
    report->verdicts.push_back(
        ConstraintVerdict{std::move(constraint), false, std::move(detail)});
  }
};

}  // namespace

AdmissionReport check_admission(const PathSummary& summary,
                                const UserRequest& request,
                                const SelectionContext& context,
                                const PathSelectionStrategy& strategy) {
  AdmissionReport report;
  VerdictSink sink{&report};

  // Evaluation order matches the legacy rejection pipeline exactly so the
  // paper-objective strategy reproduces its rejection strings verbatim.
  if (summary.samples < request.min_samples) {
    sink.fail("min-samples",
              util::format("only %zu samples (need %zu)", summary.samples,
                           request.min_samples));
  } else {
    sink.pass("min-samples",
              util::format("%zu samples", summary.samples));
  }

  // Control-plane liveness: a delivered, unexpired revocation disqualifies
  // the path no matter how good its measurement history looks.
  if (context.control_plane != nullptr && context.clock != nullptr) {
    if (context.control_plane->hops_revoked(summary.hops,
                                            context.clock->now())) {
      sink.fail("liveness", "path revoked by control plane");
    } else {
      sink.pass("liveness");
    }
  }

  // Sovereignty / governance constraints over every hop.
  const bool sovereignty_active = !request.exclude_countries.empty() ||
                                  !request.exclude_operators.empty() ||
                                  !request.exclude_ases.empty();
  std::optional<std::string> sovereignty_failure;
  if (context.topology != nullptr) {
    for (const scion::IsdAsn& hop : summary.hops) {
      if (sovereignty_failure.has_value()) break;
      const scion::AsInfo* info = context.topology->find_as(hop);
      if (info == nullptr) continue;
      for (const std::string& country : request.exclude_countries) {
        if (info->country == country) {
          sovereignty_failure = "traverses excluded country " + country +
                                " (" + hop.to_string() + ")";
          break;
        }
      }
      if (sovereignty_failure.has_value()) break;
      for (const std::string& op : request.exclude_operators) {
        if (info->operator_name == op) {
          sovereignty_failure = "traverses excluded operator " + op + " (" +
                                hop.to_string() + ")";
          break;
        }
      }
      if (sovereignty_failure.has_value()) break;
      if (std::find(request.exclude_ases.begin(), request.exclude_ases.end(),
                    hop) != request.exclude_ases.end()) {
        sovereignty_failure = "traverses excluded AS " + hop.to_string();
      }
    }
  } else {
    for (const scion::IsdAsn& hop : summary.hops) {
      if (std::find(request.exclude_ases.begin(), request.exclude_ases.end(),
                    hop) != request.exclude_ases.end()) {
        sovereignty_failure = "traverses excluded AS " + hop.to_string();
        break;
      }
    }
  }
  if (sovereignty_failure.has_value()) {
    sink.fail("sovereignty", *sovereignty_failure);
  } else if (sovereignty_active) {
    sink.pass("sovereignty");
  }

  std::optional<std::string> isd_failure;
  for (const std::int64_t isd : summary.isds) {
    if (std::find(request.exclude_isds.begin(), request.exclude_isds.end(),
                  static_cast<std::uint16_t>(isd)) !=
        request.exclude_isds.end()) {
      isd_failure = "traverses excluded ISD " + std::to_string(isd);
      break;
    }
    if (!request.allowed_isds.empty() &&
        std::find(request.allowed_isds.begin(), request.allowed_isds.end(),
                  static_cast<std::uint16_t>(isd)) ==
            request.allowed_isds.end()) {
      isd_failure =
          "traverses ISD " + std::to_string(isd) + " outside the allow-list";
      break;
    }
  }
  if (isd_failure.has_value()) {
    sink.fail("isd-policy", *isd_failure);
  } else if (!request.exclude_isds.empty() || !request.allowed_isds.empty()) {
    sink.pass("isd-policy");
  }

  // Performance constraints.
  if (request.max_latency_ms.has_value()) {
    if (!summary.latency_ms.has_value()) {
      sink.fail("max-latency", "no latency data");
    } else if (summary.latency_ms->median > *request.max_latency_ms) {
      sink.fail("max-latency",
                util::format("median latency %.1fms exceeds %.1fms",
                             summary.latency_ms->median,
                             *request.max_latency_ms));
    } else {
      sink.pass("max-latency",
                util::format("median %.1fms", summary.latency_ms->median));
    }
  }
  if (request.min_bandwidth_mbps.has_value()) {
    const std::optional<double> bw = request_bandwidth(summary, request);
    if (!bw.has_value()) {
      sink.fail("min-bandwidth", "no bandwidth data");
    } else if (*bw < *request.min_bandwidth_mbps) {
      sink.fail("min-bandwidth",
                util::format("bandwidth %.1fMbps below %.1fMbps", *bw,
                             *request.min_bandwidth_mbps));
    } else {
      sink.pass("min-bandwidth", util::format("%.1fMbps", *bw));
    }
  }
  if (request.max_loss_pct.has_value()) {
    if (summary.mean_loss_pct > *request.max_loss_pct) {
      sink.fail("max-loss",
                util::format("loss %.1f%% exceeds %.1f%%",
                             summary.mean_loss_pct, *request.max_loss_pct));
    } else {
      sink.pass("max-loss", util::format("%.1f%%", summary.mean_loss_pct));
    }
  }
  if (request.max_jitter_ms.has_value()) {
    if (!summary.mean_jitter_ms.has_value()) {
      sink.fail("max-jitter", "no jitter data");
    } else if (*summary.mean_jitter_ms > *request.max_jitter_ms) {
      sink.fail("max-jitter",
                util::format("jitter %.1fms exceeds %.1fms",
                             *summary.mean_jitter_ms, *request.max_jitter_ms));
    } else {
      sink.pass("max-jitter",
                util::format("%.1fms", *summary.mean_jitter_ms));
    }
  }

  // The strategy's objective itself needs a usable metric.
  if (!strategy.score_path(summary, request, context).has_value()) {
    sink.fail("objective-data", strategy.missing_data_reason(request));
  } else {
    sink.pass("objective-data");
  }
  return report;
}

// ---- registry -----------------------------------------------------------

util::Status StrategyRegistry::add(std::string key, Entry entry) {
  if (key.empty()) {
    return util::Error{ErrorCode::kInvalidArgument, "empty strategy key"};
  }
  if (!entry.factory) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "strategy " + key + " has no factory"};
  }
  if (find(key) != nullptr) {
    return util::Error{ErrorCode::kConflict,
                       "strategy already registered: " + key};
  }
  entries_.emplace_back(std::move(key), std::move(entry));
  return {};
}

const StrategyRegistry::Entry* StrategyRegistry::find(
    std::string_view key) const noexcept {
  for (const auto& [name, entry] : entries_) {
    if (name == key) return &entry;
  }
  return nullptr;
}

std::vector<std::string> StrategyRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

namespace {

/// kInt and kDouble knobs accept any number; everything else is strict.
bool knob_type_matches(util::Value::Type declared, const Value& value) {
  if (declared == Value::Type::kInt || declared == Value::Type::kDouble) {
    return value.is_number();
  }
  return value.type() == declared;
}

const char* knob_type_name(util::Value::Type type) {
  switch (type) {
    case Value::Type::kBool: return "bool";
    case Value::Type::kInt: return "int";
    case Value::Type::kDouble: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
    case Value::Type::kNull: return "null";
  }
  return "?";
}

}  // namespace

Result<std::unique_ptr<PathSelectionStrategy>> StrategyRegistry::create(
    std::string_view key, const JsonObject& knobs) const {
  const Entry* entry = find(key);
  if (entry == nullptr) {
    return util::Error{ErrorCode::kNotFound,
                       "unknown strategy: " + std::string(key) +
                           " (known: " + util::join(keys(), ", ") + ")"};
  }

  // Validate the supplied knobs against the schema and fill defaults.
  JsonObject merged;
  for (const KnobSpec& spec : entry->knobs) {
    const Value* supplied = knobs.find(spec.name);
    if (supplied == nullptr) {
      merged.set(spec.name, spec.default_value);
      continue;
    }
    if (!knob_type_matches(spec.type, *supplied)) {
      return util::Error{
          ErrorCode::kInvalidArgument,
          "strategy " + std::string(key) + " knob " + spec.name +
              " expects " + knob_type_name(spec.type) + ", got " +
              supplied->type_name()};
    }
    merged.set(spec.name, *supplied);
  }
  for (const auto& [name, value] : knobs) {
    if (std::none_of(entry->knobs.begin(), entry->knobs.end(),
                     [&](const KnobSpec& spec) { return spec.name == name; })) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "strategy " + std::string(key) +
                             " has no knob named " + name};
    }
  }

  std::unique_ptr<PathSelectionStrategy> strategy = entry->factory(merged);
  if (strategy == nullptr) {
    // Factories return null to veto knob *values* the schema's type check
    // cannot express (e.g. an unknown statistic name).
    return util::Error{ErrorCode::kInvalidArgument,
                       "strategy " + std::string(key) + " rejected its knobs"};
  }
  return strategy;
}

util::Value StrategyRegistry::knob_schema(std::string_view key) const {
  const Entry* entry = find(key);
  if (entry == nullptr) return Value();
  JsonObject schema;
  for (const KnobSpec& spec : entry->knobs) {
    JsonObject knob;
    knob.set("type", Value(knob_type_name(spec.type)));
    knob.set("default", spec.default_value);
    knob.set("description", Value(spec.description));
    schema.set(spec.name, Value(std::move(knob)));
  }
  return Value(std::move(schema));
}

}  // namespace upin::select
