// strategy.hpp — pluggable path-selection strategies.
//
// The paper's §6 selection pipeline is one fixed objective; the strategy
// lab makes selection policies first-class: a PathSelectionStrategy maps
// (summaries, request, context) to a Selection, and a string-keyed
// StrategyRegistry creates strategies from factories with per-strategy
// JSON knob schemas.  Every strategy enforces the request's hard
// constraints (performance bounds + sovereignty, the axiomatic
// invariants) identically; they differ in how the admitted survivors are
// scored and ordered.
//
// Shipped strategies:
//   paper-objective   — the paper's §6 pipeline, bit-identical to the
//                       pre-registry PathSelector::select
//   latency-greedy    — a configurable latency box statistic, nothing else
//   loss-averse       — loss first, latency/jitter as smooth penalties
//   geo-constrained   — sovereignty hard filter + great-circle geography
//   disjointness-max  — greedy hop-set anti-affinity over the best paths
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "select/request.hpp"
#include "select/types.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace upin::scion {
class ControlPlane;
class Topology;
}  // namespace upin::scion

namespace upin::util {
class VirtualClock;
}  // namespace upin::util

namespace upin::select {

/// Environment a strategy ranks in: AS metadata for sovereignty and
/// geography, plus optional control-plane liveness.  All pointers are
/// borrowed and may be null (null topology disables sovereignty and
/// geography; null control plane disables liveness rejection).
struct SelectionContext {
  const scion::Topology* topology = nullptr;
  const scion::ControlPlane* control_plane = nullptr;
  const util::VirtualClock* clock = nullptr;  ///< required with control_plane
};

/// A path-selection policy.  `rank` is the full pipeline (admission +
/// scoring + ordering); `score_path` exposes the per-path objective score
/// (lower = better, nullopt when the path lacks the data the strategy
/// needs) for explain traces and multipath weighting.
class PathSelectionStrategy {
 public:
  virtual ~PathSelectionStrategy() = default;

  [[nodiscard]] virtual std::string_view key() const noexcept = 0;

  [[nodiscard]] virtual Selection rank(std::span<const PathSummary> paths,
                                       const UserRequest& request,
                                       const SelectionContext& context) const = 0;

  [[nodiscard]] virtual std::optional<double> score_path(
      const PathSummary& summary, const UserRequest& request,
      const SelectionContext& context) const = 0;

  /// Rejection text when `score_path` has no data for a path.  The paper
  /// strategy overrides this to keep its legacy wording bit-identical.
  [[nodiscard]] virtual std::string missing_data_reason(
      const UserRequest& request) const;
};

/// Declared knob of a strategy (the JSON schema entry).  Knob values are
/// validated against `type` (kInt also accepts being read as a double
/// knob and vice versa — numbers are interchangeable).
struct KnobSpec {
  std::string name;
  util::Value::Type type = util::Value::Type::kDouble;
  util::Value default_value;
  std::string description;
};

/// String-keyed registry of strategy factories.  `global()` comes
/// pre-populated with the five shipped strategies; workloads register
/// their own with `add`.  Registration is not thread-safe; `create` and
/// the read accessors are (they never mutate).
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PathSelectionStrategy>(
      const util::JsonObject& knobs)>;

  struct Entry {
    std::string description;
    std::vector<KnobSpec> knobs;
    Factory factory;
  };

  /// The process-wide registry with the built-in strategies.
  [[nodiscard]] static StrategyRegistry& global();

  /// Register a strategy; kConflict on a duplicate key, kInvalidArgument
  /// on an empty key or missing factory.
  util::Status add(std::string key, Entry entry);

  /// Instantiate `key` with `knobs` validated against its schema:
  /// unknown knob names and type mismatches are kInvalidArgument;
  /// unspecified knobs take their declared defaults.
  [[nodiscard]] util::Result<std::unique_ptr<PathSelectionStrategy>> create(
      std::string_view key, const util::JsonObject& knobs = {}) const;

  [[nodiscard]] const Entry* find(std::string_view key) const noexcept;

  /// Registered keys in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// JSON schema of a strategy's knobs: `{knob: {type, default,
  /// description}}`, or null for an unknown key.
  [[nodiscard]] util::Value knob_schema(std::string_view key) const;

 private:
  std::vector<std::pair<std::string, Entry>> entries_;
};

// Registry keys of the shipped strategies.
inline constexpr std::string_view kPaperObjective = "paper-objective";
inline constexpr std::string_view kLatencyGreedy = "latency-greedy";
inline constexpr std::string_view kLossAverse = "loss-averse";
inline constexpr std::string_view kGeoConstrained = "geo-constrained";
inline constexpr std::string_view kDisjointnessMax = "disjointness-max";

/// The bandwidth figure the request's constraint and objective refer to:
/// the MTU columns by default, the packet-size-aware lookup when the
/// request sets `bw_probe_bytes`.
[[nodiscard]] std::optional<double> request_bandwidth(
    const PathSummary& summary, const UserRequest& request);

/// The paper's §6 objective score (lower = better) — what the legacy
/// `PathSelector::score` computed.
[[nodiscard]] std::optional<double> paper_objective_score(
    const PathSummary& summary, const UserRequest& request);

/// Admission outcome for one path under one strategy: the first failed
/// constraint's detail (nullopt when admissible) plus every evaluated
/// verdict, in evaluation order, for explain traces.
struct AdmissionReport {
  std::optional<std::string> rejection;
  std::vector<ConstraintVerdict> verdicts;
};

/// Evaluate the request's hard constraints (shared by every strategy —
/// the sovereignty filter is an invariant, not a preference) plus the
/// strategy's own data requirement.
[[nodiscard]] AdmissionReport check_admission(
    const PathSummary& summary, const UserRequest& request,
    const SelectionContext& context, const PathSelectionStrategy& strategy);

}  // namespace upin::select
