#include "select/types.hpp"

namespace upin::select {

using util::JsonObject;
using util::Value;

std::optional<double> PathSummary::bandwidth(BwDirection direction,
                                             double packet_bytes) const {
  const std::optional<double>& at_64 = direction == BwDirection::kDownstream
                                           ? mean_bw_down_64
                                           : mean_bw_up_64;
  const std::optional<double>& at_mtu = direction == BwDirection::kDownstream
                                            ? mean_bw_down_mtu
                                            : mean_bw_up_mtu;
  // Nearest measured packet size wins; the cutoff is the midpoint between
  // the probe size (64 B) and the path MTU.  A summary without MTU
  // metadata (synthetic tests) treats anything above 64 B as MTU-sized.
  const double cutoff = (64.0 + std::max(mtu, 64.0)) / 2.0;
  const bool prefer_64 = packet_bytes <= cutoff;
  if (prefer_64) return at_64.has_value() ? at_64 : at_mtu;
  return at_mtu.has_value() ? at_mtu : at_64;
}

util::Value Selection::explain() const {
  JsonObject root;
  root.set("strategy", Value(strategy));
  root.set("request", Value(request_description));

  Value::Array admitted;
  admitted.reserve(ranked.size());
  for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
    const RankedPath& path = ranked[rank];
    JsonObject entry;
    entry.set("path_id", Value(path.summary.path_id));
    entry.set("rank", Value(rank));
    entry.set("score", Value(path.score));
    entry.set("rationale", Value(path.rationale));
    if (!path.terms.empty()) {
      JsonObject terms;
      for (const ScoreTerm& term : path.terms) {
        terms.set(term.name, Value(term.value));
      }
      entry.set("score_terms", Value(std::move(terms)));
    }
    admitted.push_back(Value(std::move(entry)));
  }
  root.set("admitted", Value(std::move(admitted)));

  Value::Array dropped;
  dropped.reserve(rejected_detail.size());
  for (const RejectedPath& path : rejected_detail) {
    JsonObject entry;
    entry.set("path_id", Value(path.path_id));
    entry.set("reason", Value(path.reason));
    Value::Array verdicts;
    verdicts.reserve(path.verdicts.size());
    for (const ConstraintVerdict& verdict : path.verdicts) {
      JsonObject row;
      row.set("constraint", Value(verdict.constraint));
      row.set("passed", Value(verdict.passed));
      if (!verdict.detail.empty()) row.set("detail", Value(verdict.detail));
      verdicts.push_back(Value(std::move(row)));
    }
    entry.set("verdicts", Value(std::move(verdicts)));
    dropped.push_back(Value(std::move(entry)));
  }
  root.set("rejected", Value(std::move(dropped)));
  return Value(std::move(root));
}

}  // namespace upin::select
