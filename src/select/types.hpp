// types.hpp — the data model of the selection layer.
//
// PathSummary aggregates one path's measurement history; a strategy maps
// summaries to a Selection: admitted paths ranked under the strategy's
// objective plus the reasons the inadmissible ones were rejected (the
// transparency requirement of UPIN).  Every admission decision is also
// kept as structured per-constraint verdicts so `Selection::explain()`
// can render the full decision trace as JSON, mirroring docdb's
// `explain()`.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "scion/isd_asn.hpp"
#include "select/request.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace upin::select {

/// Aggregated view of one path's measurement history.
struct PathSummary {
  std::string path_id;
  int server_id = 0;
  std::string sequence;
  std::vector<scion::IsdAsn> hops;
  std::size_t hop_count = 0;
  std::vector<std::int64_t> isds;
  double mtu = 0.0;

  std::size_t samples = 0;          ///< total paths_stats documents
  std::size_t latency_samples = 0;  ///< documents with a latency reading
  std::optional<util::BoxStats> latency_ms;  ///< set when any probe answered
  double mean_loss_pct = 0.0;
  std::optional<double> mean_jitter_ms;
  std::optional<double> mean_bw_down_mtu;
  std::optional<double> mean_bw_up_mtu;
  std::optional<double> mean_bw_down_64;
  std::optional<double> mean_bw_up_64;

  /// The bandwidth figure a request's direction refers to (MTU packets).
  [[nodiscard]] std::optional<double> bandwidth(BwDirection direction) const {
    return direction == BwDirection::kDownstream ? mean_bw_down_mtu
                                                 : mean_bw_up_mtu;
  }

  /// Packet-size-aware bandwidth lookup: picks the measured column
  /// (64-byte probes vs MTU-sized packets) nearest to `packet_bytes`,
  /// falling back to the other column when the preferred one has no
  /// samples.  The campaign measures both (§4.1.1); small-packet flows
  /// should be judged against the 64 B figures.
  [[nodiscard]] std::optional<double> bandwidth(BwDirection direction,
                                                double packet_bytes) const;
};

/// One named component of a strategy's score (for explain traces).
struct ScoreTerm {
  std::string name;
  double value = 0.0;
};

/// A selected path with its score (lower = better) and the explanation.
struct RankedPath {
  PathSummary summary;
  double score = 0.0;
  std::string rationale;
  std::vector<ScoreTerm> terms;  ///< per-strategy score decomposition
};

/// Verdict of one admission constraint against one path.
struct ConstraintVerdict {
  std::string constraint;  ///< e.g. "min-samples", "sovereignty"
  bool passed = true;
  std::string detail;      ///< human-readable evidence
};

/// A rejected path with the full per-constraint record.
struct RejectedPath {
  std::string path_id;
  std::string reason;  ///< the first failed constraint's detail
  std::vector<ConstraintVerdict> verdicts;
};

/// Outcome of a selection: ranked admissible paths plus the reasons the
/// inadmissible ones were rejected (transparency requirement of UPIN).
struct Selection {
  std::string strategy;             ///< registry key that produced this
  std::string request_description;  ///< UserRequest::describe() snapshot
  std::vector<RankedPath> ranked;
  std::vector<std::pair<std::string, std::string>> rejected;  ///< path_id, why
  std::vector<RejectedPath> rejected_detail;  ///< same paths, full verdicts

  /// JSON decision trace: admitted paths with per-strategy score terms,
  /// rejected paths with per-constraint verdicts.
  [[nodiscard]] util::Value explain() const;
};

}  // namespace upin::select
