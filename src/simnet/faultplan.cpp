#include "simnet/faultplan.hpp"

#include "obs/metrics.hpp"

namespace upin::simnet {

using util::Rng;
using util::SimTime;

namespace {

/// Activation counters: how often each fault class actually intercepted
/// an operation (a scheduled window that no probe lands in counts zero).
/// Lets a run's metric dump answer "was the breaker reacting to injected
/// faults or to a bug?" without replaying the schedule.
struct FaultMetrics {
  obs::Counter& server_down;
  obs::Counter& slow_responder;
  obs::Counter& link_flap;
  obs::Counter& garbled;

  static FaultMetrics& get() {
    static FaultMetrics metrics{
        obs::Registry::global().counter(
            "upin_simnet_fault_server_down_hits_total"),
        obs::Registry::global().counter("upin_simnet_fault_slow_hits_total"),
        obs::Registry::global().counter(
            "upin_simnet_fault_link_flap_hits_total"),
        obs::Registry::global().counter("upin_simnet_fault_garbled_hits_total"),
    };
    return metrics;
  }
};

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed, FaultPlanConfig config)
    : config_(config), master_(seed) {}

std::vector<FaultWindow> FaultPlan::schedule(const std::string& stream,
                                             double per_hour, double min_s,
                                             double max_s) const {
  std::vector<FaultWindow> windows;
  if (per_hour <= 0.0 || config_.horizon_s <= 0.0) return windows;
  // Poisson arrivals: exponential gaps with mean 3600/per_hour, each
  // episode lasting uniform [min_s, max_s].  Regenerated per query from
  // the stream label alone, so the schedule is independent of whatever
  // else consumed randomness.
  Rng rng = master_.fork(stream);
  const double rate_per_s = per_hour / 3600.0;
  double t = 0.0;
  while (true) {
    t += rng.exponential(rate_per_s);
    if (t >= config_.horizon_s) break;
    const double duration = rng.uniform(min_s, max_s);
    FaultWindow window;
    window.start = util::sim_seconds(t);
    window.end = util::sim_seconds(t + duration);
    windows.push_back(window);
    t += duration;
  }
  return windows;
}

bool FaultPlan::covers(const std::vector<FaultWindow>& windows,
                       SimTime t) noexcept {
  for (const FaultWindow& window : windows) {
    if (t >= window.start && t < window.end) return true;
  }
  return false;
}

std::vector<FaultWindow> FaultPlan::server_down_windows(
    std::uint32_t node) const {
  return schedule("fault:down:" + std::to_string(node),
                  config_.server_down_per_hour, config_.server_down_min_s,
                  config_.server_down_max_s);
}

std::vector<FaultWindow> FaultPlan::slow_windows(std::uint32_t node) const {
  return schedule("fault:slow:" + std::to_string(node), config_.slow_per_hour,
                  config_.slow_min_s, config_.slow_max_s);
}

std::vector<FaultWindow> FaultPlan::link_flap_windows(std::uint32_t from,
                                                      std::uint32_t to) const {
  return schedule(
      "fault:flap:" + std::to_string(from) + ">" + std::to_string(to),
      config_.link_flap_per_hour, config_.link_flap_min_s,
      config_.link_flap_max_s);
}

bool FaultPlan::server_down(std::uint32_t node, SimTime t) const {
  if (config_.server_down_per_hour <= 0.0) return false;
  const bool hit = covers(server_down_windows(node), t);
  if (hit) FaultMetrics::get().server_down.add();
  return hit;
}

bool FaultPlan::slow_responder(std::uint32_t node, SimTime t) const {
  if (config_.slow_per_hour <= 0.0) return false;
  const bool hit = covers(slow_windows(node), t);
  if (hit) FaultMetrics::get().slow_responder.add();
  return hit;
}

bool FaultPlan::link_flapped(std::uint32_t from, std::uint32_t to,
                             SimTime t) const {
  if (config_.link_flap_per_hour <= 0.0) return false;
  const bool hit = covers(link_flap_windows(from, to), t);
  if (hit) FaultMetrics::get().link_flap.add();
  return hit;
}

bool FaultPlan::garbled(std::string_view op_label, SimTime t) const {
  if (config_.garble_prob <= 0.0) return false;
  Rng rng = master_.fork("fault:garble:" + std::string(op_label) + ":" +
                         std::to_string(t.count()));
  const bool hit = rng.bernoulli(config_.garble_prob);
  if (hit) FaultMetrics::get().garbled.add();
  return hit;
}

}  // namespace upin::simnet
