// faultplan.hpp — deterministic fault injection for the simulated testbed.
//
// The paper's test suite is explicitly engineered for a fallible network
// (§4.1.2: servers go down, answer slowly, or answer with garbage), but
// the base Network only models *probabilistic* loss plus bench-staged
// outage windows.  A FaultPlan layers scheduled fault episodes on top:
//
//   * server-down windows   — a destination AS is dark; operations
//                             targeting it fail with kUnreachable;
//   * link flaps            — a directed link drops every frame for the
//                             duration of the flap (100 % loss);
//   * slow-responder windows — the destination answers, but too slowly;
//                             operations time out (kTimeout);
//   * garbled responses     — a per-operation chance the server replies
//                             with an unparseable answer (kBadResponse).
//
// Every episode schedule is forked from (seed, entity label) and every
// per-operation draw from (seed, operation label, virtual time), so a
// campaign under faults is bit-reproducible and any single operation's
// outcome can be replayed in isolation — the property the measure layer's
// crash-safe resume depends on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace upin::simnet {

/// One scheduled fault episode in virtual time.
struct FaultWindow {
  util::SimTime start{};
  util::SimTime end{};
};

/// Knobs for the injected fault classes.  All rates default to zero, so a
/// default-constructed plan injects nothing and the base model is
/// unchanged.
struct FaultPlanConfig {
  double horizon_s = 24.0 * 3600.0;  ///< schedule episodes within [0, horizon)

  double server_down_per_hour = 0.0;  ///< mean down episodes per node per hour
  double server_down_min_s = 30.0;
  double server_down_max_s = 300.0;

  double link_flap_per_hour = 0.0;  ///< mean flaps per directed link per hour
  double link_flap_min_s = 5.0;
  double link_flap_max_s = 60.0;

  double slow_per_hour = 0.0;  ///< mean slow-responder episodes per node per hour
  double slow_min_s = 10.0;
  double slow_max_s = 120.0;

  double garble_prob = 0.0;  ///< per-operation garbled-response probability

  /// Any fault class enabled?
  [[nodiscard]] bool any() const noexcept {
    return server_down_per_hour > 0.0 || link_flap_per_hour > 0.0 ||
           slow_per_hour > 0.0 || garble_prob > 0.0;
  }
};

/// A reproducible schedule of fault episodes, queried by the Network at
/// measurement time.  Thread-safe: all queries are pure functions of
/// (seed, config, arguments).
class FaultPlan {
 public:
  FaultPlan() = default;  ///< inert plan, injects nothing
  FaultPlan(std::uint64_t seed, FaultPlanConfig config);

  [[nodiscard]] bool active() const noexcept { return config_.any(); }
  [[nodiscard]] const FaultPlanConfig& config() const noexcept { return config_; }

  /// Is node `node` inside a server-down episode at `t`?
  [[nodiscard]] bool server_down(std::uint32_t node, util::SimTime t) const;

  /// Is node `node` inside a slow-responder episode at `t`?
  [[nodiscard]] bool slow_responder(std::uint32_t node, util::SimTime t) const;

  /// Is the directed link (from, to) flapped at `t`?
  [[nodiscard]] bool link_flapped(std::uint32_t from, std::uint32_t to,
                                  util::SimTime t) const;

  /// Per-operation garbled-response draw, keyed by the operation label and
  /// its virtual start time (re-attempts at a later time redraw).
  [[nodiscard]] bool garbled(std::string_view op_label, util::SimTime t) const;

  /// The full episode schedule for an entity stream — exposed so tests
  /// and benches can reconcile observed failures against injected faults.
  [[nodiscard]] std::vector<FaultWindow> server_down_windows(
      std::uint32_t node) const;
  [[nodiscard]] std::vector<FaultWindow> slow_windows(std::uint32_t node) const;
  [[nodiscard]] std::vector<FaultWindow> link_flap_windows(
      std::uint32_t from, std::uint32_t to) const;

 private:
  [[nodiscard]] std::vector<FaultWindow> schedule(const std::string& stream,
                                                  double per_hour, double min_s,
                                                  double max_s) const;
  [[nodiscard]] static bool covers(const std::vector<FaultWindow>& windows,
                                   util::SimTime t) noexcept;

  FaultPlanConfig config_{};
  util::Rng master_{0};
};

}  // namespace upin::simnet
