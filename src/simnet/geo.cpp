#include "simnet/geo.hpp"

#include <cmath>

namespace upin::simnet {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFibreSpeedKmPerMs = 299792.458 / 1000.0 * (2.0 / 3.0);
constexpr double kRouteStretch = 1.2;  // cable routes exceed great circles
}  // namespace

double haversine_km(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = a.lat_deg * kPi / 180.0;
  const double lat2 = b.lat_deg * kPi / 180.0;
  const double dlat = lat2 - lat1;
  const double dlon = (b.lon_deg - a.lon_deg) * kPi / 180.0;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

util::SimDuration propagation_delay(double km) noexcept {
  const double ms = km * kRouteStretch / kFibreSpeedKmPerMs;
  return util::sim_millis(ms);
}

}  // namespace upin::simnet
