// geo.hpp — geography for latency modelling.
//
// The paper's central latency finding (§6.1) is that physical distance
// between hops, not hop count or ISD membership, dominates path latency.
// We therefore derive link propagation delays from real great-circle
// distances between AS locations.
#pragma once

#include "util/clock.hpp"

namespace upin::simnet {

/// A point on Earth in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine).
[[nodiscard]] double haversine_km(GeoPoint a, GeoPoint b) noexcept;

/// One-way propagation delay over `km` of fibre: light travels at roughly
/// 2/3 c in glass, and real routes are ~20% longer than the great circle.
[[nodiscard]] util::SimDuration propagation_delay(double km) noexcept;

}  // namespace upin::simnet
