#include "simnet/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace upin::simnet {

using util::ErrorCode;
using util::Result;
using util::Rng;
using util::SimDuration;
using util::SimTime;
using util::Status;

// ----------------------------------------------------------------- PingStats

std::size_t PingStats::lost() const noexcept {
  std::size_t lost_count = 0;
  for (const auto& rtt : rtt_ms) {
    if (!rtt.has_value()) ++lost_count;
  }
  return lost_count;
}

double PingStats::loss_pct() const noexcept {
  if (rtt_ms.empty()) return 0.0;
  return 100.0 * static_cast<double>(lost()) /
         static_cast<double>(rtt_ms.size());
}

namespace {

std::vector<double> delivered(const PingStats& stats) {
  std::vector<double> values;
  values.reserve(stats.rtt_ms.size());
  for (const auto& rtt : stats.rtt_ms) {
    if (rtt.has_value()) values.push_back(*rtt);
  }
  return values;
}

}  // namespace

std::optional<double> PingStats::avg_ms() const noexcept {
  const std::vector<double> values = delivered(*this);
  if (values.empty()) return std::nullopt;
  return util::mean(values);
}

std::optional<double> PingStats::min_ms() const noexcept {
  const std::vector<double> values = delivered(*this);
  if (values.empty()) return std::nullopt;
  return *std::min_element(values.begin(), values.end());
}

std::optional<double> PingStats::max_ms() const noexcept {
  const std::vector<double> values = delivered(*this);
  if (values.empty()) return std::nullopt;
  return *std::max_element(values.begin(), values.end());
}

std::optional<double> PingStats::stddev_ms() const noexcept {
  const std::vector<double> values = delivered(*this);
  if (values.size() < 2) return std::nullopt;
  return util::stddev(values);
}

// ------------------------------------------------------------------- Network

namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

std::uint64_t endpoint_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// Wire footprint and pacing of a constant-rate flow — the sender-side
/// half of the bwtest model, shared by the single- and multi-flow paths
/// so both compute identical loads.
struct WirePlan {
  int frames = 1;            ///< underlay frames per application packet
  double wire_bytes = 0.0;   ///< bytes on the wire per application packet
  double pps_effective = 0.0;
  double attempted_mbps = 0.0;
  double wire_mbps = 0.0;
};

WirePlan wire_plan(const BwtestOptions& options, const NetworkConfig& config) {
  WirePlan plan;

  // Wire footprint of one application packet.
  const double scion_packet_bytes =
      options.packet_bytes + config.scion_header_bytes;
  const double frame_capacity = config.underlay_mtu - config.underlay_header_bytes;
  if (config.fragmentation_enabled) {
    plan.frames =
        static_cast<int>(std::ceil(scion_packet_bytes / frame_capacity));
    plan.frames = std::max(plan.frames, 1);
  }
  plan.wire_bytes = scion_packet_bytes +
                    static_cast<double>(plan.frames) * config.underlay_header_bytes;

  // Sender pacing: the VM cannot exceed its packets-per-second budget.
  const double pps_target =
      options.target_mbps * 1e6 / 8.0 / options.packet_bytes;
  plan.pps_effective = std::min(pps_target, config.sender_pps_cap);
  plan.attempted_mbps = plan.pps_effective * options.packet_bytes * 8.0 / 1e6;
  plan.wire_mbps = plan.pps_effective * plan.wire_bytes * 8.0 / 1e6;
  return plan;
}

}  // namespace

Network::Network(std::uint64_t seed, NetworkConfig config)
    : config_(config),
      master_(seed),
      // The fault schedule forks off the same experiment seed (under a
      // fixed label) so identically-seeded replicas see identical faults.
      faults_(seed ^ util::fnv1a64("faultplan"), config.faults) {}

NodeId Network::add_node(NodeSpec spec) {
  nodes_.push_back(std::move(spec));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<LinkId> Network::add_link(LinkSpec spec) {
  if (spec.from >= nodes_.size() || spec.to >= nodes_.size()) {
    return util::Error{ErrorCode::kInvalidArgument, "link endpoint unknown"};
  }
  if (spec.from == spec.to) {
    return util::Error{ErrorCode::kInvalidArgument, "self-link not allowed"};
  }
  const std::uint64_t key = endpoint_key(spec.from, spec.to);
  if (by_endpoints_.contains(key)) {
    return util::Error{ErrorCode::kConflict, "duplicate link"};
  }
  if (!spec.propagation.has_value()) {
    const double km =
        haversine_km(nodes_[spec.from].location, nodes_[spec.to].location);
    spec.propagation = propagation_delay(km);
  }
  links_.push_back(spec);
  const auto id = static_cast<LinkId>(links_.size() - 1);
  by_endpoints_.emplace(key, id);
  return id;
}

Status Network::add_duplex(NodeId a, NodeId b, double capacity_ab_mbps,
                           double capacity_ba_mbps, double util_base) {
  LinkSpec forward;
  forward.from = a;
  forward.to = b;
  forward.capacity_mbps = capacity_ab_mbps;
  forward.util_base = util_base;
  LinkSpec backward = forward;
  backward.from = b;
  backward.to = a;
  backward.capacity_mbps = capacity_ba_mbps;

  const Result<LinkId> first = add_link(forward);
  if (!first.ok()) return Status(first.error());
  const Result<LinkId> second = add_link(backward);
  if (!second.ok()) return Status(second.error());
  return Status::success();
}

void Network::add_outage(OutageWindow window) {
  outages_.push_back(window);
}

std::optional<NodeId> Network::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

const LinkSpec* Network::find_link(NodeId from, NodeId to) const {
  const auto it = by_endpoints_.find(endpoint_key(from, to));
  if (it == by_endpoints_.end()) return nullptr;
  return &links_[it->second];
}

SimDuration Network::link_propagation(NodeId from, NodeId to) const {
  const LinkSpec* link = find_link(from, to);
  if (link == nullptr || !link->propagation.has_value()) return SimDuration::zero();
  return *link->propagation;
}

std::string Network::route_label(const std::vector<NodeId>& route) {
  std::string label;
  for (const NodeId node : route) {
    label += std::to_string(node);
    label.push_back('-');
  }
  return label;
}

double Network::utilization(NodeId from, NodeId to, SimTime t) const {
  const LinkSpec* link = find_link(from, to);
  if (link == nullptr) return 0.0;
  const std::string label =
      std::to_string(from) + ">" + std::to_string(to);
  const double phase =
      static_cast<double>(util::fnv1a64(label) % 10'000) / 10'000.0 * kTwoPi;
  const double seconds = util::to_seconds(t);
  const double wave =
      link->util_amplitude * std::sin(kTwoPi * seconds / link->util_period_s + phase);
  // Per-minute noise bucket, stable across repeated queries.
  const auto bucket = static_cast<std::int64_t>(seconds / 60.0);
  Rng noise_rng = master_.fork("util:" + label + ":" + std::to_string(bucket));
  const double noise = noise_rng.normal(0.0, 0.05);
  return std::clamp(link->util_base + wave + noise, 0.0, 0.97);
}

double Network::frame_loss(NodeId from, NodeId to, SimTime t) const {
  const LinkSpec* link = find_link(from, to);
  if (link == nullptr) return 1.0;
  // An injected link flap drops every frame for the episode's duration.
  if (faults_.link_flapped(from, to, t)) return 1.0;
  double loss = link->base_loss;

  // Micro-congestion: some 10-second windows on some links lose a visible
  // fraction of frames (the paper's occasional ~10% loss readings, §6.3).
  const std::string label = std::to_string(from) + ">" + std::to_string(to);
  const auto bucket = static_cast<std::int64_t>(util::to_seconds(t) / 10.0);
  Rng bucket_rng = master_.fork("cong:" + label + ":" + std::to_string(bucket));
  if (bucket_rng.bernoulli(config_.micro_congestion_prob)) {
    loss += bucket_rng.uniform(config_.micro_congestion_loss_min,
                               config_.micro_congestion_loss_max);
  }

  // Heavily utilized links shed additional frames.
  const double util = utilization(from, to, t);
  if (util > config_.congested_util_threshold) {
    loss += (util - config_.congested_util_threshold) * 2.0;
  }
  return std::clamp(loss, 0.0, 1.0);
}

double Network::outage_drop(NodeId node, SimTime t) const {
  double drop = 0.0;
  for (const OutageWindow& window : outages_) {
    if (window.node == node && t >= window.start && t < window.end) {
      drop = std::max(drop, window.drop_prob);
    }
  }
  return drop;
}

Result<Network::RouteLinks> Network::resolve(
    const std::vector<NodeId>& route) const {
  if (route.size() < 2) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "route needs at least two nodes"};
  }
  RouteLinks resolved;
  resolved.links.reserve(route.size() - 1);
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (route[i] >= nodes_.size() || route[i + 1] >= nodes_.size()) {
      return util::Error{ErrorCode::kInvalidArgument, "route node unknown"};
    }
    const LinkSpec* link = find_link(route[i], route[i + 1]);
    if (link == nullptr) {
      return util::Error{ErrorCode::kInvalidArgument,
                         "no link " + nodes_[route[i]].name + " -> " +
                             nodes_[route[i + 1]].name};
    }
    resolved.links.push_back(link);
  }
  return resolved;
}

double Network::one_way_ms(const RouteLinks& route_links,
                           const std::vector<NodeId>& route, SimTime t,
                           Rng& rng) const {
  double total_ms = 0.0;
  for (std::size_t i = 0; i < route_links.links.size(); ++i) {
    const LinkSpec& link = *route_links.links[i];
    total_ms += util::to_millis(link.propagation.value_or(SimDuration::zero()));
    // Forwarding cost and queueing jitter at the receiving node.
    const NodeSpec& hop = nodes_[route[i + 1]];
    total_ms += hop.process_ms;
    total_ms += hop.jitter_ms * rng.lognormal(0.0, 0.6);
    // Queueing delay on the link, superlinear in background utilization.
    const double util = utilization(route[i], route[i + 1], t);
    total_ms += util * util * util * 4.0 * rng.lognormal(0.0, 0.8);
  }
  return total_ms;
}

bool Network::frame_survives(const RouteLinks& route_links,
                             const std::vector<NodeId>& route, SimTime t,
                             Rng& rng) const {
  for (std::size_t i = 0; i < route_links.links.size(); ++i) {
    const NodeId from = route[i];
    const NodeId to = route[i + 1];
    if (rng.bernoulli(frame_loss(from, to, t))) return false;
    if (rng.bernoulli(outage_drop(to, t))) return false;
  }
  return true;
}

Result<PingStats> Network::ping(const std::vector<NodeId>& route,
                                const PingOptions& options,
                                SimTime start) const {
  const Result<RouteLinks> forward = resolve(route);
  if (!forward.ok()) return Result<PingStats>(forward.error());

  std::vector<NodeId> reverse_route(route.rbegin(), route.rend());
  const Result<RouteLinks> backward = resolve(reverse_route);
  if (!backward.ok()) return Result<PingStats>(backward.error());

  // Injected destination faults (§4.1.2 fault classes), checked at the
  // operation's start time: a dark server refuses outright, a slow one
  // exhausts the probe timeout, a garbling one answers unparseably.
  if (faults_.active()) {
    const NodeId destination = route.back();
    if (faults_.server_down(destination, start)) {
      return util::Error{ErrorCode::kUnreachable,
                         "injected fault: destination server down"};
    }
    if (faults_.slow_responder(destination, start)) {
      return util::Error{ErrorCode::kTimeout,
                         "injected fault: destination responding too slowly"};
    }
    if (faults_.garbled("ping:" + route_label(route), start)) {
      return util::Error{ErrorCode::kBadResponse,
                         "injected fault: garbled echo response"};
    }
  }

  PingStats stats;
  stats.rtt_ms.reserve(options.count);
  const std::string label = route_label(route);
  for (std::size_t i = 0; i < options.count; ++i) {
    const SimTime t = start + options.interval * static_cast<std::int64_t>(i);
    Rng rng = master_.fork("ping:" + label + ":" + std::to_string(t.count()));
    const bool delivered_fwd = frame_survives(forward.value(), route, t, rng);
    const bool delivered_bwd =
        delivered_fwd && frame_survives(backward.value(), reverse_route, t, rng);
    if (!delivered_fwd || !delivered_bwd) {
      stats.rtt_ms.push_back(std::nullopt);
      continue;
    }
    const double rtt = one_way_ms(forward.value(), route, t, rng) +
                       one_way_ms(backward.value(), reverse_route, t, rng);
    stats.rtt_ms.push_back(rtt);
  }
  return stats;
}

Result<TraceResult> Network::traceroute(const std::vector<NodeId>& route,
                                        SimTime start) const {
  const Result<RouteLinks> resolved = resolve(route);
  if (!resolved.ok()) return Result<TraceResult>(resolved.error());

  TraceResult result;
  const std::string label = route_label(route);
  for (std::size_t hop = 1; hop < route.size(); ++hop) {
    const std::vector<NodeId> prefix(route.begin(),
                                     route.begin() + static_cast<std::ptrdiff_t>(hop) + 1);
    const std::vector<NodeId> reverse_prefix(prefix.rbegin(), prefix.rend());
    const Result<RouteLinks> fwd = resolve(prefix);
    const Result<RouteLinks> bwd = resolve(reverse_prefix);
    TraceHop trace_hop;
    trace_hop.node = route[hop];
    if (fwd.ok() && bwd.ok()) {
      const SimTime t =
          start + util::sim_millis(static_cast<double>(hop) * 50.0);
      Rng rng = master_.fork("trace:" + label + ":" + std::to_string(hop) +
                             ":" + std::to_string(t.count()));
      if (frame_survives(fwd.value(), prefix, t, rng) &&
          frame_survives(bwd.value(), reverse_prefix, t, rng)) {
        trace_hop.rtt_ms = one_way_ms(fwd.value(), prefix, t, rng) +
                           one_way_ms(bwd.value(), reverse_prefix, t, rng);
      }
    }
    result.hops.push_back(trace_hop);
  }
  return result;
}

Result<BwtestResult> Network::bwtest(const std::vector<NodeId>& route,
                                     const BwtestOptions& options,
                                     SimTime start) const {
  return bwtest_loaded(route, options, start, nullptr, 0.0);
}

Result<BwtestResult> Network::bwtest_loaded(
    const std::vector<NodeId>& route, const BwtestOptions& options,
    SimTime start, const std::unordered_map<std::uint64_t, double>* total_wire_mbps,
    double own_wire_mbps) const {
  const Result<RouteLinks> resolved = resolve(route);
  if (!resolved.ok()) return Result<BwtestResult>(resolved.error());
  if (options.packet_bytes < 4.0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "bwtest packet size must be >= 4 bytes"};
  }
  if (options.duration_s <= 0.0 || options.duration_s > 10.0) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "bwtest duration must be in (0, 10] seconds"};
  }

  // Injected destination faults, mirroring the ping checks above.
  if (faults_.active()) {
    const NodeId destination = route.back();
    if (faults_.server_down(destination, start)) {
      return util::Error{ErrorCode::kUnreachable,
                         "injected fault: bwtest server down"};
    }
    if (faults_.slow_responder(destination, start)) {
      return util::Error{ErrorCode::kTimeout,
                         "injected fault: bwtest server responding too slowly"};
    }
    if (faults_.garbled("bwtest:" + route_label(route), start)) {
      return util::Error{ErrorCode::kBadResponse,
                         "injected fault: garbled bwtest response"};
    }
  }

  // Server-side failure (§4.1.2 "Error Messages"): the responder is up
  // but replies with an error; the caller must tolerate it.
  {
    Rng error_rng = master_.fork("bwerr:" + route_label(route) + ":" +
                                 std::to_string(start.count()));
    if (error_rng.bernoulli(config_.server_error_prob)) {
      return util::Error{ErrorCode::kBadResponse,
                         "bwtestserver returned an error"};
    }
  }

  BwtestResult result;

  const WirePlan plan = wire_plan(options, config_);
  const int frames = plan.frames;
  result.attempted_mbps = plan.attempted_mbps;
  const double wire_mbps = plan.wire_mbps;
  const double pps_effective = plan.pps_effective;

  // Per-link frame survival: byte-share under overload plus ambient loss
  // plus outage drops at the receiving node.
  double frame_survival = 1.0;
  double bottleneck_available = std::numeric_limits<double>::infinity();
  const SimTime mid = start + util::sim_seconds(options.duration_s / 2.0);
  for (std::size_t i = 0; i < resolved.value().links.size(); ++i) {
    const LinkSpec& link = *resolved.value().links[i];
    const NodeId from = route[i];
    const NodeId to = route[i + 1];
    const double available =
        link.capacity_mbps * (1.0 - utilization(from, to, mid));
    bottleneck_available = std::min(bottleneck_available, available);
    // Concurrent subflows on this link dilute the share: the flow gets
    // its proportional cut of the headroom.  `cross == 0` (the lone-flow
    // case) reduces to the legacy single-flow formula exactly.
    double cross = 0.0;
    if (total_wire_mbps != nullptr) {
      const auto it = total_wire_mbps->find(endpoint_key(from, to));
      if (it != total_wire_mbps->end()) {
        cross = std::max(0.0, it->second - own_wire_mbps);
      }
    }
    const double share = std::min(1.0, available / (wire_mbps + cross));
    frame_survival *= share;
    frame_survival *= 1.0 - frame_loss(from, to, mid);
    frame_survival *= 1.0 - outage_drop(to, mid);
  }
  frame_survival = std::clamp(frame_survival, 0.0, 1.0);

  // A fragmented packet is delivered only when every frame survives.
  const double packet_survival = std::pow(frame_survival, frames);

  Rng rng = master_.fork("bwtest:" + route_label(route) + ":" +
                         std::to_string(start.count()) + ":" +
                         std::to_string(options.packet_bytes) + ":" +
                         std::to_string(options.target_mbps));
  const double measurement_noise = rng.lognormal(0.0, 0.03);
  result.achieved_mbps = std::min(
      result.attempted_mbps,
      result.attempted_mbps * packet_survival * measurement_noise);
  result.frames_per_packet = frames;
  result.packets_sent =
      static_cast<std::uint64_t>(pps_effective * options.duration_s);
  result.packets_lost = static_cast<std::uint64_t>(
      static_cast<double>(result.packets_sent) * (1.0 - packet_survival));
  result.bottleneck_available_mbps = bottleneck_available;
  return result;
}

Result<MultibwtestOutcome> Network::multibwtest(
    const std::vector<FlowSpec>& flows, SimTime start) const {
  if (flows.empty()) {
    return util::Error{ErrorCode::kInvalidArgument,
                       "multibwtest needs at least one flow"};
  }
  MultibwtestOutcome outcome;
  outcome.flows.resize(flows.size());

  // Dry pass: each flow alone decides whether it sends at all (route
  // validation, injected faults, server-side errors).  Every verdict is
  // label-deterministic, so the loaded re-run below reaches the same one.
  std::vector<bool> sends(flows.size(), false);
  std::vector<double> flow_wire(flows.size(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Result<BwtestResult> dry =
        bwtest_loaded(flows[i].route, flows[i].options, start, nullptr, 0.0);
    if (!dry.ok()) {
      outcome.flows[i].error = dry.error();
      continue;
    }
    sends[i] = true;
    flow_wire[i] = wire_plan(flows[i].options, config_).wire_mbps;
  }

  // Total offered wire load per directed link, plus who crosses it.
  std::unordered_map<std::uint64_t, double> total_wire;
  std::vector<std::uint64_t> link_order;
  std::unordered_map<std::uint64_t, SharedBottleneck> by_link;
  double max_duration_s = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!sends[i]) continue;
    max_duration_s = std::max(max_duration_s, flows[i].options.duration_s);
    for (std::size_t h = 0; h + 1 < flows[i].route.size(); ++h) {
      const std::uint64_t key =
          endpoint_key(flows[i].route[h], flows[i].route[h + 1]);
      const auto [it, inserted] = by_link.try_emplace(key);
      if (inserted) {
        link_order.push_back(key);
        it->second.from = flows[i].route[h];
        it->second.to = flows[i].route[h + 1];
      }
      it->second.flows.push_back(i);
      it->second.offered_wire_mbps += flow_wire[i];
      total_wire[key] += flow_wire[i];
    }
  }

  // Loaded pass: every sending flow against the others' wire load.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!sends[i]) continue;
    Result<BwtestResult> loaded = bwtest_loaded(
        flows[i].route, flows[i].options, start, &total_wire, flow_wire[i]);
    if (!loaded.ok()) {
      outcome.flows[i].error = loaded.error();
      continue;
    }
    outcome.flows[i].ok = true;
    outcome.flows[i].result = std::move(loaded).value();
  }

  // Contention report: links carrying 2+ subflows, headroom at mid-test.
  const SimTime mid = start + util::sim_seconds(max_duration_s / 2.0);
  for (const std::uint64_t key : link_order) {
    SharedBottleneck& bottleneck = by_link.at(key);
    if (bottleneck.flows.size() < 2) continue;
    const LinkSpec* link = find_link(bottleneck.from, bottleneck.to);
    if (link != nullptr) {
      bottleneck.available_mbps =
          link->capacity_mbps *
          (1.0 - utilization(bottleneck.from, bottleneck.to, mid));
    }
    outcome.shared_bottlenecks.push_back(std::move(bottleneck));
  }
  return outcome;
}

}  // namespace upin::simnet
