// network.hpp — stochastic time-indexed network model.
//
// The substrate standing in for the live SCIONLab data plane.  Nodes and
// directed links form a graph; measurements (SCMP-like probes, bwtester-
// like constant-rate flows) are evaluated against time-varying link state:
//
//  * latency    = geography-derived propagation + per-hop processing +
//                 lognormal queueing jitter (per-node jitter scale lets
//                 specific ASes — the paper's Singapore/Ohio — be noisy);
//  * loss       = per-frame base loss + time-bucketed micro-congestion +
//                 injected outage windows (Fig 9's 100 %-loss episode);
//  * bandwidth  = wire-overhead-aware saturation model: a constant-rate
//                 flow of S-byte packets occupies S + header bytes per
//                 packet on the wire, is paced at most `sender_pps_cap`
//                 packets/s, and fragments into multiple underlay frames
//                 when it exceeds the underlay MTU.  Every frame must
//                 survive the bottleneck's byte-share under overload, so
//                 fragmented (MTU-sized) flows collapse quadratically —
//                 reproducing the paper's Fig 7 ordering *and* Fig 8
//                 inversion with one mechanism.
//
// All stochastic draws are forked deterministically from the network seed,
// the route, and the virtual time, so any measurement is reproducible in
// isolation regardless of what ran before it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/faultplan.hpp"
#include "simnet/geo.hpp"
#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace upin::simnet {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// A network element (an AS host / border router in the SCION layer).
struct NodeSpec {
  std::string name;
  GeoPoint location;
  double process_ms = 0.05;  ///< per-hop forwarding latency
  double jitter_ms = 0.15;   ///< queueing jitter scale at this node
};

/// A directed link.  Propagation delay defaults to the geography of its
/// endpoints but can be pinned explicitly (e.g. for tests).
struct LinkSpec {
  NodeId from = 0;
  NodeId to = 0;
  double capacity_mbps = 1000.0;  ///< wire capacity in this direction
  double base_loss = 5e-4;        ///< per-frame loss floor
  double util_base = 0.25;        ///< mean background utilization
  double util_amplitude = 0.15;   ///< diurnal swing of utilization
  double util_period_s = 3600.0;  ///< period of the swing
  std::optional<util::SimDuration> propagation;  ///< override geo delay
};

/// A scheduled degradation: packets crossing `node` between `start` and
/// `end` are dropped with probability `drop_prob` (1.0 = hard outage).
/// This is how benches stage the Fig 9 congestion episode.
struct OutageWindow {
  NodeId node = 0;
  util::SimTime start{};
  util::SimTime end{};
  double drop_prob = 1.0;
};

/// Model-wide constants (tunable for ablations).
struct NetworkConfig {
  double scion_header_bytes = 88.0;    ///< SCION common+address+path headers
  double underlay_header_bytes = 28.0; ///< IP+UDP overlay encapsulation
  double underlay_mtu = 1500.0;        ///< bytes per underlay frame
  double sender_pps_cap = 60'000.0;    ///< end-host packet pacing limit
  bool fragmentation_enabled = true;   ///< ablation: no frag loss coupling
  double micro_congestion_prob = 0.01;    ///< chance a 10 s bucket is congested
  double micro_congestion_loss_min = 0.03;
  double micro_congestion_loss_max = 0.12;
  double congested_util_threshold = 0.92; ///< util above this adds loss
  /// Probability a bwtest server answers with an error instead of running
  /// the test (paper §4.1.2's "Error Messages" fault class: "a server is
  /// not down but it provides a bad response").
  double server_error_prob = 0.003;
  /// Scheduled fault injection (server-down windows, link flaps, slow
  /// responders, garbled responses) on top of the stochastic base model.
  /// All rates default to zero — no faults unless a campaign asks.
  FaultPlanConfig faults;
};

/// Result of an SCMP-echo-like probe train.
struct PingStats {
  std::vector<std::optional<double>> rtt_ms;  ///< per probe; nullopt = lost

  [[nodiscard]] std::size_t sent() const noexcept { return rtt_ms.size(); }
  [[nodiscard]] std::size_t lost() const noexcept;
  [[nodiscard]] double loss_pct() const noexcept;
  /// Mean RTT over the delivered probes; nullopt when all were lost.
  [[nodiscard]] std::optional<double> avg_ms() const noexcept;
  [[nodiscard]] std::optional<double> min_ms() const noexcept;
  [[nodiscard]] std::optional<double> max_ms() const noexcept;
  /// Sample standard deviation of delivered RTTs (jitter proxy).
  [[nodiscard]] std::optional<double> stddev_ms() const noexcept;
};

struct PingOptions {
  std::size_t count = 30;
  util::SimDuration interval = util::sim_millis(100);
  double payload_bytes = 64.0;
};

/// Per-hop RTTs of a traceroute probe.
struct TraceHop {
  NodeId node = 0;
  std::optional<double> rtt_ms;  ///< nullopt when the hop did not answer
};

struct TraceResult {
  std::vector<TraceHop> hops;
};

struct BwtestOptions {
  double duration_s = 3.0;
  double packet_bytes = 1000.0;  ///< application payload per packet
  double target_mbps = 12.0;
};

struct BwtestResult {
  double attempted_mbps = 0.0;  ///< offered after sender pacing limits
  double achieved_mbps = 0.0;   ///< payload delivered / duration
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  int frames_per_packet = 1;
  double bottleneck_available_mbps = 0.0;  ///< diagnosis: min wire headroom
};

/// One flow of a concurrent multipath bandwidth test.
struct FlowSpec {
  std::vector<NodeId> route;
  BwtestOptions options;
};

/// A directed link crossed by two or more concurrent subflows — the
/// capacity they compete for (the paper's Fig 9 congestion episode when
/// it sits on the shared access hop).
struct SharedBottleneck {
  NodeId from = 0;
  NodeId to = 0;
  std::vector<std::size_t> flows;  ///< indices into the FlowSpec list
  double available_mbps = 0.0;     ///< headroom left by background traffic
  double offered_wire_mbps = 0.0;  ///< summed wire load of those subflows
};

/// Outcome of `multibwtest`: per-flow results (a flow can fail
/// individually, e.g. its destination is down) plus the contention report.
struct MultibwtestOutcome {
  struct Flow {
    bool ok = false;
    util::Error error;
    BwtestResult result;  ///< meaningful only when `ok`
  };
  std::vector<Flow> flows;
  std::vector<SharedBottleneck> shared_bottlenecks;
};

/// The network model.  Thread-safe for concurrent measurements after the
/// topology is frozen (all mutation happens during construction).
class Network {
 public:
  explicit Network(std::uint64_t seed = 42, NetworkConfig config = {});

  // ---- construction ----------------------------------------------------
  NodeId add_node(NodeSpec spec);
  /// Add a directed link; kInvalidArgument on unknown endpoints or a
  /// duplicate (from,to) pair.
  util::Result<LinkId> add_link(LinkSpec spec);
  /// Convenience: two directed links with per-direction capacities.
  util::Status add_duplex(NodeId a, NodeId b, double capacity_ab_mbps,
                          double capacity_ba_mbps, double util_base = 0.25);
  void add_outage(OutageWindow window);

  // ---- introspection ---------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;
  [[nodiscard]] const LinkSpec* find_link(NodeId from, NodeId to) const;
  [[nodiscard]] util::SimDuration link_propagation(NodeId from, NodeId to) const;
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  /// The injected-fault schedule (inert unless config().faults enables it).
  [[nodiscard]] const FaultPlan& faults() const noexcept { return faults_; }

  // ---- measurements ----------------------------------------------------
  /// Probe `route` (node sequence source..destination) with `options.count`
  /// echo packets starting at virtual time `start`.
  /// kInvalidArgument when the route skips a missing link.
  [[nodiscard]] util::Result<PingStats> ping(const std::vector<NodeId>& route,
                                             const PingOptions& options,
                                             util::SimTime start) const;

  [[nodiscard]] util::Result<TraceResult> traceroute(
      const std::vector<NodeId>& route, util::SimTime start) const;

  /// Constant-rate flow along `route` (in the direction of data).
  [[nodiscard]] util::Result<BwtestResult> bwtest(
      const std::vector<NodeId>& route, const BwtestOptions& options,
      util::SimTime start) const;

  /// `flows.size()` concurrent constant-rate flows sharing the network:
  /// on every directed link, a flow's byte-share is computed against the
  /// link headroom minus the wire load of the other flows crossing it
  /// (`share = min(1, available / (own_wire + cross_wire))`).  A single
  /// flow reproduces `bwtest` bit-identically.  Flows fail individually
  /// (injected faults, server errors); failed flows offer no load.
  /// kInvalidArgument when `flows` is empty.
  [[nodiscard]] util::Result<MultibwtestOutcome> multibwtest(
      const std::vector<FlowSpec>& flows, util::SimTime start) const;

  /// Background utilization of the (from,to) link at time `t` — exposed
  /// for tests and the ablation benches.
  [[nodiscard]] double utilization(NodeId from, NodeId to, util::SimTime t) const;

  /// Effective per-frame loss probability on a link at `t` (base +
  /// micro-congestion + utilization penalty), before outages.
  [[nodiscard]] double frame_loss(NodeId from, NodeId to, util::SimTime t) const;

  /// Drop probability due to outage windows covering `node` at `t`.
  [[nodiscard]] double outage_drop(NodeId node, util::SimTime t) const;

 private:
  struct RouteLinks {
    std::vector<const LinkSpec*> links;  // per consecutive pair
  };
  [[nodiscard]] util::Result<RouteLinks> resolve(
      const std::vector<NodeId>& route) const;
  [[nodiscard]] double one_way_ms(const RouteLinks& route_links,
                                  const std::vector<NodeId>& route,
                                  util::SimTime t, util::Rng& rng) const;
  /// Whether a single frame crossing the route at `t` survives.
  [[nodiscard]] bool frame_survives(const RouteLinks& route_links,
                                    const std::vector<NodeId>& route,
                                    util::SimTime t, util::Rng& rng) const;

  /// bwtest core shared with multibwtest: `total_wire_mbps` (keyed by
  /// endpoint pair) is the combined wire load of every concurrent flow on
  /// that link, `own_wire_mbps` this flow's contribution.  Null map means
  /// a lone flow — the exact legacy bwtest computation.
  [[nodiscard]] util::Result<BwtestResult> bwtest_loaded(
      const std::vector<NodeId>& route, const BwtestOptions& options,
      util::SimTime start,
      const std::unordered_map<std::uint64_t, double>* total_wire_mbps,
      double own_wire_mbps) const;

  [[nodiscard]] static std::string route_label(const std::vector<NodeId>& route);

  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::unordered_map<std::uint64_t, LinkId> by_endpoints_;
  std::vector<OutageWindow> outages_;
  NetworkConfig config_;
  util::Rng master_;
  FaultPlan faults_;
};

}  // namespace upin::simnet
