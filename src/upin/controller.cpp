#include "upin/controller.hpp"

#include "measure/retry.hpp"

namespace upin::upinfw {

using util::ErrorCode;
using util::Result;
using util::SimTime;

PathController::PathController(apps::ScionHost& host,
                               const select::PathSelector& selector)
    : host_(host), selector_(selector) {}

Result<scion::SnetAddress> PathController::address_of(int server_id) const {
  const auto& servers = host_.env().servers;
  if (server_id < 1 || static_cast<std::size_t>(server_id) > servers.size()) {
    return util::Error{ErrorCode::kNotFound,
                       "unknown server id " + std::to_string(server_id)};
  }
  return servers[static_cast<std::size_t>(server_id) - 1];
}

Result<ActiveIntent> PathController::apply(
    const select::UserRequest& request) {
  Result<select::RankedPath> best = selector_.best(request);
  if (!best.ok()) return Result<ActiveIntent>(best.error());
  ActiveIntent intent{request, std::move(best).value()};
  active_[request.server_id] = intent;
  return intent;
}

std::optional<ActiveIntent> PathController::active(int server_id) const {
  const auto it = active_.find(server_id);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

bool PathController::release(int server_id) {
  return active_.erase(server_id) > 0;
}

Result<apps::PingReport> PathController::ping(
    int server_id, const apps::PingOptions& options) {
  Result<scion::SnetAddress> address = address_of(server_id);
  if (!address.ok()) return Result<apps::PingReport>(address.error());

  apps::PingOptions pinned = options;
  const auto it = active_.find(server_id);
  if (it != active_.end()) {
    pinned.sequence = it->second.chosen.summary.sequence;
  }
  Result<apps::PingReport> report = host_.ping(address.value(), pinned);
  if (!report.ok() && it != active_.end() &&
      (report.error().code == ErrorCode::kRevoked ||
       report.error().code == ErrorCode::kExpired)) {
    // The pinned path died under the control plane, not the data plane:
    // fail over inside the intent's policy instead of burning the retry
    // and breaker budget on a path known to be dead.
    std::optional<Result<apps::PingReport>> failed_over =
        failover_ping(server_id, address.value(), options);
    if (failed_over.has_value()) return *std::move(failed_over);
  }
  return report;
}

std::optional<Result<apps::PingReport>> PathController::failover_ping(
    int server_id, const scion::SnetAddress& address,
    const apps::PingOptions& options) {
  const auto it = active_.find(server_id);
  if (it == active_.end()) return std::nullopt;
  ActiveIntent& intent = it->second;
  scion::ControlPlane& control_plane = host_.control_plane();
  const SimTime detected_at = host_.clock().now();

  // How long traffic sat on the dead path after its revocation arrived.
  std::optional<SimTime> revoked_since;
  const util::Result<scion::Path> dead =
      scion::Path::parse_sequence(intent.chosen.summary.sequence);
  if (dead.ok()) {
    revoked_since = control_plane.revoked_since(dead.value(), detected_at);
  }

  Result<select::Selection> selection = selector_.select(intent.request);
  if (!selection.ok()) return std::nullopt;
  for (const select::RankedPath& candidate : selection.value().ranked) {
    if (candidate.summary.path_id == intent.chosen.summary.path_id) continue;
    if (control_plane.hops_revoked(candidate.summary.hops,
                                   host_.clock().now())) {
      continue;
    }
    apps::PingOptions failover = options;
    failover.sequence = candidate.summary.sequence;
    Result<apps::PingReport> retried = host_.ping(address, failover);
    if (!retried.ok()) continue;  // next-best candidate
    intent.chosen = candidate;
    ++failovers_;
    measure::record_revocation_failover(
        revoked_since.has_value() ? detected_at - *revoked_since
                                  : util::SimTime::zero());
    return retried;
  }
  return std::nullopt;
}

Result<std::vector<int>> PathController::reresolve_all() {
  std::vector<int> changed;
  for (auto& [server_id, intent] : active_) {
    Result<select::RankedPath> best = selector_.best(intent.request);
    if (!best.ok()) continue;  // keep the old pin when nothing qualifies
    if (best.value().summary.path_id != intent.chosen.summary.path_id) {
      changed.push_back(server_id);
    }
    intent.chosen = std::move(best).value();
  }
  return changed;
}

}  // namespace upin::upinfw
