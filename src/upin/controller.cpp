#include "upin/controller.hpp"

namespace upin::upinfw {

using util::ErrorCode;
using util::Result;

PathController::PathController(apps::ScionHost& host,
                               const select::PathSelector& selector)
    : host_(host), selector_(selector) {}

Result<scion::SnetAddress> PathController::address_of(int server_id) const {
  const auto& servers = host_.env().servers;
  if (server_id < 1 || static_cast<std::size_t>(server_id) > servers.size()) {
    return util::Error{ErrorCode::kNotFound,
                       "unknown server id " + std::to_string(server_id)};
  }
  return servers[static_cast<std::size_t>(server_id) - 1];
}

Result<ActiveIntent> PathController::apply(
    const select::UserRequest& request) {
  Result<select::RankedPath> best = selector_.best(request);
  if (!best.ok()) return Result<ActiveIntent>(best.error());
  ActiveIntent intent{request, std::move(best).value()};
  active_[request.server_id] = intent;
  return intent;
}

std::optional<ActiveIntent> PathController::active(int server_id) const {
  const auto it = active_.find(server_id);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

bool PathController::release(int server_id) {
  return active_.erase(server_id) > 0;
}

Result<apps::PingReport> PathController::ping(
    int server_id, const apps::PingOptions& options) {
  Result<scion::SnetAddress> address = address_of(server_id);
  if (!address.ok()) return Result<apps::PingReport>(address.error());

  apps::PingOptions pinned = options;
  const auto it = active_.find(server_id);
  if (it != active_.end()) {
    pinned.sequence = it->second.chosen.summary.sequence;
  }
  return host_.ping(address.value(), pinned);
}

Result<std::vector<int>> PathController::reresolve_all() {
  std::vector<int> changed;
  for (auto& [server_id, intent] : active_) {
    Result<select::RankedPath> best = selector_.best(intent.request);
    if (!best.ok()) continue;  // keep the old pin when nothing qualifies
    if (best.value().summary.path_id != intent.chosen.summary.path_id) {
      changed.push_back(server_id);
    }
    intent.chosen = std::move(best).value();
  }
  return changed;
}

}  // namespace upin::upinfw
