#include "upin/controller.hpp"

#include "measure/retry.hpp"

namespace upin::upinfw {

using util::ErrorCode;
using util::Result;
using util::SimTime;

PathController::PathController(apps::ScionHost& host,
                               const select::PathSelector& selector,
                               std::string strategy_key,
                               util::JsonObject strategy_knobs)
    : host_(host),
      selector_(selector),
      strategy_key_(std::move(strategy_key)),
      strategy_knobs_(std::move(strategy_knobs)) {}

Result<select::Selection> PathController::run_selection(
    const select::UserRequest& request) const {
  return selector_.select_with(strategy_key_, request, strategy_knobs_);
}

Result<scion::SnetAddress> PathController::address_of(int server_id) const {
  const auto& servers = host_.env().servers;
  if (server_id < 1 || static_cast<std::size_t>(server_id) > servers.size()) {
    return util::Error{ErrorCode::kNotFound,
                       "unknown server id " + std::to_string(server_id)};
  }
  return servers[static_cast<std::size_t>(server_id) - 1];
}

Result<ActiveIntent> PathController::apply(
    const select::UserRequest& request) {
  Result<select::Selection> selection = run_selection(request);
  if (!selection.ok()) return Result<ActiveIntent>(selection.error());
  if (selection.value().ranked.empty()) {
    return util::Error{ErrorCode::kNotFound,
                       "no path satisfies: " + request.describe()};
  }
  ActiveIntent intent{request, selection.value().ranked.front()};
  active_[request.server_id] = intent;
  return intent;
}

std::optional<ActiveIntent> PathController::active(int server_id) const {
  const auto it = active_.find(server_id);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

bool PathController::release(int server_id) {
  return active_.erase(server_id) > 0;
}

Result<apps::PingReport> PathController::ping(
    int server_id, const apps::PingOptions& options) {
  Result<scion::SnetAddress> address = address_of(server_id);
  if (!address.ok()) return Result<apps::PingReport>(address.error());

  apps::PingOptions pinned = options;
  const auto it = active_.find(server_id);
  if (it != active_.end()) {
    pinned.sequence = it->second.chosen.summary.sequence;
  }
  Result<apps::PingReport> report = host_.ping(address.value(), pinned);
  if (!report.ok() && it != active_.end() &&
      (report.error().code == ErrorCode::kRevoked ||
       report.error().code == ErrorCode::kExpired)) {
    // The pinned path died under the control plane, not the data plane:
    // fail over inside the intent's policy instead of burning the retry
    // and breaker budget on a path known to be dead.
    std::optional<Result<apps::PingReport>> failed_over =
        failover_ping(server_id, address.value(), options);
    if (failed_over.has_value()) return *std::move(failed_over);
  }
  return report;
}

std::optional<Result<apps::PingReport>> PathController::failover_ping(
    int server_id, const scion::SnetAddress& address,
    const apps::PingOptions& options) {
  const auto it = active_.find(server_id);
  if (it == active_.end()) return std::nullopt;
  ActiveIntent& intent = it->second;
  scion::ControlPlane& control_plane = host_.control_plane();
  const SimTime detected_at = host_.clock().now();

  // How long traffic sat on the dead path after its revocation arrived.
  std::optional<SimTime> revoked_since;
  const util::Result<scion::Path> dead =
      scion::Path::parse_sequence(intent.chosen.summary.sequence);
  if (dead.ok()) {
    revoked_since = control_plane.revoked_since(dead.value(), detected_at);
  }

  Result<select::Selection> selection = run_selection(intent.request);
  if (!selection.ok()) return std::nullopt;
  for (const select::RankedPath& candidate : selection.value().ranked) {
    if (candidate.summary.path_id == intent.chosen.summary.path_id) continue;
    if (control_plane.hops_revoked(candidate.summary.hops,
                                   host_.clock().now())) {
      continue;
    }
    apps::PingOptions failover = options;
    failover.sequence = candidate.summary.sequence;
    Result<apps::PingReport> retried = host_.ping(address, failover);
    if (!retried.ok()) continue;  // next-best candidate
    intent.chosen = candidate;
    ++failovers_;
    measure::record_revocation_failover(
        revoked_since.has_value() ? detected_at - *revoked_since
                                  : util::SimTime::zero());
    return retried;
  }
  return std::nullopt;
}

Result<std::vector<int>> PathController::reresolve_all() {
  std::vector<int> changed;
  for (auto& [server_id, intent] : active_) {
    Result<select::Selection> selection = run_selection(intent.request);
    if (!selection.ok() || selection.value().ranked.empty()) {
      continue;  // keep the old pin when nothing qualifies
    }
    select::RankedPath best = std::move(selection.value().ranked.front());
    if (best.summary.path_id != intent.chosen.summary.path_id) {
      changed.push_back(server_id);
    }
    intent.chosen = std::move(best);
  }
  return changed;
}

Result<ActiveMultipath> PathController::apply_multipath(
    const select::UserRequest& request, std::size_t k) {
  Result<select::Selection> selection = run_selection(request);
  if (!selection.ok()) return Result<ActiveMultipath>(selection.error());
  Result<select::MultipathPlan> plan =
      select::plan_multipath(selection.value(), k);
  if (!plan.ok()) return Result<ActiveMultipath>(plan.error());
  ActiveMultipath intent{request, k, std::move(plan).value()};
  multipath_[request.server_id] = intent;
  return intent;
}

std::optional<ActiveMultipath> PathController::active_multipath(
    int server_id) const {
  const auto it = multipath_.find(server_id);
  if (it == multipath_.end()) return std::nullopt;
  return it->second;
}

namespace {

std::vector<apps::SubflowSpec> subflow_specs(
    const select::MultipathPlan& plan) {
  std::vector<apps::SubflowSpec> specs;
  specs.reserve(plan.subflows.size());
  for (const select::MultipathSubflow& subflow : plan.subflows) {
    specs.push_back(
        apps::SubflowSpec{subflow.summary.sequence, subflow.weight});
  }
  return specs;
}

bool is_control_plane_death(const util::Error& error) {
  return error.code == ErrorCode::kRevoked || error.code == ErrorCode::kExpired;
}

}  // namespace

Result<apps::MultipathPingReport> PathController::multipath_ping(
    int server_id, const apps::MultipathPingOptions& options) {
  Result<scion::SnetAddress> address = address_of(server_id);
  if (!address.ok()) return Result<apps::MultipathPingReport>(address.error());
  const auto it = multipath_.find(server_id);
  if (it == multipath_.end()) {
    return util::Error{ErrorCode::kNotFound,
                       "no multipath plan pinned for server " +
                           std::to_string(server_id)};
  }

  Result<apps::MultipathPingReport> report =
      host_.multipath_ping(address.value(), subflow_specs(it->second.plan),
                           options);

  // Did the control plane kill the run (or any subflow of it)?
  bool revoked = !report.ok() && is_control_plane_death(report.error());
  if (report.ok()) {
    for (const apps::MultipathPingReport::Subflow& subflow :
         report.value().subflows) {
      if (!subflow.ok && is_control_plane_death(subflow.error)) {
        revoked = true;
        break;
      }
    }
  }
  if (!revoked) return report;

  // Graceful multipath failover: measure how long traffic sat on the
  // dead subflow, re-resolve the plan inside the intent's policy and
  // retry once over the fresh subflow set.
  scion::ControlPlane& control_plane = host_.control_plane();
  const SimTime detected_at = host_.clock().now();
  std::optional<SimTime> revoked_since;
  for (const select::MultipathSubflow& subflow : it->second.plan.subflows) {
    const util::Result<scion::Path> dead =
        scion::Path::parse_sequence(subflow.summary.sequence);
    if (!dead.ok()) continue;
    const std::optional<SimTime> since =
        control_plane.revoked_since(dead.value(), detected_at);
    if (since.has_value() &&
        (!revoked_since.has_value() || *since < *revoked_since)) {
      revoked_since = since;
    }
  }

  Result<ActiveMultipath> replanned =
      apply_multipath(it->second.request, it->second.k);
  if (!replanned.ok()) return report;  // no live alternative: surface as-is
  ++failovers_;
  measure::record_revocation_failover(revoked_since.has_value()
                                          ? detected_at - *revoked_since
                                          : util::SimTime::zero());
  return host_.multipath_ping(address.value(),
                              subflow_specs(replanned.value().plan), options);
}

}  // namespace upin::upinfw
