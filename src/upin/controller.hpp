// controller.hpp — the UPIN Path Controller (paper §2.1).
//
// "The Path Controller is in charge of setting the forwarding rules
// based on the desires of the user.  The Controller is only able to
// influence the nodes in its own domain."
//
// On a SCION network the user's domain controls the *path choice* (that
// is the paper's whole point): the controller resolves a UserRequest
// through the selection engine and pins the winning path for the
// destination.  Subsequent traffic from this host session uses the
// pinned path; intents can be re-resolved as fresh measurements arrive.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "apps/host.hpp"
#include "select/multipath.hpp"
#include "select/selector.hpp"

namespace upin::upinfw {

/// An applied intent: the request and the path it resolved to.
struct ActiveIntent {
  select::UserRequest request;
  select::RankedPath chosen;
};

/// An applied multipath intent: the request, the requested subflow count
/// and the plan it resolved to (which may carry fewer subflows when the
/// selection admitted fewer paths).
struct ActiveMultipath {
  select::UserRequest request;
  std::size_t k = 1;
  select::MultipathPlan plan;
};

class PathController {
 public:
  /// The controller resolves intents through `strategy_key` (any key in
  /// `select::StrategyRegistry::global()`, validated per call) with the
  /// given knobs; the default is the paper's objective pipeline.
  PathController(apps::ScionHost& host, const select::PathSelector& selector,
                 std::string strategy_key = std::string(select::kPaperObjective),
                 util::JsonObject strategy_knobs = {});

  /// Resolve `request` and pin the winning path for its destination.
  /// kNotFound when nothing satisfies the request (nothing is pinned and
  /// any previous pin for that destination is kept).
  util::Result<ActiveIntent> apply(const select::UserRequest& request);

  /// Currently pinned intent for a destination, if any.
  [[nodiscard]] std::optional<ActiveIntent> active(int server_id) const;

  /// Drop the pin for a destination; returns whether one existed.
  bool release(int server_id);

  /// Ping the destination over its pinned path (falls back to the best
  /// discovered path when nothing is pinned — the SCION default).
  ///
  /// Graceful failover: when the pinned path has been revoked by the
  /// control plane, the controller re-selects within the intent's policy,
  /// re-pins the best live alternative and pings over it instead of
  /// surfacing the failure — recording a revocation_failover taxonomy
  /// event plus the failover latency (time traffic sat on the dead path
  /// after its revocation was delivered).  kRevoked is returned only when
  /// no policy-conformant live alternative exists.
  util::Result<apps::PingReport> ping(int server_id,
                                      const apps::PingOptions& options = {});

  /// Revocation failovers performed by this controller.
  [[nodiscard]] std::size_t failovers() const noexcept { return failovers_; }

  /// Re-resolve every active intent against current data; returns the
  /// destinations whose pinned path changed.
  util::Result<std::vector<int>> reresolve_all();

  /// Resolve `request` into a weighted k-subflow plan under the
  /// controller's strategy and pin it for the destination.  Propagates
  /// kNotFound when nothing is admissible.
  util::Result<ActiveMultipath> apply_multipath(
      const select::UserRequest& request, std::size_t k);

  /// Currently pinned multipath plan for a destination, if any.
  [[nodiscard]] std::optional<ActiveMultipath> active_multipath(
      int server_id) const;

  /// Weighted concurrent ping over the pinned multipath plan.  When the
  /// run dies — or any subflow dies — under a control-plane revocation,
  /// the plan is re-resolved within the intent's policy and the ping
  /// retried once over the fresh plan (a recorded revocation failover).
  util::Result<apps::MultipathPingReport> multipath_ping(
      int server_id, const apps::MultipathPingOptions& options = {});

 private:
  [[nodiscard]] util::Result<scion::SnetAddress> address_of(int server_id) const;

  /// Attempt the failover described on ping(); nullopt when no viable
  /// alternative was found (the caller surfaces the original error).
  [[nodiscard]] std::optional<util::Result<apps::PingReport>> failover_ping(
      int server_id, const scion::SnetAddress& address,
      const apps::PingOptions& options);

  /// Full selection under the controller's strategy.
  [[nodiscard]] util::Result<select::Selection> run_selection(
      const select::UserRequest& request) const;

  apps::ScionHost& host_;
  const select::PathSelector& selector_;
  std::string strategy_key_;
  util::JsonObject strategy_knobs_;
  std::map<int, ActiveIntent> active_;
  std::map<int, ActiveMultipath> multipath_;
  std::size_t failovers_ = 0;
};

}  // namespace upin::upinfw
