// controller.hpp — the UPIN Path Controller (paper §2.1).
//
// "The Path Controller is in charge of setting the forwarding rules
// based on the desires of the user.  The Controller is only able to
// influence the nodes in its own domain."
//
// On a SCION network the user's domain controls the *path choice* (that
// is the paper's whole point): the controller resolves a UserRequest
// through the selection engine and pins the winning path for the
// destination.  Subsequent traffic from this host session uses the
// pinned path; intents can be re-resolved as fresh measurements arrive.
#pragma once

#include <map>
#include <optional>

#include "apps/host.hpp"
#include "select/selector.hpp"

namespace upin::upinfw {

/// An applied intent: the request and the path it resolved to.
struct ActiveIntent {
  select::UserRequest request;
  select::RankedPath chosen;
};

class PathController {
 public:
  PathController(apps::ScionHost& host, const select::PathSelector& selector);

  /// Resolve `request` and pin the winning path for its destination.
  /// kNotFound when nothing satisfies the request (nothing is pinned and
  /// any previous pin for that destination is kept).
  util::Result<ActiveIntent> apply(const select::UserRequest& request);

  /// Currently pinned intent for a destination, if any.
  [[nodiscard]] std::optional<ActiveIntent> active(int server_id) const;

  /// Drop the pin for a destination; returns whether one existed.
  bool release(int server_id);

  /// Ping the destination over its pinned path (falls back to the best
  /// discovered path when nothing is pinned — the SCION default).
  ///
  /// Graceful failover: when the pinned path has been revoked by the
  /// control plane, the controller re-selects within the intent's policy,
  /// re-pins the best live alternative and pings over it instead of
  /// surfacing the failure — recording a revocation_failover taxonomy
  /// event plus the failover latency (time traffic sat on the dead path
  /// after its revocation was delivered).  kRevoked is returned only when
  /// no policy-conformant live alternative exists.
  util::Result<apps::PingReport> ping(int server_id,
                                      const apps::PingOptions& options = {});

  /// Revocation failovers performed by this controller.
  [[nodiscard]] std::size_t failovers() const noexcept { return failovers_; }

  /// Re-resolve every active intent against current data; returns the
  /// destinations whose pinned path changed.
  util::Result<std::vector<int>> reresolve_all();

 private:
  [[nodiscard]] util::Result<scion::SnetAddress> address_of(int server_id) const;

  /// Attempt the failover described on ping(); nullopt when no viable
  /// alternative was found (the caller surfaces the original error).
  [[nodiscard]] std::optional<util::Result<apps::PingReport>> failover_ping(
      int server_id, const scion::SnetAddress& address,
      const apps::PingOptions& options);

  apps::ScionHost& host_;
  const select::PathSelector& selector_;
  std::map<int, ActiveIntent> active_;
  std::size_t failovers_ = 0;
};

}  // namespace upin::upinfw
