#include "upin/explorer.hpp"

namespace upin::upinfw {

using util::Result;
using util::Status;
using util::Value;

DomainExplorer::DomainExplorer(docdb::Database& db,
                               const scion::Topology& topology)
    : db_(db), topology_(topology) {}

Status DomainExplorer::refresh() {
  docdb::Collection& nodes = db_.collection(kNodes);
  nodes.create_index("country");
  nodes.create_index("operator");
  for (const scion::AsInfo& info : topology_.ases()) {
    const std::size_t degree =
        topology_.neighbors(info.ia, scion::LinkType::kCore).size() +
        topology_.parents_of(info.ia).size() +
        topology_.children_of(info.ia).size() +
        topology_.neighbors(info.ia, scion::LinkType::kPeer).size();
    util::JsonObject doc;
    doc.set("_id", Value(info.ia.to_string()));
    doc.set("name", Value(info.name));
    doc.set("role", Value(to_string(info.role)));
    doc.set("isd", Value(static_cast<std::int64_t>(info.ia.isd())));
    doc.set("city", Value(info.city));
    doc.set("country", Value(info.country));
    doc.set("operator", Value(info.operator_name));
    doc.set("lat", Value(info.location.lat_deg));
    doc.set("lon", Value(info.location.lon_deg));
    doc.set("degree", Value(degree));

    nodes.delete_by_id(info.ia.to_string());  // refresh semantics
    Result<std::string> inserted = nodes.insert_one(Value(std::move(doc)));
    if (!inserted.ok()) return Status(inserted.error());
  }
  return Status::success();
}

Result<docdb::Document> DomainExplorer::describe(scion::IsdAsn ia) const {
  const docdb::Collection* nodes = db_.find_collection(kNodes);
  if (nodes == nullptr) {
    return util::Error{util::ErrorCode::kNotFound, "nodes not published"};
  }
  return nodes->find_by_id(ia.to_string());
}

Result<std::vector<scion::IsdAsn>> DomainExplorer::find_nodes(
    const Value& query) const {
  const docdb::Collection* nodes = db_.find_collection(kNodes);
  if (nodes == nullptr) {
    return util::Error{util::ErrorCode::kNotFound, "nodes not published"};
  }
  Result<docdb::Filter> filter = docdb::Filter::compile(query);
  if (!filter.ok()) {
    return Result<std::vector<scion::IsdAsn>>(filter.error());
  }
  std::vector<scion::IsdAsn> result;
  for (const docdb::Document& doc : nodes->find(filter.value())) {
    const auto id = docdb::document_id(doc);
    if (!id.has_value()) continue;
    Result<scion::IsdAsn> ia = scion::IsdAsn::parse(*id);
    if (ia.ok()) result.push_back(ia.value());
  }
  return result;
}

std::size_t DomainExplorer::published_count() const {
  const docdb::Collection* nodes = db_.find_collection(kNodes);
  return nodes == nullptr ? 0 : nodes->size();
}

}  // namespace upin::upinfw
