// explorer.hpp — the UPIN Domain Explorer (paper §2.1).
//
// "The Domain Explorer obtains metadata about properties of the network,
// including security and environmental details.  It stores detailed
// knowledge on the nodes in the network."
//
// Here it publishes the testbed's AS metadata (role, city, country,
// operator, coordinates, ISD) into a `nodes` collection of the
// measurement database, so the selection and verification layers can
// answer sovereignty questions from stored knowledge rather than from
// compiled-in structures.
#pragma once

#include "docdb/database.hpp"
#include "scion/topology.hpp"

namespace upin::upinfw {

/// Collection the explorer maintains.
inline constexpr const char* kNodes = "nodes";

/// Publishes and refreshes node knowledge.
class DomainExplorer {
 public:
  DomainExplorer(docdb::Database& db, const scion::Topology& topology);

  /// (Re)publish every AS as a node document (idempotent upsert).
  /// Document: {_id: "<isd-as>", name, role, isd, city, country,
  ///            operator, lat, lon, degree}.
  util::Status refresh();

  /// Stored knowledge for one AS; kNotFound when never published.
  [[nodiscard]] util::Result<docdb::Document> describe(scion::IsdAsn ia) const;

  /// All ASes matching a Mongo-style query over node documents,
  /// e.g. {"country": "US"} or {"role": "core"}.
  [[nodiscard]] util::Result<std::vector<scion::IsdAsn>> find_nodes(
      const util::Value& query) const;

  [[nodiscard]] std::size_t published_count() const;

 private:
  docdb::Database& db_;
  const scion::Topology& topology_;
};

}  // namespace upin::upinfw
