#include "upin/recommend.hpp"

#include "util/strings.hpp"

namespace upin::upinfw {

using util::Result;

const char* to_string(IntentProfile profile) noexcept {
  switch (profile) {
    case IntentProfile::kVideoCall: return "video-call";
    case IntentProfile::kGaming: return "gaming";
    case IntentProfile::kBulkTransfer: return "bulk-transfer";
    case IntentProfile::kUpload: return "upload";
    case IntentProfile::kReliableSync: return "reliable-sync";
  }
  return "?";
}

select::UserRequest make_request(IntentProfile profile, int server_id,
                                 const select::UserRequest& base) {
  select::UserRequest request = base;  // keep sovereignty lists & samples
  request.server_id = server_id;
  switch (profile) {
    case IntentProfile::kVideoCall:
      // §6.1: consistency over raw latency for streaming/VoIP.
      request.objective = select::Objective::kMostConsistent;
      request.max_latency_ms = request.max_latency_ms.value_or(250.0);
      request.max_loss_pct = request.max_loss_pct.value_or(2.0);
      break;
    case IntentProfile::kGaming:
      request.objective = select::Objective::kLowestLatency;
      request.max_loss_pct = request.max_loss_pct.value_or(5.0);
      break;
    case IntentProfile::kBulkTransfer:
      request.objective = select::Objective::kHighestBandwidth;
      request.bw_direction = select::BwDirection::kDownstream;
      break;
    case IntentProfile::kUpload:
      request.objective = select::Objective::kHighestBandwidth;
      request.bw_direction = select::BwDirection::kUpstream;
      break;
    case IntentProfile::kReliableSync:
      request.objective = select::Objective::kLowestLoss;
      break;
  }
  return request;
}

Recommender::Recommender(const select::PathSelector& selector)
    : selector_(selector) {}

Result<Recommendation> Recommender::recommend(
    IntentProfile profile, int server_id, std::size_t top_n,
    const select::UserRequest& base) const {
  Recommendation recommendation;
  recommendation.profile = profile;
  recommendation.request = make_request(profile, server_id, base);

  Result<select::Selection> selection =
      selector_.select(recommendation.request);
  if (!selection.ok()) return Result<Recommendation>(selection.error());

  recommendation.rejected = std::move(selection.value().rejected);
  auto& ranked = selection.value().ranked;
  if (ranked.empty()) {
    return util::Error{util::ErrorCode::kNotFound,
                       std::string("no path qualifies for ") +
                           to_string(profile) + " to server " +
                           std::to_string(server_id)};
  }
  if (ranked.size() > top_n) ranked.resize(top_n);
  recommendation.summary = util::format(
      "%s: take %s (%s); %zu alternatives, %zu rejected", to_string(profile),
      ranked.front().summary.path_id.c_str(),
      ranked.front().rationale.c_str(), ranked.size() - 1,
      recommendation.rejected.size());
  recommendation.ranked = std::move(ranked);
  return recommendation;
}

}  // namespace upin::upinfw
