// recommend.hpp — the path recommendation feature (paper §7 future work).
//
// "We intend to proceed ... by providing a user interface and a path
// recommendation feature, that remains our main direction for future
// research."
//
// Users rarely think in request objects; they think "video call" or
// "nightly backup".  The recommender maps named intent profiles onto
// UserRequests, resolves them through the selector, and explains each
// recommendation (path, rationale, what was rejected and why).
#pragma once

#include "select/selector.hpp"

namespace upin::upinfw {

/// Built-in intent profiles.
enum class IntentProfile {
  kVideoCall,      ///< low jitter first, bounded latency and loss (§6.1)
  kGaming,         ///< lowest latency, bounded loss
  kBulkTransfer,   ///< highest downstream bandwidth
  kUpload,         ///< highest upstream bandwidth
  kReliableSync,   ///< lowest loss
};

const char* to_string(IntentProfile profile) noexcept;

/// Translate a profile into a concrete request for a destination.
/// Sovereignty lists are copied from `base` (which may also preset
/// min_samples etc.); objective and performance bounds come from the
/// profile.
[[nodiscard]] select::UserRequest make_request(
    IntentProfile profile, int server_id,
    const select::UserRequest& base = {});

/// A recommendation: ranked paths with human-readable reasoning.
struct Recommendation {
  IntentProfile profile = IntentProfile::kVideoCall;
  select::UserRequest request;
  std::vector<select::RankedPath> ranked;  ///< best first, at most `top_n`
  std::vector<std::pair<std::string, std::string>> rejected;
  std::string summary;  ///< one-line explanation of the top pick
};

class Recommender {
 public:
  explicit Recommender(const select::PathSelector& selector);

  /// Recommend paths for a profile; kNotFound when nothing qualifies
  /// (the report of rejections is still returned inside the error path
  /// via `recommend_or_explain`).
  util::Result<Recommendation> recommend(IntentProfile profile, int server_id,
                                         std::size_t top_n = 3,
                                         const select::UserRequest& base = {}) const;

 private:
  const select::PathSelector& selector_;
};

}  // namespace upin::upinfw
