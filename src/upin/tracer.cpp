#include "upin/tracer.hpp"

namespace upin::upinfw {

using util::Result;
using util::Value;

PathTracer::PathTracer(apps::ScionHost& host, docdb::Database& db)
    : host_(host), db_(db) {}

Result<TraceRecord> PathTracer::trace_and_store(
    int server_id, const std::string& path_id,
    const scion::SnetAddress& address, const std::string& sequence) {
  Result<apps::TracerouteReport> report = host_.traceroute(address, sequence);
  if (!report.ok()) return Result<TraceRecord>(report.error());

  TraceRecord record;
  record.path_id = path_id;
  record.server_id = server_id;
  record.timestamp = host_.clock().now();
  record.complete = true;

  Value::Array hops;
  for (std::size_t i = 0; i < report.value().trace.hops.size(); ++i) {
    const simnet::TraceHop& hop = report.value().trace.hops[i];
    // Hop i of the trace is hop i+1 of the path (the source answers 0).
    const scion::IsdAsn ia = report.value().path.hops()[i + 1].ia;
    record.hops.emplace_back(ia, hop.rtt_ms);
    if (!hop.rtt_ms.has_value()) record.complete = false;

    util::JsonObject hop_doc;
    hop_doc.set("ia", Value(ia.to_string()));
    if (hop.rtt_ms.has_value()) hop_doc.set("rtt_ms", Value(*hop.rtt_ms));
    hops.emplace_back(std::move(hop_doc));
  }

  util::JsonObject doc;
  doc.set("_id", Value(path_id + "_" + util::timestamp_token(record.timestamp)));
  doc.set("path_id", Value(path_id));
  doc.set("server_id", Value(server_id));
  doc.set("timestamp_ms", Value(static_cast<std::int64_t>(
                              record.timestamp.count() / 1'000'000)));
  doc.set("hops", Value(std::move(hops)));
  doc.set("complete", Value(record.complete));

  docdb::Collection& traces = db_.collection(kPathTraces);
  traces.create_index("path_id");
  Result<std::string> inserted = traces.insert_one(Value(std::move(doc)));
  if (!inserted.ok()) return Result<TraceRecord>(inserted.error());
  return record;
}

Result<std::vector<TraceRecord>> PathTracer::traces_for(
    const std::string& path_id) const {
  const docdb::Collection* traces = db_.find_collection(kPathTraces);
  if (traces == nullptr) return std::vector<TraceRecord>{};  // nothing yet
  util::JsonObject query;
  query.set("path_id", Value(path_id));
  Result<docdb::Filter> filter =
      docdb::Filter::compile(Value(std::move(query)));
  if (!filter.ok()) return Result<std::vector<TraceRecord>>(filter.error());

  docdb::FindOptions by_time;
  by_time.sort_by = "timestamp_ms";

  std::vector<TraceRecord> records;
  for (const docdb::Document& doc : traces->find(filter.value(), by_time)) {
    TraceRecord record;
    record.path_id = path_id;
    if (const Value* server = doc.get("server_id"); server && server->is_int()) {
      record.server_id = static_cast<int>(server->as_int());
    }
    if (const Value* ts = doc.get("timestamp_ms"); ts && ts->is_int()) {
      record.timestamp = util::SimTime(ts->as_int() * 1'000'000);
    }
    record.complete = true;
    if (const Value* hops = doc.get("hops"); hops && hops->is_array()) {
      for (const Value& hop : hops->as_array()) {
        const Value* ia_text = hop.get("ia");
        if (ia_text == nullptr || !ia_text->is_string()) continue;
        Result<scion::IsdAsn> ia = scion::IsdAsn::parse(ia_text->as_string());
        if (!ia.ok()) continue;
        std::optional<double> rtt;
        if (const Value* rtt_value = hop.get("rtt_ms");
            rtt_value != nullptr && rtt_value->is_number()) {
          rtt = rtt_value->as_double();
        } else {
          record.complete = false;
        }
        record.hops.emplace_back(ia.value(), rtt);
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace upin::upinfw
