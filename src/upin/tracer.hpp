// tracer.hpp — the UPIN Path Tracer (paper §2.1).
//
// "The Path Tracer gathers measurements on the traffic in the UPIN
// domain.  The goal is to store important details for the possible
// verification."
//
// Traces the active path of an intent with SCMP traceroute and stores
// one document per trace in the `path_traces` collection:
//   {_id: "<path_id>_<ts>", path_id, server_id, timestamp_ms,
//    hops: [{ia, rtt_ms|null}, ...], complete}
#pragma once

#include "apps/host.hpp"
#include "docdb/database.hpp"

namespace upin::upinfw {

inline constexpr const char* kPathTraces = "path_traces";

/// One recorded trace (decoded form).
struct TraceRecord {
  std::string path_id;
  int server_id = 0;
  util::SimTime timestamp{};
  /// (AS, RTT) per hop; nullopt RTT = hop did not answer.
  std::vector<std::pair<scion::IsdAsn, std::optional<double>>> hops;
  bool complete = false;  ///< every hop answered
};

class PathTracer {
 public:
  PathTracer(apps::ScionHost& host, docdb::Database& db);

  /// Trace `sequence` towards `address` and store the result under
  /// `path_id` for `server_id`.  Returns the stored record.
  util::Result<TraceRecord> trace_and_store(int server_id,
                                            const std::string& path_id,
                                            const scion::SnetAddress& address,
                                            const std::string& sequence);

  /// All stored traces for one path, oldest first.
  [[nodiscard]] util::Result<std::vector<TraceRecord>> traces_for(
      const std::string& path_id) const;

 private:
  apps::ScionHost& host_;
  docdb::Database& db_;
};

}  // namespace upin::upinfw
