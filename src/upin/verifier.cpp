#include "upin/verifier.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace upin::upinfw {

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kSatisfied: return "satisfied";
    case Verdict::kUncertain: return "uncertain";
    case Verdict::kViolated: return "violated";
  }
  return "?";
}

PathVerifier::PathVerifier(const scion::Topology& topology)
    : topology_(topology) {}

void PathVerifier::enable_isd(std::uint16_t isd) { enabled_isds_.insert(isd); }

bool PathVerifier::is_enabled(std::uint16_t isd) const {
  return enabled_isds_.contains(isd);
}

VerificationReport PathVerifier::verify(
    const select::UserRequest& request, const TraceRecord& trace,
    const simnet::PingStats& fresh_ping) const {
  VerificationReport report;

  // --- trace evidence ---------------------------------------------------
  {
    Check completeness;
    completeness.name = "trace-complete";
    completeness.passed = trace.complete && !trace.hops.empty();
    completeness.detail = completeness.passed
                              ? util::format("%zu hops answered", trace.hops.size())
                              : "trace has unanswered hops";
    report.checks.push_back(completeness);
  }

  Check sovereignty;
  sovereignty.name = "sovereignty";
  sovereignty.passed = true;
  for (const auto& [ia, rtt] : trace.hops) {
    const scion::AsInfo* info = topology_.find_as(ia);
    if (info == nullptr) continue;
    const bool excluded_country =
        std::find(request.exclude_countries.begin(),
                  request.exclude_countries.end(),
                  info->country) != request.exclude_countries.end();
    const bool excluded_operator =
        std::find(request.exclude_operators.begin(),
                  request.exclude_operators.end(),
                  info->operator_name) != request.exclude_operators.end();
    const bool excluded_as =
        std::find(request.exclude_ases.begin(), request.exclude_ases.end(),
                  ia) != request.exclude_ases.end();
    const bool excluded_isd =
        std::find(request.exclude_isds.begin(), request.exclude_isds.end(),
                  ia.isd()) != request.exclude_isds.end();
    const bool outside_allow_list =
        !request.allowed_isds.empty() &&
        std::find(request.allowed_isds.begin(), request.allowed_isds.end(),
                  ia.isd()) == request.allowed_isds.end();
    if (excluded_country || excluded_operator || excluded_as || excluded_isd ||
        outside_allow_list) {
      sovereignty.passed = false;
      sovereignty.detail = "traffic crossed excluded " + ia.to_string();
      break;
    }
    if (!is_enabled(ia.isd())) report.unverifiable_hops.push_back(ia);
  }
  if (sovereignty.passed && sovereignty.detail.empty()) {
    sovereignty.detail = "no excluded hop observed";
  }
  report.checks.push_back(sovereignty);

  // --- performance evidence ----------------------------------------------
  if (request.max_latency_ms.has_value()) {
    Check latency;
    latency.name = "latency";
    const auto avg = fresh_ping.avg_ms();
    latency.passed = avg.has_value() && *avg <= *request.max_latency_ms;
    latency.detail = avg.has_value()
                         ? util::format("avg %.2fms vs bound %.2fms", *avg,
                                        *request.max_latency_ms)
                         : "no latency measurement";
    report.checks.push_back(latency);
  }
  if (request.max_loss_pct.has_value()) {
    Check loss;
    loss.name = "loss";
    loss.passed = fresh_ping.loss_pct() <= *request.max_loss_pct;
    loss.detail = util::format("%.1f%% vs bound %.1f%%", fresh_ping.loss_pct(),
                               *request.max_loss_pct);
    report.checks.push_back(loss);
  }
  if (request.max_jitter_ms.has_value()) {
    Check jitter;
    jitter.name = "jitter";
    const auto stddev = fresh_ping.stddev_ms();
    jitter.passed = stddev.has_value() && *stddev <= *request.max_jitter_ms;
    jitter.detail = stddev.has_value()
                        ? util::format("%.2fms vs bound %.2fms", *stddev,
                                       *request.max_jitter_ms)
                        : "no jitter measurement";
    report.checks.push_back(jitter);
  }

  if (!report.all_passed()) {
    report.verdict = Verdict::kViolated;
  } else if (report.unverifiable_hops.empty()) {
    report.verdict = Verdict::kSatisfied;
  } else {
    report.verdict = Verdict::kUncertain;  // paper §2.1's caveat
  }
  return report;
}

}  // namespace upin::upinfw
