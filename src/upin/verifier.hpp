// verifier.hpp — the UPIN Path Verifier (paper §2.1).
//
// "The Path Verifier examines whether the desires of the user are
// satisfied.  However, if the path traverses a non-UPIN enabled domain,
// the Path Verifier cannot be certain whether the intent is satisfied
// over the full path."
//
// Verification combines the stored trace (which ASes did traffic
// actually cross?) with fresh measurements (is the promised performance
// delivered?).  ISDs can be registered as UPIN-enabled; hops in other
// ISDs degrade a passing verdict to kUncertain, exactly as the paper
// qualifies it.
#pragma once

#include <set>

#include "select/request.hpp"
#include "upin/tracer.hpp"

namespace upin::upinfw {

enum class Verdict {
  kSatisfied,   ///< every check passed on UPIN-enabled territory
  kUncertain,   ///< checks passed, but hops traverse non-UPIN domains
  kViolated,    ///< at least one check failed
};

const char* to_string(Verdict verdict) noexcept;

/// One verification check with its outcome.
struct Check {
  std::string name;
  bool passed = false;
  std::string detail;
};

struct VerificationReport {
  Verdict verdict = Verdict::kUncertain;
  std::vector<Check> checks;
  std::vector<scion::IsdAsn> unverifiable_hops;  ///< outside UPIN domains

  [[nodiscard]] bool all_passed() const noexcept {
    for (const Check& check : checks) {
      if (!check.passed) return false;
    }
    return true;
  }
};

class PathVerifier {
 public:
  /// `topology` supplies AS metadata for sovereignty checks.
  explicit PathVerifier(const scion::Topology& topology);

  /// Declare an ISD UPIN-enabled (verifiable end to end).
  void enable_isd(std::uint16_t isd);
  [[nodiscard]] bool is_enabled(std::uint16_t isd) const;

  /// Verify an intent against the evidence:
  ///  * trace evidence — every traced hop honors the exclusion lists and
  ///    the trace is complete;
  ///  * performance evidence — the ping's latency/loss/jitter meet the
  ///    request's bounds.
  /// The verdict is kViolated on any failed check, otherwise kSatisfied
  /// when every traced hop is in an enabled ISD and kUncertain when not.
  [[nodiscard]] VerificationReport verify(
      const select::UserRequest& request, const TraceRecord& trace,
      const simnet::PingStats& fresh_ping) const;

 private:
  const scion::Topology& topology_;
  std::set<std::uint16_t> enabled_isds_;
};

}  // namespace upin::upinfw
