// bounded_queue.hpp — bounded multi-producer / single-consumer FIFO.
//
// The shape a group-commit writer wants: producers block when the queue
// is at capacity (backpressure, instead of unbounded memory growth under
// a slow disk), and the single consumer drains *every* queued item in
// one call so a whole group shares one write + one flush.  push() hands
// back a monotone sequence number assigned in queue order; a consumer
// that counts drained items can therefore tell waiters exactly which
// prefix of the stream has been committed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <vector>

namespace upin::util {

/// Bounded MPSC queue with group drain.  All operations are thread-safe;
/// pop_all() is intended for a single consumer (multiple consumers would
/// interleave groups, breaking the sequence-number contract).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue `item`.
  /// Returns the item's 1-based sequence number, or 0 if the queue was
  /// closed (the item is dropped).  When `stalled` is non-null it is set
  /// to whether the call found the queue full and had to wait — the
  /// signal the metrics layer counts as a backpressure stall.
  std::uint64_t push(T item, bool* stalled = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stalled != nullptr) {
      *stalled = !closed_ && items_.size() >= capacity_;
    }
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return 0;
    items_.push_back(std::move(item));
    const std::uint64_t seq = ++pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return seq;
  }

  /// Non-blocking push: enqueue `item` if there is room, else return 0
  /// immediately — never waits.  The multi-tenant scheduler uses this to
  /// *count* a full tenant lane as backpressure and move on to the next
  /// tenant instead of stalling on the slow one.  When `was_full` is
  /// non-null it distinguishes the two 0 cases: true = queue full (item
  /// may be retried later), false = queue closed (item can never land).
  std::uint64_t try_push(T item, bool* was_full = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (was_full != nullptr) {
      *was_full = !closed_ && items_.size() >= capacity_;
    }
    if (closed_ || items_.size() >= capacity_) return 0;
    items_.push_back(std::move(item));
    const std::uint64_t seq = ++pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return seq;
  }

  /// Block until at least one item is queued (or the queue is closed),
  /// then move the *entire* queue contents into `out` (cleared first).
  /// Returns false only when the queue is closed and fully drained.
  bool pop_all(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out.assign(std::make_move_iterator(items_.begin()),
               std::make_move_iterator(items_.end()));
    items_.clear();
    // Notify after releasing the lock: a woken producer can then acquire
    // the mutex immediately instead of bouncing off the notifier.
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Reject further push() calls; pop_all() keeps returning until the
  /// remaining items are drained.  Wakes every blocked producer/consumer.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total number of items ever accepted (= the sequence number of the
  /// most recently pushed item).
  [[nodiscard]] std::uint64_t pushed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::uint64_t pushed_ = 0;
  bool closed_ = false;
};

}  // namespace upin::util
