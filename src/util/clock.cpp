#include "util/clock.hpp"

#include <cstdio>

namespace upin::util {

std::string timestamp_token(SimTime t) {
  // Milliseconds since experiment start, zero-padded to sort lexically.
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%012lld",
                static_cast<long long>(t.count() / 1'000'000));
  return buffer;
}

}  // namespace upin::util
