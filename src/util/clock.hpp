// clock.hpp — virtual time for deterministic measurement campaigns.
//
// The paper's measurements were taken over wall-clock hours on a live
// testbed; consecutive path tests share a timeline, which matters for the
// Fig 9 congestion-episode result.  We reproduce that timeline in virtual
// time so a full survey is instantaneous yet ordering-faithful.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace upin::util {

/// Virtual time point: nanoseconds since the start of the experiment.
using SimTime = std::chrono::nanoseconds;
using SimDuration = std::chrono::nanoseconds;

[[nodiscard]] constexpr SimTime sim_seconds(double seconds) noexcept {
  return SimTime(static_cast<std::int64_t>(seconds * 1e9));
}
[[nodiscard]] constexpr SimTime sim_millis(double millis) noexcept {
  return SimTime(static_cast<std::int64_t>(millis * 1e6));
}
[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t.count()) / 1e9;
}
[[nodiscard]] constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t.count()) / 1e6;
}

/// A monotonically advancing virtual clock.  All components of one
/// experiment share a single VirtualClock instance.
class VirtualClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advance the clock; `delta` must be non-negative.
  void advance(SimDuration delta) noexcept {
    if (delta.count() > 0) now_ += delta;
  }

  /// Jump forward to `target` if it is in the future.
  void advance_to(SimTime target) noexcept {
    if (target > now_) now_ = target;
  }

  void reset() noexcept { now_ = SimTime::zero(); }

 private:
  SimTime now_ = SimTime::zero();
};

/// Render a virtual timestamp as a compact sortable token, used in
/// paths_stats document ids (`<path_id>_<timestamp>` per paper Fig 3).
[[nodiscard]] std::string timestamp_token(SimTime t);

}  // namespace upin::util
