// crc32.hpp — CRC-32 (IEEE 802.3) checksums.
//
// Used by the docdb journal to give every appended record an integrity
// checksum, so a torn or bit-flipped line is *detected* on replay instead
// of being silently parsed (or silently dropped).
#pragma once

#include <cstdint>
#include <string_view>

namespace upin::util {

/// CRC-32 of `data` (polynomial 0xEDB88320, init/final xor 0xFFFFFFFF —
/// the zlib/PNG variant, stable across platforms).
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Incremental form: feed `data` into a running checksum.  Start from
/// `crc32_init()` and finish with `crc32_final()`.
[[nodiscard]] std::uint32_t crc32_init() noexcept;
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::string_view data) noexcept;
[[nodiscard]] std::uint32_t crc32_final(std::uint32_t state) noexcept;

}  // namespace upin::util
