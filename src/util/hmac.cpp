#include "util/hmac.hpp"

#include <array>
#include <cstring>

namespace upin::util {

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> key_block{};

  if (key.size() > kBlockSize) {
    const Digest256 hashed = Sha256::hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> inner_pad{};
  std::array<std::uint8_t, kBlockSize> outer_pad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(inner_pad);
  inner.update(message);
  const Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(inner_digest);
  return outer.finish();
}

Digest256 hmac_sha256(std::string_view key, std::string_view message) noexcept {
  return hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
}

bool digest_equal(const Digest256& a, const Digest256& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace upin::util
