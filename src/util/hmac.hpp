// hmac.hpp — HMAC-SHA256 (RFC 2104) for authenticating measurement batches.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "util/sha256.hpp"

namespace upin::util {

/// HMAC-SHA256 over `message` with `key`.
[[nodiscard]] Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> message) noexcept;

/// Convenience overload for text keys/messages.
[[nodiscard]] Digest256 hmac_sha256(std::string_view key,
                                    std::string_view message) noexcept;

/// Constant-time digest comparison (avoids timing side channels in the
/// write-access check).
[[nodiscard]] bool digest_equal(const Digest256& a, const Digest256& b) noexcept;

}  // namespace upin::util
