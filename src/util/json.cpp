#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace upin::util {

// ---------------------------------------------------------------- JsonObject

JsonObject::JsonObject(std::initializer_list<Entry> entries) {
  entries_.reserve(entries.size());
  for (const auto& entry : entries) set(entry.first, entry.second);
}

bool JsonObject::contains(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

const Value* JsonObject::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : entries_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Value* JsonObject::find(std::string_view key) noexcept {
  for (auto& [name, value] : entries_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonObject::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return;
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

bool JsonObject::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool JsonObject::operator==(const JsonObject& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  // Order-insensitive comparison: documents are equal when their fields are.
  for (const auto& [name, value] : entries_) {
    const Value* theirs = other.find(name);
    if (theirs == nullptr || !(*theirs == value)) return false;
  }
  return true;
}

// --------------------------------------------------------------------- Value

Value::Type Value::type() const noexcept {
  return static_cast<Type>(data_.index());
}

const char* Value::type_name() const noexcept {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

bool Value::as_bool() const {
  assert(is_bool());
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  if (is_double()) {
    return static_cast<std::int64_t>(std::get<double>(data_));
  }
  assert(is_int());
  return std::get<std::int64_t>(data_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  assert(is_double());
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  assert(is_string());
  return std::get<std::string>(data_);
}

const Value::Array& Value::as_array() const {
  assert(is_array());
  return std::get<Array>(data_);
}

Value::Array& Value::as_array() {
  assert(is_array());
  return std::get<Array>(data_);
}

const JsonObject& Value::as_object() const {
  assert(is_object());
  return std::get<JsonObject>(data_);
}

JsonObject& Value::as_object() {
  assert(is_object());
  return std::get<JsonObject>(data_);
}

std::optional<bool> Value::try_bool() const noexcept {
  if (is_bool()) return std::get<bool>(data_);
  return std::nullopt;
}

std::optional<std::int64_t> Value::try_int() const noexcept {
  if (is_int()) return std::get<std::int64_t>(data_);
  return std::nullopt;
}

std::optional<double> Value::try_double() const noexcept {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  if (is_double()) return std::get<double>(data_);
  return std::nullopt;
}

std::optional<std::string_view> Value::try_string() const noexcept {
  if (is_string()) return std::string_view(std::get<std::string>(data_));
  return std::nullopt;
}

const Value* Value::get(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

const Value* Value::get_path(std::string_view dotted) const noexcept {
  const Value* current = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    dotted = dot == std::string_view::npos ? std::string_view{}
                                           : dotted.substr(dot + 1);
    current = current->get(head);
    if (current == nullptr) return nullptr;
  }
  return current;
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = JsonObject{};
  assert(is_object());
  JsonObject& object = as_object();
  if (Value* existing = object.find(key)) return *existing;
  object.set(std::string(key), Value());
  return *object.find(key);
}

bool Value::operator==(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return as_double() == other.as_double();
  }
  return data_ == other.data_;
}

// ------------------------------------------------------------------- writer

namespace {

void write_escaped(const std::string& text, std::string& out) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_double(double value, std::string& out) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; store null, matching common serializers.
    out += "null";
    return;
  }
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
  // Ensure a double round-trips as a double (not reparsed as an int).
  std::string_view written(buffer, static_cast<std::size_t>(result.ptr - buffer));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos &&
      written.find('E') == std::string_view::npos) {
    out += ".0";
  }
}

void dump_value(const Value& value, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int levels) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };

  switch (value.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Value::Type::kInt: out += std::to_string(value.as_int()); break;
    case Value::Type::kDouble: write_double(value.as_double(), out); break;
    case Value::Type::kString: write_escaped(value.as_string(), out); break;
    case Value::Type::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& element : array) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        dump_value(element, indent, depth + 1, out);
      }
      newline_indent(depth);
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [name, field] : object) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        write_escaped(name, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_value(field, indent, depth + 1, out);
      }
      newline_indent(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> parse_document() {
    skip_whitespace();
    Result<Value> value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Error make_error(const std::string& message) const {
    return Error{ErrorCode::kParseError,
                 message + " at offset " + std::to_string(pos_)};
  }
  Result<Value> fail(const std::string& message) const {
    return Result<Value>(make_error(message));
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }
  char take() noexcept { return text_[pos_++]; }

  void skip_whitespace() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (at_end()) return fail("unexpected end of input");
    // Containers recurse; cap the depth so adversarial inputs
    // ("[[[[[...") cannot exhaust the stack (a §4.1.4-style hardening).
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Result<std::string> text = parse_string();
        if (!text.ok()) return Result<Value>(text.error());
        return Result<Value>(Value(std::move(text.value())));
      }
      case 't':
        if (consume_literal("true")) return Result<Value>(Value(true));
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Result<Value>(Value(false));
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Result<Value>(Value(nullptr));
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<Value> parse_object() {
    take();  // '{'
    ++depth_;
    const DepthGuard guard(depth_);
    JsonObject object;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      take();
      return Result<Value>(Value(std::move(object)));
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') return fail("expected object key");
      Result<std::string> key = parse_string();
      if (!key.ok()) return Result<Value>(key.error());
      skip_whitespace();
      if (at_end() || take() != ':') return fail("expected ':' after key");
      skip_whitespace();
      Result<Value> value = parse_value();
      if (!value.ok()) return value;
      object.set(std::move(key.value()), std::move(value.value()));
      skip_whitespace();
      if (at_end()) return fail("unterminated object");
      const char c = take();
      if (c == '}') return Result<Value>(Value(std::move(object)));
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array() {
    take();  // '['
    ++depth_;
    const DepthGuard guard(depth_);
    Value::Array array;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      take();
      return Result<Value>(Value(std::move(array)));
    }
    for (;;) {
      skip_whitespace();
      Result<Value> value = parse_value();
      if (!value.ok()) return value;
      array.push_back(std::move(value.value()));
      skip_whitespace();
      if (at_end()) return fail("unterminated array");
      const char c = take();
      if (c == ']') return Result<Value>(Value(std::move(array)));
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    take();  // '"'
    std::string out;
    for (;;) {
      if (at_end()) {
        return Result<std::string>(make_error("unterminated string"));
      }
      const char c = take();
      if (c == '"') return Result<std::string>(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        return Result<std::string>(make_error("unterminated escape"));
      }
      const char escape = take();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Result<std::string>(make_error("truncated \\u escape"));
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Result<std::string>(make_error("bad \\u escape digit"));
            }
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // passed through as two 3-byte sequences, fine for our data).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Result<std::string>(make_error("unknown escape"));
      }
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') take();
    // JSON requires at least one digit before any fraction or exponent.
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) take();
    bool is_floating = false;
    if (!at_end() && peek() == '.') {
      is_floating = true;
      take();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_floating = true;
      take();
      if (!at_end() && (peek() == '+' || peek() == '-')) take();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid number");

    if (!is_floating) {
      std::int64_t integer = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), integer);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Result<Value>(Value(integer));
      }
      // Fall through to double on overflow.
    }
    double floating = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), floating);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return fail("invalid number");
    }
    return Result<Value>(Value(floating));
  }

  static constexpr int kMaxDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth_(depth) {}
    ~DepthGuard() { --depth_; }
    int& depth_;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Value::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace upin::util
