// json.hpp — JSON document model, parser and writer (from scratch).
//
// `docdb` stores measurement documents as JSON values (paper Fig 3 schema),
// and persists collections as JSON-lines journals.  Objects preserve
// insertion order so serialized documents are stable and diffable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace upin::util {

class Value;

/// Insertion-ordered string->Value map.  Documents are small (tens of
/// fields), so linear scans beat tree/hash overhead and keep field order.
class JsonObject {
 public:
  using Entry = std::pair<std::string, Value>;
  using const_iterator = std::vector<Entry>::const_iterator;
  using iterator = std::vector<Entry>::iterator;

  JsonObject() = default;
  JsonObject(std::initializer_list<Entry> entries);

  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;
  /// Insert or overwrite.
  void set(std::string key, Value value);
  /// Remove `key` if present; returns whether something was removed.
  bool erase(std::string_view key);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }
  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }

  bool operator==(const JsonObject& other) const;

 private:
  std::vector<Entry> entries_;
};

/// A JSON value: null, bool, 64-bit int, double, string, array or object.
/// Integers and doubles are kept distinct (ids and counters stay exact)
/// but compare and read interchangeably through `as_double()`.
class Value {
 public:
  using Array = std::vector<Value>;
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}             // NOLINT
  Value(bool value) noexcept : data_(value) {}                   // NOLINT
  Value(int value) noexcept : data_(std::int64_t{value}) {}      // NOLINT
  Value(unsigned value) noexcept                                 // NOLINT
      : data_(static_cast<std::int64_t>(value)) {}
  Value(std::int64_t value) noexcept : data_(value) {}           // NOLINT
  Value(std::size_t value) noexcept                              // NOLINT
      : data_(static_cast<std::int64_t>(value)) {}
  Value(double value) noexcept : data_(value) {}                 // NOLINT
  Value(const char* value) : data_(std::string(value)) {}        // NOLINT
  Value(std::string value) : data_(std::move(value)) {}          // NOLINT
  Value(std::string_view value) : data_(std::string(value)) {}   // NOLINT
  Value(Array value) : data_(std::move(value)) {}                // NOLINT
  Value(JsonObject value) : data_(std::move(value)) {}           // NOLINT

  /// Build an object value from key/value pairs.
  static Value object(std::initializer_list<JsonObject::Entry> entries) {
    return Value(JsonObject(entries));
  }
  /// Build an array value from elements.
  static Value array(std::initializer_list<Value> elements) {
    return Value(Array(elements));
  }

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] const char* type_name() const noexcept;

  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::kDouble; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  // Checked accessors; asserting on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Numeric read: works for both kInt and kDouble.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonObject& as_object();

  // Optional-style reads that never assert.
  [[nodiscard]] std::optional<bool> try_bool() const noexcept;
  [[nodiscard]] std::optional<std::int64_t> try_int() const noexcept;
  [[nodiscard]] std::optional<double> try_double() const noexcept;
  [[nodiscard]] std::optional<std::string_view> try_string() const noexcept;

  /// Object field lookup; nullptr when not an object or key missing.
  [[nodiscard]] const Value* get(std::string_view key) const noexcept;
  /// Dotted-path lookup, e.g. `get_path("stats.latency_ms")`.
  [[nodiscard]] const Value* get_path(std::string_view dotted) const noexcept;

  /// Object field write access (creates the field, converts null->object).
  Value& operator[](std::string_view key);

  /// Deep equality.  Int/double compare numerically (1 == 1.0).
  bool operator==(const Value& other) const;

  /// Serialize.  `indent < 0` -> compact single line; otherwise pretty
  /// printed with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON text.  Trailing garbage is an error.
  [[nodiscard]] static Result<Value> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               JsonObject>
      data_;
};

}  // namespace upin::util
