#include "util/lamport.hpp"

namespace upin::util {

namespace {

Digest256 random_block(Rng& rng) noexcept {
  Digest256 block;
  for (std::size_t i = 0; i < block.size(); i += 8) {
    const std::uint64_t word = rng.next();
    for (std::size_t j = 0; j < 8; ++j) {
      block[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return block;
}

/// Bit `i` (0 = most significant bit of byte 0) of a digest.
bool digest_bit(const Digest256& digest, std::size_t i) noexcept {
  return (digest[i / 8] >> (7 - (i % 8))) & 1;
}

}  // namespace

Digest256 LamportPublicKey::fingerprint() const noexcept {
  Sha256 hasher;
  for (const auto& pair : images) {
    hasher.update(pair[0]);
    hasher.update(pair[1]);
  }
  return hasher.finish();
}

LamportKeyPair lamport_generate(Rng& rng) noexcept {
  LamportKeyPair pair;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    for (std::size_t value = 0; value < 2; ++value) {
      pair.private_key.preimages[bit][value] = random_block(rng);
      pair.public_key.images[bit][value] =
          Sha256::hash(pair.private_key.preimages[bit][value]);
    }
  }
  return pair;
}

LamportSignature lamport_sign(const LamportPrivateKey& key,
                              std::string_view message) noexcept {
  const Digest256 digest = Sha256::hash(message);
  LamportSignature signature;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    signature.revealed[bit] = key.preimages[bit][digest_bit(digest, bit) ? 1 : 0];
  }
  return signature;
}

bool lamport_verify(const LamportPublicKey& key, std::string_view message,
                    const LamportSignature& signature) noexcept {
  const Digest256 digest = Sha256::hash(message);
  for (std::size_t bit = 0; bit < 256; ++bit) {
    const std::size_t value = digest_bit(digest, bit) ? 1 : 0;
    if (Sha256::hash(signature.revealed[bit]) != key.images[bit][value]) {
      return false;
    }
  }
  return true;
}

}  // namespace upin::util
