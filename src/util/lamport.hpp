// lamport.hpp — Lamport one-time signatures over SHA-256.
//
// The paper (§4.2.2) designs, but does not implement, public-key-certified
// write access to the measurement database.  We implement that design with
// a hash-based scheme that needs no external crypto library: Lamport OTS.
//
// A key pair is 2×256 random 32-byte preimages (private) and their hashes
// (public).  Signing a message reveals, per digest bit, one of the two
// preimages.  Each key must sign at most once; the trust layer in
// `upin::scion` issues fresh certified keys per measurement session.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace upin::util {

/// 256 pairs of 32-byte blocks: block[bit][value-of-bit].
struct LamportPrivateKey {
  std::array<std::array<Digest256, 2>, 256> preimages;
};

/// Hashes of the private preimages, in the same layout.
struct LamportPublicKey {
  std::array<std::array<Digest256, 2>, 256> images;

  /// A short fingerprint identifying this key (hash of all images).
  [[nodiscard]] Digest256 fingerprint() const noexcept;

  friend bool operator==(const LamportPublicKey&, const LamportPublicKey&) = default;
};

/// One revealed preimage per message-digest bit.
struct LamportSignature {
  std::array<Digest256, 256> revealed;
};

struct LamportKeyPair {
  LamportPrivateKey private_key;
  LamportPublicKey public_key;
};

/// Deterministically generate a key pair from `rng` (callers fork a
/// labelled substream per key).
[[nodiscard]] LamportKeyPair lamport_generate(Rng& rng) noexcept;

/// Sign the SHA-256 digest of `message`.  One-time: reusing a private key
/// for two different messages leaks enough preimages to forge.
[[nodiscard]] LamportSignature lamport_sign(const LamportPrivateKey& key,
                                            std::string_view message) noexcept;

/// Verify a signature against a public key and message.
[[nodiscard]] bool lamport_verify(const LamportPublicKey& key,
                                  std::string_view message,
                                  const LamportSignature& signature) noexcept;

}  // namespace upin::util
