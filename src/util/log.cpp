#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace upin::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
Log::Sink g_sink;  // guarded by g_sink_mutex

void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel Log::level() noexcept { return g_level.load(); }

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace upin::util
