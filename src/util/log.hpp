// log.hpp — minimal leveled, thread-safe logger.
//
// The test-suite logs progress and fault-handling decisions (retries,
// skipped servers) the way the paper's bash wrapper reported them.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace upin::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level) noexcept;

/// Process-wide logger.  Defaults to kWarn on stderr so tests stay quiet;
/// examples and benches raise it to kInfo.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Replace the output sink (used by tests to capture messages).
  /// Passing nullptr restores the default stderr sink.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view message);

  static void debug(std::string_view message) { write(LogLevel::kDebug, message); }
  static void info(std::string_view message) { write(LogLevel::kInfo, message); }
  static void warn(std::string_view message) { write(LogLevel::kWarn, message); }
  static void error(std::string_view message) { write(LogLevel::kError, message); }
};

}  // namespace upin::util
