// log.hpp — minimal leveled, thread-safe logger.
//
// The test-suite logs progress and fault-handling decisions (retries,
// skipped servers) the way the paper's bash wrapper reported them.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

namespace upin::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level) noexcept;

/// Process-wide logger.  Defaults to kWarn on stderr so tests stay quiet;
/// examples and benches raise it to kInfo.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Replace the output sink (used by tests to capture messages).
  /// Passing nullptr restores the default stderr sink.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view message);

  /// Would a message at `level` pass the filter?  The gate behind the
  /// lazy overloads, public so callers can skip expensive setup too.
  [[nodiscard]] static bool enabled(LogLevel lvl) noexcept {
    return lvl >= level();
  }

  static void debug(std::string_view message) { write(LogLevel::kDebug, message); }
  static void info(std::string_view message) { write(LogLevel::kInfo, message); }
  static void warn(std::string_view message) { write(LogLevel::kWarn, message); }
  static void error(std::string_view message) { write(LogLevel::kError, message); }

  // Lazy overloads: pass a callable returning the message and it is only
  // invoked — no formatting, no allocation — when the level is enabled.
  // Debug-level instrumentation on hot paths (journal writer, retry loop)
  // therefore costs one atomic load at the default kWarn.
  template <typename Builder>
    requires std::is_invocable_v<Builder&>
  static void write(LogLevel lvl, Builder&& builder) {
    if (!enabled(lvl)) return;
    const std::string message(builder());
    write(lvl, std::string_view(message));
  }

  template <typename Builder>
    requires std::is_invocable_v<Builder&>
  static void debug(Builder&& builder) {
    write(LogLevel::kDebug, std::forward<Builder>(builder));
  }
  template <typename Builder>
    requires std::is_invocable_v<Builder&>
  static void info(Builder&& builder) {
    write(LogLevel::kInfo, std::forward<Builder>(builder));
  }
  template <typename Builder>
    requires std::is_invocable_v<Builder&>
  static void warn(Builder&& builder) {
    write(LogLevel::kWarn, std::forward<Builder>(builder));
  }
  template <typename Builder>
    requires std::is_invocable_v<Builder&>
  static void error(Builder&& builder) {
    write(LogLevel::kError, std::forward<Builder>(builder));
  }
};

}  // namespace upin::util
