#include "util/result.hpp"

namespace upin::util {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kBadResponse: return "bad_response";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kDataLoss: return "data_loss";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kRevoked: return "revoked";
    case ErrorCode::kExpired: return "expired";
  }
  return "unknown";
}

}  // namespace upin::util
