// result.hpp — lightweight error handling for fallible operations.
//
// The measurement pipeline talks to a dynamic, fallible network (paper
// §4.1.2: data loss, server failure, error messages).  We propagate those
// conditions as values, not exceptions, so callers must acknowledge them.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace upin::util {

/// Category of a failure, mirroring the fault classes of paper §4.1.2.
enum class ErrorCode {
  kInvalidArgument,   ///< malformed input (bad address, bad predicate, ...)
  kNotFound,          ///< entity does not exist (collection, path, AS, ...)
  kUnreachable,       ///< destination down / no path (server failure)
  kTimeout,           ///< measurement produced no answer in time
  kBadResponse,       ///< server answered, but with garbage (error message)
  kPermissionDenied,  ///< PKC write-access check failed
  kDataLoss,          ///< storage or transfer lost data
  kParseError,        ///< serialization / deserialization failure
  kConflict,          ///< duplicate _id or conflicting update
  kInternal,          ///< invariant violation inside this library
  kRevoked,           ///< path revoked by the control plane (SCMP revocation)
  kExpired,           ///< path/segment lifetime elapsed without re-beaconing
};

/// Human-readable name of an ErrorCode (stable, for logs and tests).
const char* to_string(ErrorCode code) noexcept;

/// A failure: a coarse code plus a free-form human-readable message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  friend bool operator==(const Error&, const Error&) = default;
};

/// Minimal expected-like type: either a value or an Error.
///
/// `Result<void>` is spelled `Status` below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string message)
      : state_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }
  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(state_);
  }

  /// Value if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result carrying no value: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string message)
      : error_{code, std::move(message)}, failed_(true) {}

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

  static Status success() { return {}; }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace upin::util
