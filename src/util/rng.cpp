#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace upin::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed with splitmix64, per the xoshiro authors' guidance;
  // guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::string_view label) const noexcept {
  std::uint64_t mix = s_[0] ^ rotl(s_[3], 17) ^ fnv1a64(label);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~range + 1) % range;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

}  // namespace upin::util
