// rng.hpp — deterministic random number generation.
//
// Every stochastic component of the simulator (jitter, background traffic,
// overflow episodes) draws from an Rng seeded from a single experiment
// seed, so a full survey run is bit-reproducible.  Substreams are forked
// by label (`fork("link:AMS-FRA")`), which keeps draws independent of the
// order in which other components consume randomness.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace upin::util {

/// SplitMix64: used to expand seeds and hash labels into stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a string, for label-derived substreams.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// xoshiro256** PRNG — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Derive an independent substream tied to `label`.  Forking the same
  /// label from the same parent always yields the same stream.
  [[nodiscard]] Rng fork(std::string_view label) const noexcept;

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (cached spare).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed jitter).
  double pareto(double xm, double alpha) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace upin::util
