// sha256.hpp — from-scratch SHA-256 (FIPS 180-4).
//
// Used by the trust layer (Lamport one-time signatures, HMAC) that gates
// write access to the measurement database — the PKC design the paper
// specifies in §4.2.2 but leaves unimplemented.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace upin::util {

/// A 256-bit digest.
using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorb bytes.  May be called repeatedly.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalize and return the digest.  The hasher must not be reused
  /// afterwards without re-construction.
  [[nodiscard]] Digest256 finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest256 hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest256 hash(std::string_view text) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Digest256& digest);

/// Lowercase hex encoding of arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace upin::util
