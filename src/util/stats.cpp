#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace upin::util {

void RunningMoments::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningMoments::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const noexcept {
  return std::sqrt(variance());
}

double quantile(std::span<const double> samples, double q) {
  assert(!samples.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  RunningMoments moments;
  for (const double s : samples) moments.add(s);
  return moments.stddev();
}

double median(std::span<const double> samples) {
  return quantile(samples, 0.5);
}

BoxStats box_stats(std::span<const double> samples) {
  assert(!samples.empty());
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  BoxStats stats;
  stats.count = sorted.size();
  stats.minimum = sorted.front();
  stats.maximum = sorted.back();
  stats.mean = mean(sorted);
  stats.q1 = quantile(sorted, 0.25);
  stats.median = quantile(sorted, 0.5);
  stats.q3 = quantile(sorted, 0.75);
  stats.iqr = stats.q3 - stats.q1;

  const double fence_low = stats.q1 - 1.5 * stats.iqr;
  const double fence_high = stats.q3 + 1.5 * stats.iqr;

  // Whiskers reach the most extreme samples inside the fences.
  stats.whisker_low = stats.q1;
  stats.whisker_high = stats.q3;
  for (const double s : sorted) {
    if (s >= fence_low) {
      stats.whisker_low = s;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= fence_high) {
      stats.whisker_high = *it;
      break;
    }
  }
  for (const double s : sorted) {
    if (s < fence_low || s > fence_high) stats.outliers.push_back(s);
  }
  return stats;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {
  assert(hi > lo);
}

std::size_t bucket_index(double lo, double width, std::size_t bins,
                         double sample) noexcept {
  if (bins == 0) return 0;
  if (std::isnan(sample)) return 0;
  const double offset = (sample - lo) / width;
  if (!(offset > 0.0)) return 0;  // at-or-below lo, and -inf
  if (offset >= static_cast<double>(bins)) return bins - 1;  // above hi, +inf
  return static_cast<std::size_t>(offset);
}

void Histogram::add(double sample) noexcept {
  ++counts_[bucket_index(lo_, width_, counts_.size(), sample)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace upin::util
