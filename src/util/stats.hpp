// stats.hpp — descriptive statistics for measurement analysis.
//
// The paper presents its results as whisker (box) plots, histograms and
// averages (§6).  This module computes exactly those summaries: Tukey box
// statistics (quartiles, IQR fences, outliers), quantiles with linear
// interpolation, streaming moments (Welford), and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace upin::util {

/// Streaming mean/variance accumulator (Welford's algorithm) — numerically
/// stable for long measurement campaigns.
class RunningMoments {
 public:
  void add(double sample) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile with linear interpolation between order statistics
/// (the "linear"/type-7 definition used by numpy and matplotlib).
/// `q` in [0,1].  Asserts on an empty sample.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

[[nodiscard]] double mean(std::span<const double> samples);
[[nodiscard]] double stddev(std::span<const double> samples);
[[nodiscard]] double median(std::span<const double> samples);

/// Tukey box-plot statistics: quartiles, whiskers at the most extreme
/// samples within 1.5×IQR of the box, and the outliers beyond them.
struct BoxStats {
  std::size_t count = 0;
  double minimum = 0.0;
  double maximum = 0.0;
  double mean = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double iqr = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::vector<double> outliers;
};

/// Compute box statistics.  Asserts on an empty sample.
[[nodiscard]] BoxStats box_stats(std::span<const double> samples);

/// Fixed-width bucket math shared by Histogram and the metrics layer
/// (obs::LatencyHistogram).  Samples outside [lo, lo + width*bins) are
/// clamped into the edge bins.  Non-finite input is guarded: NaN and -inf
/// land in bin 0, +inf in the last bin — the cast of an unbounded offset
/// to an index would otherwise be undefined behaviour.
[[nodiscard]] std::size_t bucket_index(double lo, double width,
                                       std::size_t bins,
                                       double sample) noexcept;

/// Fixed-width histogram over [lo, hi) with `bins` bins; samples outside
/// the range are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation of two equally sized samples; 0 when degenerate.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace upin::util
