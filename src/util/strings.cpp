#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace upin::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view text) noexcept {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view text, int base) noexcept {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool wildcard_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative matcher with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace upin::util
