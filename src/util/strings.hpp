// strings.hpp — small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace upin::util {

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Join parts with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Parse a signed 64-bit decimal integer; nullopt on any deviation.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text) noexcept;

/// Parse an unsigned 64-bit integer in the given base (10 or 16).
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view text,
                                                      int base = 10) noexcept;

/// Parse a double; nullopt on any deviation.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Lowercase a copy (ASCII).
[[nodiscard]] std::string to_lower(std::string_view text);

/// Glob-free wildcard match used by simple filters: `*` matches any run of
/// characters, `?` exactly one.
[[nodiscard]] bool wildcard_match(std::string_view pattern,
                                  std::string_view text) noexcept;

}  // namespace upin::util
