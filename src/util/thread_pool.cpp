#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace upin::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t count = threads;
  if (count == 0) {
    count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // exceptions are captured in the packaged_task's future
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = pool.thread_count();
  const std::size_t chunk = std::max<std::size_t>(1, (count + workers - 1) / workers);

  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    futures.push_back(pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace upin::util
