// thread_pool.hpp — explicit, bounded parallelism.
//
// Measurement post-processing (aggregating thousands of paths_stats
// documents into per-path summaries) and the benchmark parameter sweeps
// are embarrassingly parallel.  Per the Core Guidelines (CP.*) we keep
// shared mutable state out of worker tasks: `parallel_for` hands each
// worker a disjoint index range and the caller owns the output slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace upin::util {

/// Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Block until every queued task has run.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run `body(i)` for every i in [0, count) across `pool`'s workers in
/// contiguous chunks.  Blocks until all iterations complete.  Exceptions
/// from the body propagate (first one wins).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace upin::util
