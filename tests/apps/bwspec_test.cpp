// Tests for apps/bwspec: the bwtester parameter mini-language (§3.3).
#include "apps/bwspec.hpp"

#include <gtest/gtest.h>

namespace upin::apps {
namespace {

TEST(BwSpec, ParsesFullyConstrained) {
  const auto spec = BwSpec::parse("3,64,7031,12Mbps");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(*spec.value().duration_s, 3.0);
  EXPECT_DOUBLE_EQ(*spec.value().packet_bytes, 64.0);
  EXPECT_DOUBLE_EQ(*spec.value().packet_count, 7031.0);
  EXPECT_DOUBLE_EQ(*spec.value().target_mbps, 12.0);
}

TEST(BwSpec, ParsesThePaperExample) {
  // "5,100,?,150Mbps specifies that the packet size is 100 bytes, sent
  // over 5 seconds, resulting in a bandwidth of 150Mbps" (§3.3).
  const auto spec = BwSpec::parse("5,100,?,150Mbps");
  ASSERT_TRUE(spec.ok());
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  // count = 150e6 * 5 / (8 * 100) = 937500.
  EXPECT_DOUBLE_EQ(*resolved.value().packet_count, 937500.0);
}

TEST(BwSpec, WildcardBandwidthResolved) {
  const auto spec = BwSpec::parse("3,1000,4500,?");
  ASSERT_TRUE(spec.ok());
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_DOUBLE_EQ(*resolved.value().target_mbps, 12.0);
}

TEST(BwSpec, WildcardDurationResolved) {
  const auto spec = BwSpec::parse("?,1000,4500,12Mbps");
  ASSERT_TRUE(spec.ok());
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_DOUBLE_EQ(*resolved.value().duration_s, 3.0);
}

TEST(BwSpec, WildcardSizeResolved) {
  const auto spec = BwSpec::parse("3,?,4500,12Mbps");
  ASSERT_TRUE(spec.ok());
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_DOUBLE_EQ(*resolved.value().packet_bytes, 1000.0);
}

TEST(BwSpec, MtuLiteralResolvesToPathMtu) {
  const auto spec = BwSpec::parse("3,MTU,?,12Mbps");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().packet_is_mtu);
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_DOUBLE_EQ(*resolved.value().packet_bytes, 1452.0);
}

TEST(BwSpec, LowercaseMtuAccepted) {
  const auto spec = BwSpec::parse("3,mtu,?,12Mbps");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().packet_is_mtu);
}

TEST(BwSpec, BandwidthUnits) {
  EXPECT_DOUBLE_EQ(*BwSpec::parse("3,64,?,12000kbps").value().target_mbps, 12.0);
  EXPECT_DOUBLE_EQ(*BwSpec::parse("3,64,?,12000000bps").value().target_mbps, 12.0);
  EXPECT_DOUBLE_EQ(*BwSpec::parse("3,64,?,12").value().target_mbps, 12.0);
}

TEST(BwSpec, RejectsTwoWildcards) {
  EXPECT_FALSE(BwSpec::parse("3,?,?,12Mbps").ok());
  EXPECT_FALSE(BwSpec::parse("?,64,?,12Mbps").ok());
}

TEST(BwSpec, RejectsWrongFieldCount) {
  EXPECT_FALSE(BwSpec::parse("3,64,12Mbps").ok());
  EXPECT_FALSE(BwSpec::parse("3,64,?,12Mbps,extra").ok());
  EXPECT_FALSE(BwSpec::parse("").ok());
}

TEST(BwSpec, RejectsGarbageFields) {
  EXPECT_FALSE(BwSpec::parse("x,64,?,12Mbps").ok());
  EXPECT_FALSE(BwSpec::parse("3,64,?,fastMbps").ok());
}

TEST(BwSpec, ResolveEnforcesDurationCap) {
  // Duration must be in (0, 10] seconds (§3.3 "up to 10 seconds").
  EXPECT_FALSE(BwSpec::parse("11,64,?,12Mbps").value().resolve(1452).ok());
  EXPECT_FALSE(BwSpec::parse("0,64,?,12Mbps").value().resolve(1452).ok());
  EXPECT_TRUE(BwSpec::parse("10,64,?,12Mbps").value().resolve(1452).ok());
}

TEST(BwSpec, ResolveEnforcesMinimumPacketSize) {
  // "at least 4 bytes" (§3.3).
  EXPECT_FALSE(BwSpec::parse("3,3,?,12Mbps").value().resolve(1452).ok());
  EXPECT_TRUE(BwSpec::parse("3,4,?,12Mbps").value().resolve(1452).ok());
}

TEST(BwSpec, ResolveRejectsNonPositiveBandwidth) {
  EXPECT_FALSE(BwSpec::parse("3,64,?,0Mbps").value().resolve(1452).ok());
}

TEST(BwSpec, ResolvedAlgebraIsConsistent) {
  // After resolution, bandwidth == count * size * 8 / duration (±1 packet
  // of rounding).
  const auto resolved = BwSpec::parse("3,64,?,12Mbps").value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  const BwSpec& s = resolved.value();
  const double implied_mbps =
      *s.packet_count * *s.packet_bytes * 8.0 / *s.duration_s / 1e6;
  EXPECT_NEAR(implied_mbps, *s.target_mbps, 0.01);
}

TEST(BwSpec, ToStringRoundTrips) {
  const auto spec = BwSpec::parse("3,64,?,12Mbps");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().to_string(), "3,64,?,12Mbps");
  const auto mtu = BwSpec::parse("3,MTU,?,150Mbps");
  ASSERT_TRUE(mtu.ok());
  EXPECT_EQ(mtu.value().to_string(), "3,MTU,?,150Mbps");
}

TEST(BwSpec, ResolveRejectsUnderConstrainedStruct) {
  // Unreachable through parse() (which caps wildcards at one), but the
  // struct is public API: two unknowns cannot be resolved.
  BwSpec spec;
  spec.duration_s = 3.0;
  spec.packet_bytes = 64.0;
  EXPECT_FALSE(spec.resolve(1452.0).ok());
}

TEST(BwSpec, ResolveKeepsFullyConstrainedSpecUntouched) {
  BwSpec spec;
  spec.duration_s = 3.0;
  spec.packet_bytes = 64.0;
  spec.packet_count = 1000.0;
  spec.target_mbps = 12.0;  // inconsistent with count, but all given
  const auto resolved = spec.resolve(1452.0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_DOUBLE_EQ(*resolved.value().packet_count, 1000.0);
  EXPECT_DOUBLE_EQ(*resolved.value().target_mbps, 12.0);
}

TEST(BwSpec, WhitespaceTolerated) {
  const auto spec = BwSpec::parse(" 3 , 64 , ? , 12Mbps ");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(*spec.value().target_mbps, 12.0);
}

}  // namespace
}  // namespace upin::apps
