// Tests for apps/host: the scion command surface (§3.3).
#include "apps/host.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace upin::apps {
namespace {

using scion::scionlab::kEthzAp;
using scion::scionlab::kGermanyAp;
using scion::scionlab::kIreland;

class HostTest : public ::testing::Test {
 protected:
  HostTest() : env_(scion::scionlab_topology()),
               host_(env_, 42, env_.user_as, "10.0.8.1") {}
  scion::ScionlabEnv env_;
  ScionHost host_;
  const scion::SnetAddress ireland_{kIreland, "172.31.43.7"};
};

TEST_F(HostTest, AddressReportsLocalAs) {
  const AddressInfo info = host_.address();
  EXPECT_EQ(info.local.to_string(), "17-ffaa:1:f00,[10.0.8.1]");
  EXPECT_EQ(info.role, scion::AsRole::kUser);
  EXPECT_FALSE(info.as_name.empty());
}

TEST_F(HostTest, ShowpathsHonorsMaxPaths) {
  ShowpathsOptions options;
  options.max_paths = 10;  // the command's default
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  EXPECT_EQ(listings.value().size(), 10u);
  options.max_paths = 40;
  const auto more = host_.showpaths(kIreland, options);
  ASSERT_TRUE(more.ok());
  EXPECT_GT(more.value().size(), 10u);
}

TEST_F(HostTest, ShowpathsRankedByHopCount) {
  ShowpathsOptions options;
  options.max_paths = 40;
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  std::size_t previous = 0;
  for (const PathListing& listing : listings.value()) {
    EXPECT_GE(listing.path.hop_count(), previous);
    previous = listing.path.hop_count();
  }
}

TEST_F(HostTest, ShowpathsExtendedRendersMetadata) {
  ShowpathsOptions extended;
  extended.extended = true;
  const auto listings = host_.showpaths(kIreland, extended);
  ASSERT_TRUE(listings.ok());
  EXPECT_NE(listings.value().front().render.find("MTU:"), std::string::npos);
  EXPECT_NE(listings.value().front().render.find("Latency:"), std::string::npos);

  ShowpathsOptions plain;
  const auto bare = host_.showpaths(kIreland, plain);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().front().render.find("MTU:"), std::string::npos);
}

TEST_F(HostTest, ShowpathsUnknownDestination) {
  EXPECT_EQ(host_.showpaths(scion::IsdAsn(99, 1), {}).error().code,
            util::ErrorCode::kNotFound);
}

TEST_F(HostTest, PingDefaultsToBestPath) {
  const auto report = host_.ping(ireland_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().stats.sent(), 30u);
  EXPECT_EQ(report.value().path.destination(), kIreland);
  ASSERT_TRUE(report.value().stats.avg_ms().has_value());
}

TEST_F(HostTest, PingHonorsSequence) {
  ShowpathsOptions options;
  options.max_paths = 40;
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  // Pick a Singapore-detour path: much higher RTT than the best path.
  const PathListing* detour = nullptr;
  for (const PathListing& listing : listings.value()) {
    if (listing.path.traverses(scion::scionlab::kSingapore)) {
      detour = &listing;
      break;
    }
  }
  ASSERT_NE(detour, nullptr);
  PingOptions ping_options;
  ping_options.sequence = detour->path.sequence();
  const auto via_detour = host_.ping(ireland_, ping_options);
  const auto via_best = host_.ping(ireland_, {});
  ASSERT_TRUE(via_detour.ok());
  ASSERT_TRUE(via_best.ok());
  EXPECT_EQ(via_detour.value().path.sequence(), detour->path.sequence());
  EXPECT_GT(*via_detour.value().stats.avg_ms(),
            3.0 * *via_best.value().stats.avg_ms());
}

TEST_F(HostTest, PingRejectsForeignSequence) {
  PingOptions options;
  options.sequence = "17-ffaa:1:f00#0,1 19-ffaa:0:1301#1,0";  // not a path
  EXPECT_EQ(host_.ping(ireland_, options).error().code,
            util::ErrorCode::kNotFound);
}

TEST_F(HostTest, PingAdvancesVirtualClock) {
  const util::SimTime before = host_.clock().now();
  PingOptions options;
  options.count = 30;
  options.interval_s = 0.1;
  ASSERT_TRUE(host_.ping(ireland_, options).ok());
  EXPECT_DOUBLE_EQ(util::to_seconds(host_.clock().now() - before), 3.0);
}

TEST_F(HostTest, PingSummaryIsHumanReadable) {
  const auto report = host_.ping(ireland_, {});
  ASSERT_TRUE(report.ok());
  const std::string summary = report.value().summary();
  EXPECT_NE(summary.find("30 packets sent"), std::string::npos);
  EXPECT_NE(summary.find("avg RTT"), std::string::npos);
}

TEST_F(HostTest, TracerouteReportsEveryHop) {
  const auto report = host_.traceroute(ireland_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().trace.hops.size(),
            report.value().path.hop_count() - 1);
  // RTTs grow along the path (strictly here: geography dominates).
  double previous = 0.0;
  for (const simnet::TraceHop& hop : report.value().trace.hops) {
    ASSERT_TRUE(hop.rtt_ms.has_value());
    EXPECT_GT(*hop.rtt_ms, previous * 0.8);
    previous = *hop.rtt_ms;
  }
}

TEST_F(HostTest, TracerouteHonorsSequence) {
  ShowpathsOptions options;
  options.max_paths = 40;
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  const PathListing* detour = nullptr;
  for (const PathListing& listing : listings.value()) {
    if (listing.path.traverses(scion::scionlab::kSingapore)) {
      detour = &listing;
      break;
    }
  }
  ASSERT_NE(detour, nullptr);
  const auto report =
      host_.traceroute(ireland_, detour->path.sequence());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path.sequence(), detour->path.sequence());
  // The Singapore hop appears in the per-hop output.
  bool saw_singapore = false;
  for (std::size_t i = 1; i < report.value().path.hops().size(); ++i) {
    if (report.value().path.hops()[i].ia == scion::scionlab::kSingapore) {
      saw_singapore = true;
    }
  }
  EXPECT_TRUE(saw_singapore);
}

TEST_F(HostTest, BwtestDefaultsScToCs) {
  BwtestOptions options;
  options.cs_spec = "3,1000,?,12Mbps";
  const auto report = host_.bwtestclient(ireland_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(*report.value().sc_resolved.target_mbps, 12.0);
  EXPECT_DOUBLE_EQ(*report.value().sc_resolved.packet_bytes, 1000.0);
  EXPECT_GT(report.value().client_to_server.achieved_mbps, 0.0);
  EXPECT_GT(report.value().server_to_client.achieved_mbps, 0.0);
}

TEST_F(HostTest, BwtestSeparateScSpec) {
  BwtestOptions options;
  options.cs_spec = "3,1000,?,12Mbps";
  options.sc_spec = "3,64,?,5Mbps";
  const auto report = host_.bwtestclient(ireland_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(*report.value().sc_resolved.target_mbps, 5.0);
  EXPECT_DOUBLE_EQ(*report.value().sc_resolved.packet_bytes, 64.0);
}

TEST_F(HostTest, BwtestMtuSpecUsesPathMtu) {
  BwtestOptions options;
  options.cs_spec = "3,MTU,?,12Mbps";
  const auto report = host_.bwtestclient(ireland_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(*report.value().cs_resolved.packet_bytes,
                   report.value().path.mtu());
}

TEST_F(HostTest, BwtestUpstreamBelowDownstream) {
  BwtestOptions options;
  options.cs_spec = "3,MTU,?,12Mbps";
  const auto report = host_.bwtestclient(ireland_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report.value().client_to_server.achieved_mbps,
            report.value().server_to_client.achieved_mbps)
      << "access link is asymmetric (paper §6.2)";
}

TEST_F(HostTest, BwtestAdvancesClockByBothDirections) {
  const util::SimTime before = host_.clock().now();
  BwtestOptions options;
  options.cs_spec = "3,1000,?,12Mbps";
  ASSERT_TRUE(host_.bwtestclient(ireland_, options).ok());
  EXPECT_DOUBLE_EQ(util::to_seconds(host_.clock().now() - before), 6.0);
}

TEST_F(HostTest, BwtestRejectsBadSpec) {
  BwtestOptions options;
  options.cs_spec = "3,?,?,12Mbps";
  EXPECT_FALSE(host_.bwtestclient(ireland_, options).ok());
}

TEST_F(HostTest, InjectedOutageIsObservable) {
  host_.inject_outage(kEthzAp, util::SimTime::zero(),
                      util::sim_seconds(1000.0));
  const auto report = host_.ping(ireland_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.value().stats.loss_pct(), 100.0);
}

TEST_F(HostTest, ShowpathsStatusReflectsOutage) {
  host_.inject_outage(scion::scionlab::kSingapore, util::SimTime::zero(),
                      util::sim_seconds(1000.0));
  ShowpathsOptions options;
  options.max_paths = 40;
  options.extended = true;
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  bool saw_timeout = false;
  for (const PathListing& listing : listings.value()) {
    if (listing.path.traverses(scion::scionlab::kSingapore)) {
      EXPECT_EQ(listing.path.status(), "timeout");
      EXPECT_NE(listing.render.find("Status: timeout"), std::string::npos);
      saw_timeout = true;
    } else {
      EXPECT_EQ(listing.path.status(), "alive");
    }
  }
  EXPECT_TRUE(saw_timeout);
}

TEST_F(HostTest, ShowpathsStatusRecoversAfterOutage) {
  host_.inject_outage(scion::scionlab::kSingapore, util::SimTime::zero(),
                      util::sim_seconds(10.0));
  host_.clock().advance(util::sim_seconds(20.0));  // outage over
  ShowpathsOptions options;
  options.max_paths = 40;
  const auto listings = host_.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());
  for (const PathListing& listing : listings.value()) {
    EXPECT_EQ(listing.path.status(), "alive");
  }
}

TEST_F(HostTest, RouteOfMapsEveryHop) {
  ShowpathsOptions options;
  const auto listings = host_.showpaths(kGermanyAp, options);
  ASSERT_TRUE(listings.ok());
  const auto route = host_.route_of(listings.value().front().path);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().size(), listings.value().front().path.hop_count());
}

TEST_F(HostTest, DeterministicAcrossIdenticalHosts) {
  ScionHost other(env_, 42, env_.user_as, "10.0.8.1");
  const auto a = host_.ping(ireland_, {});
  const auto b = other.ping(ireland_, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a.value().stats.avg_ms(), *b.value().stats.avg_ms());
}

// ----------------------------------------------------- multipath flows

TEST_F(HostTest, MultipathPingRejectsEmptyAndBadSpecs) {
  EXPECT_EQ(host_.multipath_ping(ireland_, {}, {}).error().code,
            util::ErrorCode::kInvalidArgument);
  const auto listings = host_.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  SubflowSpec bad;
  bad.sequence = listings.value().front().path.sequence();
  bad.weight = 0.0;
  EXPECT_EQ(host_.multipath_ping(ireland_, {bad}, {}).error().code,
            util::ErrorCode::kInvalidArgument);
}

TEST_F(HostTest, MultipathPingSplitsProbesByWeight) {
  const auto listings = host_.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  ASSERT_GE(listings.value().size(), 2u);
  SubflowSpec heavy{listings.value()[0].path.sequence(), 3.0};
  SubflowSpec light{listings.value()[1].path.sequence(), 1.0};
  MultipathPingOptions options;
  options.count = 20;
  const auto report = host_.multipath_ping(ireland_, {heavy, light}, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().subflows.size(), 2u);
  // Largest-remainder split of 20 probes at weights 3:1.
  EXPECT_EQ(report.value().subflows[0].probes, 15u);
  EXPECT_EQ(report.value().subflows[1].probes, 5u);
  EXPECT_TRUE(report.value().subflows[0].ok);
  EXPECT_TRUE(report.value().subflows[1].ok);
  // The aggregate concatenates what the live subflows delivered.
  EXPECT_EQ(report.value().aggregate.sent(),
            report.value().subflows[0].stats.sent() +
                report.value().subflows[1].stats.sent());
}

TEST_F(HostTest, MultipathBwtestSplitsTargetAndSumsGoodput) {
  const auto listings = host_.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  ASSERT_GE(listings.value().size(), 2u);
  SubflowSpec first{listings.value()[0].path.sequence(), 1.0};
  SubflowSpec second{listings.value()[1].path.sequence(), 1.0};
  MultipathBwtestOptions options;
  options.total_target_mbps = 10.0;
  const auto report = host_.multipath_bwtest(ireland_, {first, second}, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().subflows.size(), 2u);
  double attempted = 0.0;
  double achieved = 0.0;
  for (const MultipathBwtestReport::Subflow& subflow : report.value().subflows) {
    ASSERT_TRUE(subflow.ok);
    EXPECT_DOUBLE_EQ(subflow.target_mbps, 5.0);  // equal weights
    attempted += subflow.result.attempted_mbps;
    achieved += subflow.result.achieved_mbps;
  }
  EXPECT_DOUBLE_EQ(report.value().attempted_mbps, attempted);
  EXPECT_DOUBLE_EQ(report.value().achieved_mbps, achieved);
  EXPECT_GT(report.value().achieved_mbps, 0.0);
}

TEST_F(HostTest, MultipathBwtestFlagsTheSharedAccessLink) {
  // On the single-AP testbed every path funnels through MY AS -> ETHZ-AP,
  // so any two subflows share that first link.
  const auto listings = host_.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  ASSERT_GE(listings.value().size(), 2u);
  SubflowSpec first{listings.value()[0].path.sequence(), 1.0};
  SubflowSpec second{listings.value()[1].path.sequence(), 1.0};
  const auto report = host_.multipath_bwtest(ireland_, {first, second}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().shared_bottlenecks.empty());
}

// --------------------------------------------- control-plane lifetimes

TEST(HostLifetimes, ScmpFailFastKnobControlsUnreachableCost) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  simnet::FaultPlanConfig faults;
  faults.server_down_per_hour = 4.0;
  simnet::NetworkConfig net;
  net.server_error_prob = 0.0;
  net.faults = faults;
  HostConfig config;
  config.scmp_error_fail_fast_s = 2.5;  // formerly a hardcoded ~1 s
  // Keep the raw data-plane error: with revocations on, the SCMP
  // revocation would reclassify the failure before we could time it.
  config.control_plane.revocation.enabled = false;
  ScionHost host(env, 42, env.user_as, "10.0.8.1", net, config);

  const auto listings = host.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  const auto route = host.route_of(listings.value().front().path);
  ASSERT_TRUE(route.ok());
  const auto windows =
      host.network().faults().server_down_windows(route.value().back());
  ASSERT_FALSE(windows.empty());
  host.clock().advance_to(windows.front().start + util::sim_seconds(1.0));

  const util::SimTime before = host.clock().now();
  const auto report = host.ping({kIreland, "172.31.43.7"}, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, util::ErrorCode::kUnreachable);
  EXPECT_DOUBLE_EQ(util::to_seconds(host.clock().now() - before), 2.5)
      << "the SCMP error must arrive after exactly the configured delay";
}

TEST(HostLifetimes, PingOnDeliveredRevocationFailsWithoutBurningClock) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  simnet::FaultPlanConfig faults;
  faults.link_flap_per_hour = 6.0;
  simnet::NetworkConfig net;
  net.server_error_prob = 0.0;
  net.faults = faults;
  ScionHost host(env, 42, env.user_as, "10.0.8.1", net);

  ShowpathsOptions options;
  options.max_paths = 40;
  const auto listings = host.showpaths(kIreland, options);
  ASSERT_TRUE(listings.ok());

  // Scan virtual time for an instant where some discovered path has a
  // delivered, unexpired revocation.
  const scion::ControlPlane& control_plane = host.control_plane();
  const scion::Path* revoked = nullptr;
  util::SimTime when{};
  for (double t = 0.0; t < 24.0 * 3600.0 && revoked == nullptr; t += 30.0) {
    for (const PathListing& listing : listings.value()) {
      if (control_plane.path_revoked(listing.path, util::sim_seconds(t))) {
        revoked = &listing.path;
        when = util::sim_seconds(t);
        break;
      }
    }
  }
  ASSERT_NE(revoked, nullptr) << "the flap storm must revoke some path";
  host.clock().advance_to(when);

  PingOptions ping_options;
  ping_options.sequence = revoked->sequence();
  const util::SimTime before = host.clock().now();
  const auto report = host.ping({kIreland, "172.31.43.7"}, ping_options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, util::ErrorCode::kRevoked);
  EXPECT_EQ(host.clock().now(), before)
      << "a pre-delivered revocation fails before any probe hits the wire";
}

TEST(HostLifetimes, MidProbeTimeoutOnExpiredPathClassifiedAsExpired) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  simnet::FaultPlanConfig faults;
  faults.slow_per_hour = 4.0;  // timeouts, no revocations involved
  simnet::NetworkConfig net;
  net.server_error_prob = 0.0;
  net.faults = faults;
  ScionHost host(env, 42, env.user_as, "10.0.8.1", net);

  // Find a slow-responder window of the Ireland node after the 6 h
  // segment lifetime has elapsed, so the timed-out probe train dies on a
  // path that is expired but not revoked.
  const auto listings = host.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  const auto route = host.route_of(listings.value().front().path);
  ASSERT_TRUE(route.ok());
  const double expiry_s = 21600.0;
  const auto windows =
      host.network().faults().slow_windows(route.value().back());
  const auto late = std::find_if(
      windows.begin(), windows.end(), [&](const simnet::FaultWindow& w) {
        return w.start > util::sim_seconds(expiry_s);
      });
  ASSERT_NE(late, windows.end()) << "need a slow window past segment expiry";
  host.clock().advance_to(late->start + util::sim_seconds(1.0));

  const auto report = host.ping({kIreland, "172.31.43.7"}, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, util::ErrorCode::kExpired)
      << report.error().message;
  EXPECT_NE(report.error().message.find("expired mid-probe"),
            std::string::npos);
}

TEST(HostLifetimes, ExpiredPathsServedStaleWhileBeaconingIsUp) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  ScionHost host(env, 42, env.user_as, "10.0.8.1");
  host.clock().advance_to(util::sim_seconds(21600.0 + 60.0));
  ShowpathsOptions extended;
  extended.extended = true;
  const auto listings = host.showpaths(kIreland, extended);
  ASSERT_TRUE(listings.ok());
  ASSERT_FALSE(listings.value().empty());
  for (const PathListing& listing : listings.value()) {
    EXPECT_EQ(listing.path.status(), "stale")
        << "past its lifetime a path degrades to stale, never vanishes";
  }
  // Stale paths still carry traffic (graceful degradation).
  EXPECT_TRUE(host.ping({kIreland, "172.31.43.7"}, {}).ok());
}

}  // namespace
}  // namespace upin::apps
