// Tests for docdb/aggregate: the Mongo-style pipeline.
#include "docdb/aggregate.hpp"

#include <gtest/gtest.h>

namespace upin::docdb {
namespace {

using util::Value;

/// Measurement-shaped fixture data: (server, hops, latency, isd-set tag).
void fill_stats(Collection& coll) {
  const struct Row {
    const char* id;
    int server;
    int hops;
    double latency;
    const char* region;
  } rows[] = {
      {"1_0", 1, 5, 16.0, "eu"},  {"1_1", 1, 5, 18.0, "eu"},
      {"1_2", 1, 6, 20.0, "eu"},  {"2_0", 2, 5, 92.0, "us"},
      {"2_1", 2, 6, 95.0, "us"},  {"3_0", 3, 5, 27.0, "eu"},
      {"3_1", 3, 6, 170.0, "us"}, {"3_2", 3, 6, 275.0, "asia"},
  };
  for (const Row& row : rows) {
    util::JsonObject doc;
    doc.set("_id", Value(row.id));
    doc.set("server_id", Value(row.server));
    doc.set("hop_count", Value(row.hops));
    doc.set("latency_ms", Value(row.latency));
    doc.set("region", Value(row.region));
    EXPECT_TRUE(coll.insert_one(Value(std::move(doc))).ok());
  }
}

/// Test fixture owning a populated stats collection.
class AggregateStats : public ::testing::Test {
 protected:
  AggregateStats() : coll_("paths_stats") { fill_stats(coll_); }
  Collection coll_;
};

Value pipeline(const char* json) {
  auto parsed = Value::parse(json);
  EXPECT_TRUE(parsed.ok()) << json;
  return std::move(parsed).value();
}

TEST_F(AggregateStats, EmptyPipelineReturnsEverything) {
  const auto result = aggregate(coll_, pipeline("[]"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 8u);
}

TEST_F(AggregateStats, MatchFilters) {
  const auto result =
      aggregate(coll_, pipeline(R"([{"$match": {"server_id": 3}}])"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);
}

TEST_F(AggregateStats, GroupAvgByKey) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$group": {"_id": "$server_id",
                "avg_latency": {"$avg": "$latency_ms"},
                "n": {"$count": {}}}},
    {"$sort": {"_id": 1}}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 3u);
  EXPECT_EQ(result.value()[0].get("_id")->as_int(), 1);
  EXPECT_DOUBLE_EQ(result.value()[0].get("avg_latency")->as_double(), 18.0);
  EXPECT_EQ(result.value()[0].get("n")->as_int(), 3);
  EXPECT_DOUBLE_EQ(result.value()[1].get("avg_latency")->as_double(), 93.5);
}

TEST_F(AggregateStats, GroupByNullCollapsesAll) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$group": {"_id": null, "total": {"$sum": "$latency_ms"},
                "min": {"$min": "$latency_ms"},
                "max": {"$max": "$latency_ms"}}}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_DOUBLE_EQ(result.value()[0].get("total")->as_double(), 713.0);
  EXPECT_DOUBLE_EQ(result.value()[0].get("min")->as_double(), 16.0);
  EXPECT_DOUBLE_EQ(result.value()[0].get("max")->as_double(), 275.0);
}

TEST_F(AggregateStats, GroupFirstAndPush) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$group": {"_id": "$region", "first_id": {"$first": "$_id"},
                "ids": {"$push": "$_id"}}},
    {"$sort": {"_id": 1}}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 3u);  // asia, eu, us
  const Document& eu = result.value()[1];
  EXPECT_EQ(eu.get("_id")->as_string(), "eu");
  EXPECT_EQ(eu.get("first_id")->as_string(), "1_0");
  EXPECT_EQ(eu.get("ids")->as_array().size(), 4u);
}

TEST_F(AggregateStats, Fig6ShapedGrouping) {
  // The Fig 6 question: average latency per (hop_count) group.
  const auto result = aggregate(coll_, pipeline(R"([
    {"$match": {"server_id": 3}},
    {"$group": {"_id": "$hop_count", "avg": {"$avg": "$latency_ms"}}},
    {"$sort": {"_id": 1}}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_DOUBLE_EQ(result.value()[0].get("avg")->as_double(), 27.0);
  EXPECT_DOUBLE_EQ(result.value()[1].get("avg")->as_double(), 222.5);
}

TEST(Aggregate, AvgSkipsNonNumericAndMissing) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "a"}, {"v", 10}})).ok());
  ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "b"}, {"v", "text"}})).ok());
  ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "c"}})).ok());
  const auto result = aggregate(coll, pipeline(R"([
    {"$group": {"_id": null, "avg": {"$avg": "$v"}}}
  ])"));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()[0].get("avg")->as_double(), 10.0);
}

TEST(Aggregate, AvgOfNothingIsNull) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "a"}})).ok());
  const auto result = aggregate(coll, pipeline(R"([
    {"$group": {"_id": null, "avg": {"$avg": "$missing"}}}
  ])"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value()[0].get("avg")->is_null());
}

TEST_F(AggregateStats, SortSkipLimit) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$sort": {"latency_ms": -1}},
    {"$skip": 1},
    {"$limit": 2}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_DOUBLE_EQ(result.value()[0].get("latency_ms")->as_double(), 170.0);
  EXPECT_DOUBLE_EQ(result.value()[1].get("latency_ms")->as_double(), 95.0);
}

TEST_F(AggregateStats, SkipPastEndAndZeroLimit) {
  EXPECT_TRUE(
      aggregate(coll_, pipeline(R"([{"$skip": 100}])")).value().empty());
  EXPECT_TRUE(
      aggregate(coll_, pipeline(R"([{"$limit": 0}])")).value().empty());
}

TEST_F(AggregateStats, ProjectKeepAndRename) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$match": {"_id": "1_0"}},
    {"$project": {"latency_ms": 1, "where": "$region"}}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  const Document& doc = result.value()[0];
  EXPECT_EQ(doc.as_object().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.get("latency_ms")->as_double(), 16.0);
  EXPECT_EQ(doc.get("where")->as_string(), "eu");
}

TEST_F(AggregateStats, StagesChainMatchGroupSort) {
  const auto result = aggregate(coll_, pipeline(R"([
    {"$match": {"latency_ms": {"$lt": 100}}},
    {"$group": {"_id": "$region", "n": {"$count": {}}}},
    {"$sort": {"n": -1}},
    {"$limit": 1}
  ])"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].get("_id")->as_string(), "eu");
  EXPECT_EQ(result.value()[0].get("n")->as_int(), 4);
}

TEST_F(AggregateStats, RejectsMalformedPipelines) {
  EXPECT_FALSE(aggregate(coll_, Value(3)).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(R"([{"$frobnicate": {}}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(R"([{"$group": {}}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(
      R"([{"$group": {"_id": null, "x": {"$median": "$v"}}}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(R"([{"$sort": {"a": 2}}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(R"([{"$limit": -1}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(R"([{"$match": 5}])")).ok());
  EXPECT_FALSE(aggregate(coll_, pipeline(
      R"([{"$match": {}, "$sort": {"a": 1}}])")).ok())
      << "two operators in one stage";
}

TEST(AggregateDocuments, WorksWithoutACollection) {
  std::vector<Document> docs;
  docs.push_back(Value::object({{"v", 1}}));
  docs.push_back(Value::object({{"v", 2}}));
  const auto result = aggregate_documents(
      std::move(docs),
      pipeline(R"([{"$group": {"_id": null, "sum": {"$sum": "$v"}}}])"));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()[0].get("sum")->as_double(), 3.0);
}

}  // namespace
}  // namespace upin::docdb
