// Tests for docdb/collection: CRUD, batching, planner, sort/limit.
#include "docdb/collection.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace upin::docdb {
namespace {

using util::ErrorCode;
using util::Value;

Document doc(const char* json) {
  auto parsed = Value::parse(json);
  EXPECT_TRUE(parsed.ok()) << json;
  return std::move(parsed).value();
}

Filter filter(const char* json) {
  return Filter::compile(Value::parse(json).value()).value();
}

TEST(Collection, InsertAndFindById) {
  Collection coll("paths");
  const auto id = coll.insert_one(doc(R"({"_id": "2_15", "server_id": 2})"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), "2_15");
  const auto found = coll.find_by_id("2_15");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().get("server_id")->as_int(), 2);
}

TEST(Collection, AutoAssignsIds) {
  Collection coll("c");
  const auto first = coll.insert_one(doc(R"({"v": 1})"));
  const auto second = coll.insert_one(doc(R"({"v": 2})"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value(), second.value());
  EXPECT_TRUE(coll.find_by_id(first.value()).ok());
}

TEST(Collection, RejectsDuplicateId) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x"})")).ok());
  const auto dup = coll.insert_one(doc(R"({"_id": "x"})"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 1u);
}

TEST(Collection, RejectsNonObjectAndNonStringId) {
  Collection coll("c");
  EXPECT_EQ(coll.insert_one(Value(5)).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(coll.insert_one(doc(R"({"_id": 7})")).error().code,
            ErrorCode::kInvalidArgument);
}

TEST(Collection, FindByIdMissing) {
  Collection coll("c");
  EXPECT_EQ(coll.find_by_id("nope").error().code, ErrorCode::kNotFound);
}

TEST(Collection, InsertManyAtomicOnInternalDuplicate) {
  Collection coll("c");
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "a"})"));
  batch.push_back(doc(R"({"_id": "b"})"));
  batch.push_back(doc(R"({"_id": "a"})"));  // duplicate within batch
  const auto result = coll.insert_many(std::move(batch));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 0u) << "batch must be all-or-nothing";
}

TEST(Collection, InsertManyAtomicOnExistingDuplicate) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "a"})"));
  batch.push_back(doc(R"({"_id": "b"})"));
  ASSERT_FALSE(coll.insert_many(std::move(batch)).ok());
  EXPECT_EQ(coll.size(), 1u);
}

TEST(Collection, InsertManyReturnsIdsInOrder) {
  Collection coll("c");
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "one"})"));
  batch.push_back(doc(R"({"v": 2})"));  // auto id
  const auto ids = coll.insert_many(std::move(batch));
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids.value().size(), 2u);
  EXPECT_EQ(ids.value()[0], "one");
  EXPECT_FALSE(ids.value()[1].empty());
}

TEST(Collection, InsertManyEmptyBatch) {
  Collection coll("c");
  const auto ids = coll.insert_many({});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids.value().empty());
}

TEST(Collection, FindWithFilter) {
  Collection coll("c");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  const auto results = coll.find(filter(R"({"v": {"$gte": 7}})"));
  EXPECT_EQ(results.size(), 3u);
}

TEST(Collection, FindPreservesInsertionOrderByDefault) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "z", "v": 3})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  const auto results = coll.find(Filter::match_all());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(*document_id(results[0]), "z");
}

TEST(Collection, FindSortAscendingDescending) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 2})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "c", "v": 3})")).ok());

  FindOptions ascending;
  ascending.sort_by = "v";
  auto results = coll.find(Filter::match_all(), ascending);
  EXPECT_EQ(results.front().get("v")->as_int(), 1);
  EXPECT_EQ(results.back().get("v")->as_int(), 3);

  FindOptions descending;
  descending.sort_by = "v";
  descending.descending = true;
  results = coll.find(Filter::match_all(), descending);
  EXPECT_EQ(results.front().get("v")->as_int(), 3);
}

TEST(Collection, SortMissingFieldSortsFirst) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 2})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  FindOptions by_v;
  by_v.sort_by = "v";
  const auto results = coll.find(Filter::match_all(), by_v);
  EXPECT_EQ(*document_id(results.front()), "b");  // null sorts before numbers
}

TEST(Collection, SkipAndLimit) {
  Collection coll("c");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  FindOptions options;
  options.sort_by = "v";
  options.skip = 3;
  options.limit = 4;
  const auto results = coll.find(Filter::match_all(), options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results.front().get("v")->as_int(), 3);
  EXPECT_EQ(results.back().get("v")->as_int(), 6);
}

TEST(Collection, SkipBeyondEnd) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  FindOptions options;
  options.skip = 10;
  EXPECT_TRUE(coll.find(Filter::match_all(), options).empty());
}

TEST(Collection, FindOneFirstMatch) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 1})")).ok());
  const auto one = coll.find_one(filter(R"({"v": 1})"));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*document_id(one.value()), "a");
  EXPECT_EQ(coll.find_one(filter(R"({"v": 9})")).error().code,
            ErrorCode::kNotFound);
}

TEST(Collection, Count) {
  Collection coll("c");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"even", i % 2 == 0}}).dump().c_str())).ok());
  }
  EXPECT_EQ(coll.count(filter(R"({"even": true})")), 3u);
  EXPECT_EQ(coll.count_all(), 6u);
}

TEST(Collection, UpdateManySetsFields) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "status": "alive"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "status": "alive"})")).ok());
  const auto modified = coll.update_many(
      Filter::match_all(), Value::parse(R"({"$set": {"status": "dead"}})").value());
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified.value(), 2u);
  EXPECT_EQ(coll.count(filter(R"({"status": "dead"})")), 2u);
}

TEST(Collection, UpdateManySkipsNoopChanges) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  const auto modified = coll.update_many(
      Filter::match_all(), Value::parse(R"({"$set": {"v": 1}})").value());
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified.value(), 0u);
}

TEST(Collection, UpdateKeepsIndexConsistent) {
  Collection coll("c");
  coll.create_index("v");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  ASSERT_TRUE(coll.update_many(filter(R"({"_id": "a"})"),
                               Value::parse(R"({"$set": {"v": 2}})").value())
                  .ok());
  EXPECT_EQ(coll.count(filter(R"({"v": 2})")), 1u);
  EXPECT_EQ(coll.count(filter(R"({"v": 1})")), 0u);
}

TEST(Collection, DeleteMany) {
  Collection coll("c");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  EXPECT_EQ(coll.delete_many(filter(R"({"v": {"$lt": 3}})")), 3u);
  EXPECT_EQ(coll.size(), 2u);
  EXPECT_FALSE(coll.find_by_id("0").ok());
}

TEST(Collection, DeleteByIdThenReinsert) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x", "v": 1})")).ok());
  EXPECT_TRUE(coll.delete_by_id("x"));
  EXPECT_FALSE(coll.delete_by_id("x"));
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x", "v": 2})")).ok());
  EXPECT_EQ(coll.find_by_id("x").value().get("v")->as_int(), 2);
}

TEST(Collection, IndexedEqualityReturnsSameAsScan) {
  Collection indexed("a");
  Collection scanned("b");
  indexed.create_index("server_id");
  for (int i = 0; i < 50; ++i) {
    const Document d = doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"server_id", i % 5}}).dump().c_str());
    ASSERT_TRUE(indexed.insert_one(d).ok());
    ASSERT_TRUE(scanned.insert_one(d).ok());
  }
  const Filter by_server = filter(R"({"server_id": 3})");
  const auto via_index = indexed.find(by_server);
  const auto via_scan = scanned.find(by_server);
  ASSERT_EQ(via_index.size(), via_scan.size());
  for (std::size_t i = 0; i < via_index.size(); ++i) {
    EXPECT_EQ(via_index[i], via_scan[i]);
  }
}

TEST(Collection, IndexCreatedAfterInsertsIsBackfilled) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 7})")).ok());
  coll.create_index("k");
  EXPECT_EQ(coll.count(filter(R"({"k": 7})")), 1u);
  EXPECT_EQ(coll.indexed_fields(), std::vector<std::string>{"k"});
}

TEST(Collection, CreateIndexIsIdempotent) {
  Collection coll("c");
  coll.create_index("k");
  coll.create_index("k");
  EXPECT_EQ(coll.indexed_fields().size(), 1u);
}

TEST(Collection, DistinctScalarsAndArrays) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "isds": [16, 17]})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "isds": [17, 19]})")).ok());
  const auto values = coll.distinct("isds", Filter::match_all());
  EXPECT_EQ(values.size(), 3u);  // 16, 17, 19
}

TEST(Collection, DistinctHonorsFilter) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1, "g": "x"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 2, "g": "y"})")).ok());
  const auto values = coll.distinct("v", filter(R"({"g": "x"})"));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].as_int(), 1);
}

TEST(Collection, ForEachVisitsOnlyLiveDocuments) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  coll.delete_by_id("a");
  int visits = 0;
  coll.for_each([&](const Document&) { ++visits; });
  EXPECT_EQ(visits, 1);
}

TEST(Collection, ObserverSeesMutationsAndSyncs) {
  Collection coll("c");
  std::vector<MutationEvent::Kind> kinds;
  coll.set_observer([&](const MutationEvent& e) { kinds.push_back(e.kind); });
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], MutationEvent::Kind::kInsert);
  EXPECT_EQ(kinds[1], MutationEvent::Kind::kSync);

  kinds.clear();
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "b"})"));
  batch.push_back(doc(R"({"_id": "c"})"));
  ASSERT_TRUE(coll.insert_many(std::move(batch)).ok());
  ASSERT_EQ(kinds.size(), 3u) << "batch: N inserts + one sync";
  EXPECT_EQ(kinds[2], MutationEvent::Kind::kSync);
}

TEST(Collection, MutationEventsCarryPreEncodedJournalPayloads) {
  Collection coll("c");
  std::vector<std::string> payloads;
  coll.set_observer([&](const MutationEvent& e) {
    if (e.kind != MutationEvent::Kind::kSync) payloads.push_back(e.payload);
  });
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  coll.delete_by_id("a");
  ASSERT_EQ(payloads.size(), 2u);
  // Each payload is a complete, parseable journal record — encoded once
  // by the mutating thread, ready for the group-commit writer.
  const auto insert_record = util::Value::parse(payloads[0]);
  ASSERT_TRUE(insert_record.ok());
  EXPECT_EQ(insert_record.value().get("op")->as_string(), "insert");
  EXPECT_EQ(insert_record.value().get("coll")->as_string(), "c");
  EXPECT_EQ(insert_record.value().get("doc")->get("v")->as_int(), 1);
  const auto delete_record = util::Value::parse(payloads[1]);
  ASSERT_TRUE(delete_record.ok());
  EXPECT_EQ(delete_record.value().get("op")->as_string(), "delete");
  EXPECT_EQ(delete_record.value().get("id")->as_string(), "a");
}

TEST(Collection, InsertManyRejectsBatchDuplicatesAtScale) {
  // The duplicate-id batch check is a hash set: a paper-scale batch with
  // one duplicate at the end is still rejected atomically.
  Collection coll("c");
  std::vector<Document> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back(
        doc(("{\"_id\": \"d" + std::to_string(i) + "\"}").c_str()));
  }
  batch.push_back(doc(R"({"_id": "d0"})"));
  const auto result = coll.insert_many(std::move(batch));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 0u) << "atomicity: nothing from the batch lands";
}

TEST(Collection, MultikeyIndexAnswersArrayContainsQueries) {
  Collection indexed("a");
  Collection scanned("b");
  indexed.create_index("isds");
  const char* docs_json[] = {
      R"({"_id": "p0", "isds": [16, 17]})",
      R"({"_id": "p1", "isds": [17, 19]})",
      R"({"_id": "p2", "isds": [20]})",
  };
  for (const char* json : docs_json) {
    ASSERT_TRUE(indexed.insert_one(doc(json)).ok());
    ASSERT_TRUE(scanned.insert_one(doc(json)).ok());
  }
  // {"isds": 17} = array-contains; the multikey index must agree with the
  // scan (paths traversing ISD 17, the paper's grouping query).
  const Filter by_isd = filter(R"({"isds": 17})");
  EXPECT_EQ(indexed.count(by_isd), 2u);
  EXPECT_EQ(indexed.count(by_isd), scanned.count(by_isd));
  const Filter exact = filter(R"({"isds": [16, 17]})");
  EXPECT_EQ(indexed.count(exact), 1u);
}

TEST(Collection, IndexStaysConsistentAfterDeleteAndReinsert) {
  Collection coll("c");
  coll.create_index("k");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "k": 1})")).ok());
  coll.delete_by_id("a");
  EXPECT_EQ(coll.count(filter(R"({"k": 1})")), 1u);
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 1})")).ok());
  EXPECT_EQ(coll.count(filter(R"({"k": 1})")), 2u);
}

TEST(Collection, ConcurrentReadersAndWriters) {
  Collection coll("c");
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&coll, w] {
      for (int i = 0; i < 100; ++i) {
        const std::string id = std::to_string(w) + "_" + std::to_string(i);
        auto inserted = coll.insert_one(
            Value::object({{"_id", id}, {"w", w}}));
        ASSERT_TRUE(inserted.ok());
        (void)coll.count(Filter::match_all());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(coll.size(), 400u);
}

// ------------------------------------------------------------ query planner

/// The plan kind explain() reports for a query.
std::string plan_kind(const Collection& coll, const char* query,
                      const FindOptions& options = {}) {
  const Value plan = coll.explain(filter(query), options);
  return plan.get("plan")->as_string();
}

TEST(QueryPlanner, ExplainPicksIndexPointOverScan) {
  Collection coll("stats");
  coll.create_index("path_id");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"path_id", i % 5}})).ok());
  }
  EXPECT_EQ(plan_kind(coll, R"({"path_id": 2})"), "index_point");
  EXPECT_EQ(plan_kind(coll, R"({"hop_count": 3})"), "scan");

  const Value plan = coll.explain(filter(R"({"path_id": 2})"));
  EXPECT_EQ(plan.get("index")->as_string(), "path_id");
  EXPECT_FALSE(plan.get("residual")->as_bool());
  EXPECT_EQ(plan.get_path("clauses.consumed")->as_int(), 1);
}

TEST(QueryPlanner, RangeQueriesUseIndexRange) {
  Collection coll("stats");
  coll.create_index("latency_ms");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"latency_ms", i * 10}})).ok());
  }
  EXPECT_EQ(plan_kind(coll, R"({"latency_ms": {"$gte": 20, "$lt": 50}})"),
            "index_range");
  const auto docs = coll.find(filter(R"({"latency_ms": {"$gte": 20, "$lt": 50}})"));
  EXPECT_EQ(docs.size(), 3u);
}

TEST(QueryPlanner, ForceScanBypassesIndexes) {
  Collection coll("stats");
  coll.create_index("path_id");
  ASSERT_TRUE(coll.insert_one(doc(R"({"path_id": 1})")).ok());
  FindOptions options;
  options.force_scan = true;
  EXPECT_EQ(plan_kind(coll, R"({"path_id": 1})", options), "scan");
}

TEST(QueryPlanner, CompoundIndexConsumesPrefixAndWindow) {
  Collection coll("stats");
  coll.create_index("path_id,timestamp_ms");
  for (int path = 0; path < 3; ++path) {
    for (int t = 0; t < 5; ++t) {
      ASSERT_TRUE(coll.insert_one(Value::object(
                                      {{"path_id", path}, {"timestamp_ms", t * 100}}))
                      .ok());
    }
  }
  const char* query = R"({"path_id": 1, "timestamp_ms": {"$gte": 200}})";
  const Value plan = coll.explain(filter(query));
  EXPECT_EQ(plan.get("plan")->as_string(), "index_range");
  EXPECT_EQ(plan.get("index")->as_string(), "path_id,timestamp_ms");
  EXPECT_EQ(plan.get_path("clauses.consumed")->as_int(), 2);
  EXPECT_FALSE(plan.get("residual")->as_bool());

  const auto docs = coll.find(filter(query));
  ASSERT_EQ(docs.size(), 3u);
  for (const Document& d : docs) {
    EXPECT_EQ(d.get("path_id")->as_int(), 1);
    EXPECT_GE(d.get("timestamp_ms")->as_int(), 200);
  }
}

TEST(QueryPlanner, InFansOutToPointRanges) {
  Collection coll("stats");
  coll.create_index("server_id");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"server_id", i % 4}})).ok());
  }
  const char* query = R"({"server_id": {"$in": [1, 3]}})";
  EXPECT_EQ(plan_kind(coll, query), "index_point");
  EXPECT_EQ(coll.explain(filter(query)).get("ranges")->as_int(), 2);
  EXPECT_EQ(coll.count(filter(query)), 6u);
}

TEST(QueryPlanner, IndexedFindPreservesInsertionOrder) {
  Collection coll("stats");
  coll.create_index("server_id");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "d" + std::to_string(i)},
                                               {"server_id", i % 2}}))
                    .ok());
  }
  const Filter query = filter(R"({"server_id": 1})");
  FindOptions forced;
  forced.force_scan = true;
  const auto planned = coll.find(query);
  const auto scanned = coll.find(query, forced);
  ASSERT_EQ(planned.size(), scanned.size());
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_EQ(planned[i], scanned[i]) << "position " << i;
  }
  // Insertion order: d1, d3, d5, ...
  EXPECT_EQ(planned.front().get("_id")->as_string(), "d1");
}

TEST(QueryPlanner, CoveredCountSkipsDocuments) {
  Collection coll("stats");
  coll.create_index("path_id");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"path_id", i % 3}})).ok());
  }
  EXPECT_EQ(coll.count(filter(R"({"path_id": 0})")), 10u);
  EXPECT_EQ(coll.count(filter(R"({"path_id": {"$gte": 1}})")), 20u);
  EXPECT_EQ(coll.count(Filter::match_all()), 30u);
}

TEST(QueryPlanner, CountMatchesScanWithResidual) {
  Collection coll("stats");
  coll.create_index("path_id");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object(
                                    {{"path_id", i % 4}, {"loss", i % 2}}))
                    .ok());
  }
  // path_id consumed by the index, loss stays residual.
  EXPECT_EQ(coll.count(filter(R"({"path_id": 1, "loss": 0})")), 0u);
  EXPECT_EQ(coll.count(filter(R"({"path_id": 1, "loss": 1})")), 5u);
}

TEST(QueryPlanner, DistinctIsCoveredAndSorted) {
  Collection coll("stats");
  coll.create_index("server_id");
  for (const int v : {3, 1, 2, 1, 3}) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"server_id", v}})).ok());
  }
  const auto values = coll.distinct("server_id", Filter::match_all());
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], Value(1));
  EXPECT_EQ(values[1], Value(2));
  EXPECT_EQ(values[2], Value(3));
  // Filtered distinct off the same index (residual-free range plan).
  const auto high = coll.distinct("server_id",
                                  filter(R"({"server_id": {"$gte": 2}})"));
  ASSERT_EQ(high.size(), 2u);
  EXPECT_EQ(high[0], Value(2));
  EXPECT_EQ(high[1], Value(3));
  // Unindexed distinct returns the same ascending order.
  Collection plain("plain");
  for (const int v : {3, 1, 2, 1, 3}) {
    ASSERT_TRUE(plain.insert_one(Value::object({{"server_id", v}})).ok());
  }
  EXPECT_EQ(plain.distinct("server_id", Filter::match_all()), values);
}

TEST(QueryPlanner, SortStreamsOffIndexOrder) {
  Collection coll("stats");
  coll.create_index("latency_ms");
  for (const int v : {50, 10, 40, 20, 30}) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"latency_ms", v}})).ok());
  }
  FindOptions options;
  options.sort_by = "latency_ms";
  options.limit = 3;
  const Value plan = coll.explain(Filter::match_all(), options);
  EXPECT_TRUE(plan.get("covers_sort")->as_bool());
  const auto docs = coll.find(Filter::match_all(), options);
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].get("latency_ms")->as_int(), 10);
  EXPECT_EQ(docs[1].get("latency_ms")->as_int(), 20);
  EXPECT_EQ(docs[2].get("latency_ms")->as_int(), 30);

  options.descending = true;
  const auto top = coll.find(Filter::match_all(), options);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].get("latency_ms")->as_int(), 50);
}

TEST(QueryPlanner, SortedStreamingMatchesScanOnTies) {
  Collection coll("stats");
  coll.create_index("v");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "d" + std::to_string(i)},
                                               {"v", i % 3}}))
                    .ok());
  }
  FindOptions sorted;
  sorted.sort_by = "v";
  FindOptions forced = sorted;
  forced.force_scan = true;
  const auto streamed = coll.find(Filter::match_all(), sorted);
  const auto scanned = coll.find(Filter::match_all(), forced);
  ASSERT_EQ(streamed.size(), scanned.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], scanned[i]) << "position " << i;
  }
}

TEST(QueryPlanner, TopKHeapMatchesFullSortOnNonIndexedField) {
  Collection coll("stats");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coll.insert_one(Value::object({{"_id", "d" + std::to_string(i)},
                                               {"v", (i * 37) % 50},
                                               {"tie", i % 5}}))
                    .ok());
  }
  FindOptions limited;
  limited.sort_by = "tie";  // heavy ties exercise the position tie-break
  limited.skip = 3;
  limited.limit = 10;
  FindOptions full = limited;
  full.skip = 0;
  full.limit.reset();
  const auto topk = coll.find(Filter::match_all(), limited);
  const auto everything = coll.find(Filter::match_all(), full);
  ASSERT_EQ(topk.size(), 10u);
  for (std::size_t i = 0; i < topk.size(); ++i) {
    EXPECT_EQ(topk[i], everything[i + 3]) << "position " << i;
  }
}

TEST(QueryPlanner, MultikeyRangeDoesNotIntersectBounds) {
  Collection coll("stats");
  coll.create_index("isds");
  // [-5, 100] matches {$gt: 0, $lt: 10} (any-element per clause) even
  // though no single element is inside (0, 10).
  ASSERT_TRUE(coll.insert_one(doc(R"({"isds": [-5, 100]})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"isds": [5]})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"isds": [200]})")).ok());
  const Filter query = filter(R"({"isds": {"$gt": 0, "$lt": 10}})");
  const auto docs = coll.find(query);
  EXPECT_EQ(docs.size(), 2u);
  EXPECT_EQ(coll.count(query), 2u);
  FindOptions forced;
  forced.force_scan = true;
  EXPECT_EQ(coll.find(query, forced).size(), 2u);
}

TEST(QueryPlanner, MissingFieldsFoldButNeverLeakIntoMatches) {
  Collection coll("stats");
  coll.create_index("v");
  ASSERT_TRUE(coll.insert_one(doc(R"({"v": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"other": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"v": null})")).ok());

  // $lt matches stored nulls (rank order) but never missing fields.
  const Filter query = filter(R"({"v": {"$lt": 5}})");
  EXPECT_EQ(coll.find(query).size(), 2u);
  EXPECT_EQ(coll.count(query), 2u);
  // Equality on null matches stored nulls only.
  const Filter null_eq = filter(R"({"v": null})");
  EXPECT_EQ(coll.find(null_eq).size(), 1u);
  EXPECT_EQ(coll.count(null_eq), 1u);
}

TEST(QueryPlanner, CompoundIndexDeclarationRoundTrips) {
  Collection coll("stats");
  coll.create_index("path_id,timestamp_ms");
  coll.create_index("path_id,timestamp_ms");  // idempotent
  coll.create_index(std::vector<std::string>{"server_id"});
  const auto specs = coll.indexed_fields();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "path_id,timestamp_ms");
  EXPECT_EQ(specs[1], "server_id");
}

}  // namespace
}  // namespace upin::docdb
