// Tests for docdb/collection: CRUD, batching, planner, sort/limit.
#include "docdb/collection.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace upin::docdb {
namespace {

using util::ErrorCode;
using util::Value;

Document doc(const char* json) {
  auto parsed = Value::parse(json);
  EXPECT_TRUE(parsed.ok()) << json;
  return std::move(parsed).value();
}

Filter filter(const char* json) {
  return Filter::compile(Value::parse(json).value()).value();
}

TEST(Collection, InsertAndFindById) {
  Collection coll("paths");
  const auto id = coll.insert_one(doc(R"({"_id": "2_15", "server_id": 2})"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), "2_15");
  const auto found = coll.find_by_id("2_15");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().get("server_id")->as_int(), 2);
}

TEST(Collection, AutoAssignsIds) {
  Collection coll("c");
  const auto first = coll.insert_one(doc(R"({"v": 1})"));
  const auto second = coll.insert_one(doc(R"({"v": 2})"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value(), second.value());
  EXPECT_TRUE(coll.find_by_id(first.value()).ok());
}

TEST(Collection, RejectsDuplicateId) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x"})")).ok());
  const auto dup = coll.insert_one(doc(R"({"_id": "x"})"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 1u);
}

TEST(Collection, RejectsNonObjectAndNonStringId) {
  Collection coll("c");
  EXPECT_EQ(coll.insert_one(Value(5)).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(coll.insert_one(doc(R"({"_id": 7})")).error().code,
            ErrorCode::kInvalidArgument);
}

TEST(Collection, FindByIdMissing) {
  Collection coll("c");
  EXPECT_EQ(coll.find_by_id("nope").error().code, ErrorCode::kNotFound);
}

TEST(Collection, InsertManyAtomicOnInternalDuplicate) {
  Collection coll("c");
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "a"})"));
  batch.push_back(doc(R"({"_id": "b"})"));
  batch.push_back(doc(R"({"_id": "a"})"));  // duplicate within batch
  const auto result = coll.insert_many(std::move(batch));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 0u) << "batch must be all-or-nothing";
}

TEST(Collection, InsertManyAtomicOnExistingDuplicate) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "a"})"));
  batch.push_back(doc(R"({"_id": "b"})"));
  ASSERT_FALSE(coll.insert_many(std::move(batch)).ok());
  EXPECT_EQ(coll.size(), 1u);
}

TEST(Collection, InsertManyReturnsIdsInOrder) {
  Collection coll("c");
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "one"})"));
  batch.push_back(doc(R"({"v": 2})"));  // auto id
  const auto ids = coll.insert_many(std::move(batch));
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids.value().size(), 2u);
  EXPECT_EQ(ids.value()[0], "one");
  EXPECT_FALSE(ids.value()[1].empty());
}

TEST(Collection, InsertManyEmptyBatch) {
  Collection coll("c");
  const auto ids = coll.insert_many({});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids.value().empty());
}

TEST(Collection, FindWithFilter) {
  Collection coll("c");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  const auto results = coll.find(filter(R"({"v": {"$gte": 7}})"));
  EXPECT_EQ(results.size(), 3u);
}

TEST(Collection, FindPreservesInsertionOrderByDefault) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "z", "v": 3})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  const auto results = coll.find(Filter::match_all());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(*document_id(results[0]), "z");
}

TEST(Collection, FindSortAscendingDescending) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 2})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "c", "v": 3})")).ok());

  FindOptions ascending;
  ascending.sort_by = "v";
  auto results = coll.find(Filter::match_all(), ascending);
  EXPECT_EQ(results.front().get("v")->as_int(), 1);
  EXPECT_EQ(results.back().get("v")->as_int(), 3);

  FindOptions descending;
  descending.sort_by = "v";
  descending.descending = true;
  results = coll.find(Filter::match_all(), descending);
  EXPECT_EQ(results.front().get("v")->as_int(), 3);
}

TEST(Collection, SortMissingFieldSortsFirst) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 2})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  FindOptions by_v;
  by_v.sort_by = "v";
  const auto results = coll.find(Filter::match_all(), by_v);
  EXPECT_EQ(*document_id(results.front()), "b");  // null sorts before numbers
}

TEST(Collection, SkipAndLimit) {
  Collection coll("c");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  FindOptions options;
  options.sort_by = "v";
  options.skip = 3;
  options.limit = 4;
  const auto results = coll.find(Filter::match_all(), options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results.front().get("v")->as_int(), 3);
  EXPECT_EQ(results.back().get("v")->as_int(), 6);
}

TEST(Collection, SkipBeyondEnd) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  FindOptions options;
  options.skip = 10;
  EXPECT_TRUE(coll.find(Filter::match_all(), options).empty());
}

TEST(Collection, FindOneFirstMatch) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 1})")).ok());
  const auto one = coll.find_one(filter(R"({"v": 1})"));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*document_id(one.value()), "a");
  EXPECT_EQ(coll.find_one(filter(R"({"v": 9})")).error().code,
            ErrorCode::kNotFound);
}

TEST(Collection, Count) {
  Collection coll("c");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"even", i % 2 == 0}}).dump().c_str())).ok());
  }
  EXPECT_EQ(coll.count(filter(R"({"even": true})")), 3u);
  EXPECT_EQ(coll.count_all(), 6u);
}

TEST(Collection, UpdateManySetsFields) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "status": "alive"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "status": "alive"})")).ok());
  const auto modified = coll.update_many(
      Filter::match_all(), Value::parse(R"({"$set": {"status": "dead"}})").value());
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified.value(), 2u);
  EXPECT_EQ(coll.count(filter(R"({"status": "dead"})")), 2u);
}

TEST(Collection, UpdateManySkipsNoopChanges) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  const auto modified = coll.update_many(
      Filter::match_all(), Value::parse(R"({"$set": {"v": 1}})").value());
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified.value(), 0u);
}

TEST(Collection, UpdateKeepsIndexConsistent) {
  Collection coll("c");
  coll.create_index("v");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  ASSERT_TRUE(coll.update_many(filter(R"({"_id": "a"})"),
                               Value::parse(R"({"$set": {"v": 2}})").value())
                  .ok());
  EXPECT_EQ(coll.count(filter(R"({"v": 2})")), 1u);
  EXPECT_EQ(coll.count(filter(R"({"v": 1})")), 0u);
}

TEST(Collection, DeleteMany) {
  Collection coll("c");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(coll.insert_one(doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"v", i}}).dump().c_str())).ok());
  }
  EXPECT_EQ(coll.delete_many(filter(R"({"v": {"$lt": 3}})")), 3u);
  EXPECT_EQ(coll.size(), 2u);
  EXPECT_FALSE(coll.find_by_id("0").ok());
}

TEST(Collection, DeleteByIdThenReinsert) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x", "v": 1})")).ok());
  EXPECT_TRUE(coll.delete_by_id("x"));
  EXPECT_FALSE(coll.delete_by_id("x"));
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "x", "v": 2})")).ok());
  EXPECT_EQ(coll.find_by_id("x").value().get("v")->as_int(), 2);
}

TEST(Collection, IndexedEqualityReturnsSameAsScan) {
  Collection indexed("a");
  Collection scanned("b");
  indexed.create_index("server_id");
  for (int i = 0; i < 50; ++i) {
    const Document d = doc(util::Value::object(
        {{"_id", std::to_string(i)}, {"server_id", i % 5}}).dump().c_str());
    ASSERT_TRUE(indexed.insert_one(d).ok());
    ASSERT_TRUE(scanned.insert_one(d).ok());
  }
  const Filter by_server = filter(R"({"server_id": 3})");
  const auto via_index = indexed.find(by_server);
  const auto via_scan = scanned.find(by_server);
  ASSERT_EQ(via_index.size(), via_scan.size());
  for (std::size_t i = 0; i < via_index.size(); ++i) {
    EXPECT_EQ(via_index[i], via_scan[i]);
  }
}

TEST(Collection, IndexCreatedAfterInsertsIsBackfilled) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 7})")).ok());
  coll.create_index("k");
  EXPECT_EQ(coll.count(filter(R"({"k": 7})")), 1u);
  EXPECT_EQ(coll.indexed_fields(), std::vector<std::string>{"k"});
}

TEST(Collection, CreateIndexIsIdempotent) {
  Collection coll("c");
  coll.create_index("k");
  coll.create_index("k");
  EXPECT_EQ(coll.indexed_fields().size(), 1u);
}

TEST(Collection, DistinctScalarsAndArrays) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "isds": [16, 17]})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "isds": [17, 19]})")).ok());
  const auto values = coll.distinct("isds", Filter::match_all());
  EXPECT_EQ(values.size(), 3u);  // 16, 17, 19
}

TEST(Collection, DistinctHonorsFilter) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1, "g": "x"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "v": 2, "g": "y"})")).ok());
  const auto values = coll.distinct("v", filter(R"({"g": "x"})"));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].as_int(), 1);
}

TEST(Collection, ForEachVisitsOnlyLiveDocuments) {
  Collection coll("c");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b"})")).ok());
  coll.delete_by_id("a");
  int visits = 0;
  coll.for_each([&](const Document&) { ++visits; });
  EXPECT_EQ(visits, 1);
}

TEST(Collection, ObserverSeesMutationsAndSyncs) {
  Collection coll("c");
  std::vector<MutationEvent::Kind> kinds;
  coll.set_observer([&](const MutationEvent& e) { kinds.push_back(e.kind); });
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a"})")).ok());
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], MutationEvent::Kind::kInsert);
  EXPECT_EQ(kinds[1], MutationEvent::Kind::kSync);

  kinds.clear();
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "b"})"));
  batch.push_back(doc(R"({"_id": "c"})"));
  ASSERT_TRUE(coll.insert_many(std::move(batch)).ok());
  ASSERT_EQ(kinds.size(), 3u) << "batch: N inserts + one sync";
  EXPECT_EQ(kinds[2], MutationEvent::Kind::kSync);
}

TEST(Collection, MutationEventsCarryPreEncodedJournalPayloads) {
  Collection coll("c");
  std::vector<std::string> payloads;
  coll.set_observer([&](const MutationEvent& e) {
    if (e.kind != MutationEvent::Kind::kSync) payloads.push_back(e.payload);
  });
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "v": 1})")).ok());
  coll.delete_by_id("a");
  ASSERT_EQ(payloads.size(), 2u);
  // Each payload is a complete, parseable journal record — encoded once
  // by the mutating thread, ready for the group-commit writer.
  const auto insert_record = util::Value::parse(payloads[0]);
  ASSERT_TRUE(insert_record.ok());
  EXPECT_EQ(insert_record.value().get("op")->as_string(), "insert");
  EXPECT_EQ(insert_record.value().get("coll")->as_string(), "c");
  EXPECT_EQ(insert_record.value().get("doc")->get("v")->as_int(), 1);
  const auto delete_record = util::Value::parse(payloads[1]);
  ASSERT_TRUE(delete_record.ok());
  EXPECT_EQ(delete_record.value().get("op")->as_string(), "delete");
  EXPECT_EQ(delete_record.value().get("id")->as_string(), "a");
}

TEST(Collection, InsertManyRejectsBatchDuplicatesAtScale) {
  // The duplicate-id batch check is a hash set: a paper-scale batch with
  // one duplicate at the end is still rejected atomically.
  Collection coll("c");
  std::vector<Document> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back(
        doc(("{\"_id\": \"d" + std::to_string(i) + "\"}").c_str()));
  }
  batch.push_back(doc(R"({"_id": "d0"})"));
  const auto result = coll.insert_many(std::move(batch));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kConflict);
  EXPECT_EQ(coll.size(), 0u) << "atomicity: nothing from the batch lands";
}

TEST(Collection, MultikeyIndexAnswersArrayContainsQueries) {
  Collection indexed("a");
  Collection scanned("b");
  indexed.create_index("isds");
  const char* docs_json[] = {
      R"({"_id": "p0", "isds": [16, 17]})",
      R"({"_id": "p1", "isds": [17, 19]})",
      R"({"_id": "p2", "isds": [20]})",
  };
  for (const char* json : docs_json) {
    ASSERT_TRUE(indexed.insert_one(doc(json)).ok());
    ASSERT_TRUE(scanned.insert_one(doc(json)).ok());
  }
  // {"isds": 17} = array-contains; the multikey index must agree with the
  // scan (paths traversing ISD 17, the paper's grouping query).
  const Filter by_isd = filter(R"({"isds": 17})");
  EXPECT_EQ(indexed.count(by_isd), 2u);
  EXPECT_EQ(indexed.count(by_isd), scanned.count(by_isd));
  const Filter exact = filter(R"({"isds": [16, 17]})");
  EXPECT_EQ(indexed.count(exact), 1u);
}

TEST(Collection, IndexStaysConsistentAfterDeleteAndReinsert) {
  Collection coll("c");
  coll.create_index("k");
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 1})")).ok());
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "b", "k": 1})")).ok());
  coll.delete_by_id("a");
  EXPECT_EQ(coll.count(filter(R"({"k": 1})")), 1u);
  ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "a", "k": 1})")).ok());
  EXPECT_EQ(coll.count(filter(R"({"k": 1})")), 2u);
}

TEST(Collection, ConcurrentReadersAndWriters) {
  Collection coll("c");
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&coll, w] {
      for (int i = 0; i < 100; ++i) {
        const std::string id = std::to_string(w) + "_" + std::to_string(i);
        auto inserted = coll.insert_one(
            Value::object({{"_id", id}, {"w", w}}));
        ASSERT_TRUE(inserted.ok());
        (void)coll.count(Filter::match_all());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(coll.size(), 400u);
}

}  // namespace
}  // namespace upin::docdb
