// Replays the checked-in corrupt-journal corpus (tests/docdb/corpus/)
// and pins each file to its expected ReplayReport outcome.  The corpus
// is the regression net for the recovery contract: if replay semantics
// drift, these fixtures — not a freshly generated file — catch it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "docdb/journal.hpp"

#ifndef UPIN_CORPUS_DIR
#error "UPIN_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace upin::docdb {
namespace {

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_dir_ = (std::filesystem::temp_directory_path() /
                 ("corpus_test_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                    .string();
    std::filesystem::create_directories(work_dir_);
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(work_dir_, ignored);
  }

  /// Copy a corpus file into the scratch dir (the checked-in corpus is
  /// read-only; salvage writes sidecars next to the journal).
  std::string stage(const std::string& name) {
    const std::string src = std::string(UPIN_CORPUS_DIR) + "/" + name;
    const std::string dst = work_dir_ + "/" + name;
    std::filesystem::copy_file(
        src, dst, std::filesystem::copy_options::overwrite_existing);
    return dst;
  }

  static util::Status replay_ids(const std::string& path,
                                 std::vector<std::string>* ids,
                                 ReplayReport* report,
                                 const ReplayOptions& options = {}) {
    return Journal::replay(
        path,
        [&](const JournalRecord& record) {
          ids->push_back(record.id);
          return util::Status::success();
        },
        report, options);
  }

  std::string work_dir_;
};

TEST_F(CorpusTest, TornTailRecoversIntactPrefix) {
  const std::string path = stage("torn_tail.jsonl");
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(replay_ids(path, &ids, &report).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.torn_tail_line, 3u);
  EXPECT_EQ(report.records_applied, 2u);
  // The valid prefix ends exactly after the last intact newline.
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(report.valid_prefix_bytes, content.rfind('\n') + 1);
}

TEST_F(CorpusTest, MidfileBitflipIsHardErrorWhenStrict) {
  const std::string path = stage("midfile_bitflip.jsonl");
  std::vector<std::string> ids;
  ReplayReport report;
  const auto status = replay_ids(path, &ids, &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(status.error().message.find("checksum mismatch"),
            std::string::npos);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(ids, std::vector<std::string>{"a"})
      << "records before the corruption replay, then the error stops it";
}

TEST_F(CorpusTest, MidfileBitflipSalvagesAroundTheCorruption) {
  const std::string path = stage("midfile_bitflip.jsonl");
  ReplayOptions options;
  options.salvage = true;
  options.quarantine_path = path + ".quarantine";
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(replay_ids(path, &ids, &report, options).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.quarantined_records, 1u);
  EXPECT_EQ(report.first_quarantined_line, 2u);
  std::ifstream sidecar(options.quarantine_path);
  std::string header;
  ASSERT_TRUE(std::getline(sidecar, header));
  EXPECT_NE(header.find("line 2"), std::string::npos);
}

TEST_F(CorpusTest, TruncatedCrcPrefixIsATornTail) {
  const std::string path = stage("truncated_crc_prefix.jsonl");
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(replay_ids(path, &ids, &report).ok())
      << "a header cut mid-checksum is a crash signature, not corruption";
  EXPECT_EQ(ids, std::vector<std::string>{"a"});
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.torn_tail_line, 2u);
}

TEST_F(CorpusTest, EmptyJournalReplaysNothing) {
  const std::string path = stage("empty.jsonl");
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(replay_ids(path, &ids, &report).ok());
  EXPECT_TRUE(ids.empty());
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.records_applied, 0u);
}

}  // namespace
}  // namespace upin::docdb
